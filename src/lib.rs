//! # hetsched — dynamic scheduling for dense kernels on heterogeneous platforms
//!
//! Umbrella crate for the `hetsched` workspace, a Rust reproduction of
//! Beaumont & Marchal, *"Analysis of Dynamic Scheduling Strategies for
//! Matrix Multiplication on Heterogeneous Platforms"*, HPDC 2014
//! (DOI 10.1145/2600212.2600223).
//!
//! The workspace provides, as re-exported modules:
//!
//! * [`platform`] — heterogeneous platform model: processor speeds, the
//!   paper's speed distributions and scenarios, communication lower bounds;
//! * [`net`] — bandwidth-constrained network models (one-port and
//!   bounded-multiport master links) that price transfers in time;
//! * [`sim`] — the demand-driven event simulation engine (the equivalent of
//!   the paper's ad-hoc simulator);
//! * [`outer`] — the outer-product kernel and its four strategies
//!   (`RandomOuter`, `SortedOuter`, `DynamicOuter`, `DynamicOuter2Phases`);
//! * [`matmul`] — the matrix-multiplication kernel and its four strategies;
//! * [`analysis`] — the ODE-based analytic model and the β-threshold
//!   optimizer (with the paper's typos corrected — see `DESIGN.md`);
//! * [`core`] — experiment orchestration: configs, seeded parallel trial
//!   runner, one function per figure of the paper, and extension
//!   experiments (static-vs-dynamic trade-off, speed-model ablations);
//! * [`partition`] — the static comparison basis the paper cites: the
//!   7/4-approximation column partition of the square (Beaumont et al.
//!   2002) and a speed-aware static scheduler built on it;
//! * [`dag`] — the paper's §5 future work, built out: tiled Cholesky/QR
//!   task graphs and data-aware dynamic scheduling under precedence
//!   constraints;
//! * [`exec`] — a real threaded mini-runtime executing the same schedulers
//!   on actual `f64` blocks;
//! * [`util`] — the shared data structures underneath it all.
//!
//! ## Quick start
//!
//! Simulate `DynamicOuter2Phases` with the analytically optimal threshold
//! on a random heterogeneous platform, and compare the communication volume
//! against the lower bound:
//!
//! ```
//! use hetsched::core::{run_trials, BetaChoice, ExperimentConfig, Kernel, Strategy};
//!
//! let cfg = ExperimentConfig {
//!     kernel: Kernel::Outer { n: 50 },
//!     strategy: Strategy::TwoPhase(BetaChoice::Analytic),
//!     processors: 10,
//!     ..Default::default()
//! };
//! let summary = run_trials(&cfg, 5, 0xC0FFEE);
//! // The data-aware two-phase scheduler stays close to the lower bound
//! // (normalized volume ≈ 2), far below the random baseline (4–8).
//! assert!(summary.normalized_comm.mean() < 3.0);
//! assert!(summary.normalized_comm.mean() >= 1.0);
//! ```
//!
//! Regenerate any figure of the paper:
//!
//! ```no_run
//! use hetsched::core::figures::{fig6, FigOpts};
//!
//! let data = fig6(&FigOpts::paper());
//! println!("{}", data.to_table());
//! ```
//!
//! Or run the kernels for real, with worker threads and actual data:
//!
//! ```
//! use hetsched::exec::block::BlockedVector;
//! use hetsched::exec::{run_outer, ExecConfig};
//! use hetsched::outer::DynamicOuter2Phases;
//!
//! let n = 8;
//! let a = BlockedVector::random(n, 4, 1);
//! let b = BlockedVector::random(n, 4, 2);
//! let cfg = ExecConfig::homogeneous(3, 42);
//! let (m, report) = run_outer(DynamicOuter2Phases::with_beta(n, 3, 3.0), &a, &b, &cfg);
//! assert_eq!(report.total_tasks(), (n * n) as u64);
//! assert_eq!(m.dim(), 8 * 4);
//! ```

pub use hetsched_analysis as analysis;
pub use hetsched_core as core;
pub use hetsched_dag as dag;
pub use hetsched_exec as exec;
pub use hetsched_matmul as matmul;
pub use hetsched_net as net;
pub use hetsched_outer as outer;
pub use hetsched_partition as partition;
pub use hetsched_platform as platform;
pub use hetsched_sim as sim;
pub use hetsched_store as store;
pub use hetsched_util as util;
