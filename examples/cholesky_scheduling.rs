//! Scheduling a tiled Cholesky factorization — the paper's future work,
//! running.
//!
//! ```text
//! cargo run --release --example cholesky_scheduling
//! ```
//!
//! The paper's conclusion asks for its data-aware ideas to be extended
//! "to applications involving both data and precedence dependencies …
//! Cholesky or QR factorizations would be a promising first step." This
//! example runs that step: the tiled Cholesky DAG (POTRF/TRSM/SYRK/GEMM)
//! on a heterogeneous platform under three ready-pool policies, reporting
//! blocks shipped and makespan against the precedence lower bound.

use hetsched::dag::{cholesky_graph, qr_graph, simulate, Policy};
use hetsched::platform::{Platform, SpeedDistribution};
use hetsched::util::rng::rng_for;

fn main() {
    let t = 20; // tiles per dimension → 1 560 Cholesky tasks
    let p = 16;
    let graph = cholesky_graph(t);
    let platform = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(11, 0));

    println!(
        "Tiled Cholesky: {t}×{t} tiles, {} tasks, critical path {:.1} weight-units",
        graph.len(),
        graph.critical_path()
    );
    println!(
        "{p} workers, speeds U[10,100]; work bound {:.3}, CP bound {:.3}\n",
        graph.total_weight() / platform.total_speed(),
        graph.critical_path() / 100.0
    );

    println!(
        "{:>16}  {:>12}  {:>12}  {:>14}",
        "policy", "blocks", "blocks/task", "makespan ratio"
    );
    for policy in [Policy::Random, Policy::DataAware, Policy::DataAwareCp] {
        let r = simulate(&graph, &platform, policy, &mut rng_for(12, 0));
        println!(
            "{:>16}  {:>12}  {:>12.2}  {:>14.3}",
            policy.label(),
            r.total_blocks,
            r.comm_per_task(),
            r.makespan_ratio(&graph, &platform)
        );
    }

    // Same comparison on the more sequential tiled QR.
    let qr = qr_graph(12);
    println!(
        "\nTiled QR: 12×12 tiles, {} tasks, critical path {:.1} weight-units",
        qr.len(),
        qr.critical_path()
    );
    println!(
        "{:>16}  {:>12}  {:>12}  {:>14}",
        "policy", "blocks", "blocks/task", "makespan ratio"
    );
    for policy in [Policy::Random, Policy::DataAware, Policy::DataAwareCp] {
        let r = simulate(&qr, &platform, policy, &mut rng_for(13, 0));
        println!(
            "{:>16}  {:>12}  {:>12.2}  {:>14.3}",
            policy.label(),
            r.total_blocks,
            r.comm_per_task(),
            r.makespan_ratio(&qr, &platform)
        );
    }

    println!(
        "\nThe paper's data-affinity idea carries over to DAGs: picking the\n\
         ready task that needs the fewest shipped blocks roughly halves the\n\
         traffic, and costs nothing in completion time."
    );
}
