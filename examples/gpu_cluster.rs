//! Scheduling a block matrix multiplication on a mixed CPU/GPU cluster.
//!
//! ```text
//! cargo run --release --example gpu_cluster
//! ```
//!
//! The platform models the situation that motivates the paper: a cluster
//! where some nodes carry accelerators, so per-node task throughput differs
//! by an order of magnitude and static partitioning is brittle. We build an
//! explicit platform (32 CPU nodes at ~10 tasks/s, 8 GPU nodes at ~100),
//! let every strategy schedule `C = A·B` with `n = 40` blocks per dimension
//! (64 000 block-update tasks), and report:
//!
//! * the communication volume relative to the lower bound,
//! * the load split between CPU and GPU nodes (demand-driven schedulers
//!   balance it automatically — no speed estimation anywhere),
//! * the β threshold the analysis picks, and its speed-agnostic
//!   homogeneous approximation (§3.6),
//! * what happens when the master's outbound link is no longer free: the
//!   same scenario re-run under a one-port network model, where the
//!   communication volume each strategy saves (or wastes) turns directly
//!   into makespan.

use hetsched::analysis::MatmulAnalysis;
use hetsched::core::{run_once, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::net::NetworkModel;
use hetsched::platform::Platform;

fn main() {
    let n = 40;
    let cpu_nodes = 32;
    let gpu_nodes = 8;
    let mut speeds = vec![10.0; cpu_nodes];
    speeds.extend(vec![100.0; gpu_nodes]);
    let p = speeds.len();
    let platform = Platform::from_speeds(speeds);

    println!("Cluster: {cpu_nodes} CPU nodes (speed 10) + {gpu_nodes} GPU nodes (speed 100)");
    println!(
        "Matmul: n = {n} blocks per dimension ({} tasks), lower bound = {:.0} blocks\n",
        n * n * n,
        Kernel::Matmul { n }.lower_bound(&platform)
    );

    let model = MatmulAnalysis::new(&platform, n);
    let (beta, predicted) = model.optimal_beta();
    let beta_hom = hetsched::analysis::beta_homogeneous_matmul(p, n);
    println!("Analytic threshold: β = {beta:.3} (predicted ratio {predicted:.2})");
    println!("Speed-agnostic approximation: β_hom = {beta_hom:.3} — no speed knowledge needed\n");

    println!(
        "{:>22}  {:>10}  {:>14}  {:>16}",
        "strategy", "norm comm", "GPU task share", "slowest/fastest"
    );
    for strategy in [
        Strategy::Random,
        Strategy::Sorted,
        Strategy::Dynamic,
        Strategy::TwoPhase(BetaChoice::Analytic),
    ] {
        let cfg = ExperimentConfig {
            kernel: Kernel::Matmul { n },
            strategy,
            processors: p,
            platform: Some(platform.clone()),
            ..Default::default()
        };
        let r = run_once(&cfg, 0xCAFE);
        let gpu_tasks: u64 = r.tasks_per_proc[cpu_nodes..].iter().sum();
        let total: u64 = r.tasks_per_proc.iter().sum();
        // Work conservation: per-node tasks should track speed share.
        let min_cpu = *r.tasks_per_proc[..cpu_nodes].iter().min().unwrap();
        let max_gpu = *r.tasks_per_proc[cpu_nodes..].iter().max().unwrap();
        println!(
            "{:>22}  {:>10.2}  {:>13.1}%  {:>7} / {:<7}",
            strategy.label(cfg.kernel),
            r.normalized_comm,
            100.0 * gpu_tasks as f64 / total as f64,
            min_cpu,
            max_gpu,
        );
    }

    // Ideal GPU share from relative speeds: 8·100 / (32·10 + 8·100).
    let ideal = 800.0 / 1120.0 * 100.0;
    println!(
        "\nIdeal GPU share from relative speeds: {ideal:.1}% — every demand-driven\n\
         strategy hits it without knowing any speed; they differ only in how\n\
         much data they move to get there."
    );

    // Under free communication that difference is invisible in the makespan.
    // Price the master's outbound link and it no longer is: the same
    // scenario, one-port at half the cluster's aggregate speed, turns the
    // saved blocks into saved time.
    let master_bw = 1120.0 / 2.0;
    println!("\n--- same cluster, one-port master link at {master_bw:.0} blocks/s ---\n");
    println!(
        "{:>22}  {:>13}  {:>13}  {:>8}  {:>9}",
        "strategy", "free makespan", "1-port mksp", "slowdown", "link util"
    );
    for strategy in [
        Strategy::Random,
        Strategy::Sorted,
        Strategy::Dynamic,
        Strategy::TwoPhase(BetaChoice::Analytic),
    ] {
        let base = ExperimentConfig {
            kernel: Kernel::Matmul { n },
            strategy,
            processors: p,
            platform: Some(platform.clone()),
            ..Default::default()
        };
        let free = run_once(&base, 0xCAFE);
        let priced = run_once(
            &ExperimentConfig {
                network: NetworkModel::OnePort { master_bw },
                ..base.clone()
            },
            0xCAFE,
        );
        println!(
            "{:>22}  {:>13.2}  {:>13.2}  {:>7.2}x  {:>8.0}%",
            strategy.label(base.kernel),
            free.makespan,
            priced.makespan,
            priced.makespan / free.makespan,
            100.0 * priced.link_utilization,
        );
    }
    println!(
        "\nThe ranking flips from \"all equal\" to \"communication volume is\n\
         destiny\": the strategies that ship fewer blocks finish first once\n\
         the link, not the compute, is the bottleneck."
    );
}
