//! How the analytic model tunes the two-phase threshold β.
//!
//! ```text
//! cargo run --release --example beta_tuning
//! ```
//!
//! Three views of §3.3/§3.6 of the paper:
//!
//! 1. the β landscape: analytic ratio vs β next to the simulated
//!    communication of `DynamicOuter2Phases` at the same β — the model's
//!    minimum falls inside the simulation's optimal plateau;
//! 2. β across problem shapes: the optimal threshold as a function of
//!    `(p, n)` (it grows with `n`, shrinks slowly with `p`);
//! 3. speed-agnosticism: β computed from the true heterogeneous speeds vs
//!    β from a homogeneous platform with the same `p` and `n` — within a
//!    few percent, so a runtime needs no speed estimates.

use hetsched::analysis::{beta_homogeneous_outer, OuterAnalysis};
use hetsched::core::{run_trials, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::platform::{Platform, SpeedDistribution};
use hetsched::util::rng::rng_for;

fn main() {
    let n = 100;
    let p = 20;
    let platform = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(7, 0));
    let model = OuterAnalysis::new(&platform, n);
    let (beta_star, ratio_star) = model.optimal_beta();

    println!("== 1. The β landscape (outer product, p = {p}, n = {n}) ==");
    println!("{:>6}  {:>10}  {:>12}", "β", "analysis", "simulation");
    for i in 0..=12 {
        let beta = 1.5 + i as f64 * 0.5;
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
            processors: p,
            platform: Some(platform.clone()),
            ..Default::default()
        };
        let sim = run_trials(&cfg, 5, 99);
        println!(
            "{beta:>6.1}  {:>10.3}  {:>12.3}",
            model.ratio(beta),
            sim.normalized_comm.mean()
        );
    }
    println!(
        "analytic optimum: β* = {beta_star:.3} (ratio {ratio_star:.3}); switch when \
         e^(−β*)·n² ≈ {:.0} tasks remain\n",
        model.phase2_tasks(beta_star)
    );

    println!("== 2. Optimal β across problem shapes (homogeneous platforms) ==");
    println!("{:>8} {:>8} {:>8}", "p", "n", "β*");
    for &(pp, nn) in &[
        (10usize, 100usize),
        (10, 1000),
        (100, 100),
        (100, 1000),
        (1000, 1000),
    ] {
        println!("{pp:>8} {nn:>8} {:>8.2}", beta_homogeneous_outer(pp, nn));
    }

    println!("\n== 3. Speed-agnosticism (§3.6) ==");
    let hom = beta_homogeneous_outer(p, n);
    println!("β from homogeneous approximation: {hom:.4}");
    for seed in 0..5u64 {
        let pf = Platform::sample(
            p,
            &SpeedDistribution::paper_default(),
            &mut rng_for(seed, 1),
        );
        let het = OuterAnalysis::new(&pf, n).optimal_beta().0;
        println!(
            "β from heterogeneous draw {seed}:     {het:.4}  (deviation {:+.2}%)",
            100.0 * (het - hom) / hom
        );
    }
    println!(
        "\nThe threshold only needs the matrix size and the processor count —\n\
         the scheduler stays fully agnostic to processor speeds."
    );
}
