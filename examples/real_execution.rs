//! Run the schedulers for real: worker threads, actual `f64` blocks,
//! verified numerics.
//!
//! ```text
//! cargo run --release --example real_execution
//! ```
//!
//! The paper evaluates its strategies in simulation; this example drives the
//! *same* scheduler objects through `hetsched-exec`'s threaded mini-runtime
//! (a StarPU-in-miniature): a master thread makes every allocation decision,
//! workers request on demand over channels, blocks move for real, and the
//! assembled product is checked against a sequential reference.

use hetsched::exec::block::{reference_matmul, BlockedMatrix};
use hetsched::exec::{run_matmul, ExecConfig};
use hetsched::matmul::{DynamicMatrix2Phases, RandomMatrix};
use hetsched::platform::{matmul_lower_bound, Platform};
use std::time::Instant;

fn main() {
    let n = 12; // blocks per dimension → 1 728 block-update tasks
    let l = 48; // block edge — large enough that compute dominates messaging
    let speeds = vec![1.0, 1.0, 2.0, 4.0]; // one "GPU-ish" worker
    let p = speeds.len();

    println!(
        "C = A·B with {}×{} element matrices ({n}×{n} blocks of {l}×{l}), {p} worker threads",
        n * l,
        n * l
    );
    println!("emulated speeds: {speeds:?}\n");

    let a = BlockedMatrix::random(n, l, 101);
    let b = BlockedMatrix::random(n, l, 202);
    let reference = reference_matmul(&a, &b);
    let platform = Platform::from_speeds(speeds.clone());
    let lb = matmul_lower_bound(n, &platform);

    for (label, beta) in [("RandomMatrix", None), ("DynamicMatrix2Phases", Some(2.8))] {
        let cfg = ExecConfig {
            speeds: speeds.clone(),
            seed: 0xEC5,
            faults: Vec::new(),
        };
        let t0 = Instant::now();
        let (c, report) = match beta {
            Some(beta) => run_matmul(DynamicMatrix2Phases::with_beta(n, p, beta), &a, &b, &cfg),
            None => run_matmul(RandomMatrix::new(n, p), &a, &b, &cfg),
        };
        let elapsed = t0.elapsed();
        let err = c.max_abs_diff(&reference);
        assert!(err < 1e-10, "numerical verification failed: {err}");
        println!("{label}:");
        println!("  wall time            {elapsed:.2?}");
        println!("  max |C - reference|  {err:.2e}  (verified)");
        println!(
            "  input blocks shipped {:>6}  ({:.2}× the A+B lower-bound share)",
            report.input_blocks_shipped,
            // The lower bound counts A, B and C faces; inputs are 2/3 of it.
            report.input_blocks_shipped as f64 / (lb * 2.0 / 3.0)
        );
        println!(
            "  result blocks back   {:>6}",
            report.result_blocks_returned
        );
        println!("  tasks per worker     {:?}", report.tasks_per_worker);
        println!();
    }

    println!(
        "Both runs compute the identical, verified product; the data-aware\n\
         scheduler simply moves far fewer blocks to do it, and the 4×-speed\n\
         worker automatically takes the largest task share. (Exact speed\n\
         proportionality needs compute ≫ per-request latency; on a machine\n\
         with fewer cores than workers the shares compress toward equal,\n\
         which is itself the unpredictability the paper's demand-driven\n\
         schedulers are designed to absorb.)"
    );
}
