//! Static perfect-knowledge partitioning vs demand-driven dynamic
//! scheduling, with utilization Gantt charts.
//!
//! ```text
//! cargo run --release --example static_vs_dynamic
//! ```
//!
//! The paper's §3.1 cites the 7/4-approximation static square partition
//! (Beaumont et al. 2002) as the communication yardstick, then argues that
//! real platforms are too unpredictable for static allocation. Both claims,
//! measured: the static plan moves ~half the data of the dynamic scheduler
//! — and falls apart the moment a worker is slower than it declared.

use hetsched::outer::DynamicOuter2Phases;
use hetsched::partition::StaticOuter;
use hetsched::platform::{outer_lower_bound, Platform, SpeedModel};
use hetsched::sim::run_traced;
use hetsched::util::rng::rng_for;

fn main() {
    let n = 100;
    let p = 8;
    // What the workers *claim* to run at.
    let declared = Platform::from_speeds(vec![60.0, 60.0, 60.0, 60.0, 80.0, 80.0, 100.0, 100.0]);
    // Reality: worker 0 is 5× slower (thermal throttling, a noisy
    // neighbour, an old node — pick your favourite).
    let mut speeds = declared.speeds().to_vec();
    speeds[0] /= 5.0;
    let actual = Platform::from_speeds(speeds);
    let lb = outer_lower_bound(n, &actual);
    let ideal = (n * n) as f64 / actual.total_speed();

    println!("Outer product, n = {n}: worker 0 runs 5× slower than declared.\n");

    let (s_rep, _, s_trace) = run_traced(
        &actual,
        SpeedModel::Fixed,
        StaticOuter::new(n, &declared),
        &mut rng_for(1, 0),
    );
    println!("StaticOuter (plan from declared speeds):");
    println!(
        "  comm {:.2}× bound, makespan {:.2}× ideal",
        s_rep.normalized(lb),
        s_rep.makespan / ideal
    );
    println!("{}", s_trace.gantt(p, 60));

    let beta = hetsched::analysis::beta_homogeneous_outer(p, n);
    let (d_rep, _, d_trace) = run_traced(
        &actual,
        SpeedModel::Fixed,
        DynamicOuter2Phases::with_beta(n, p, beta),
        &mut rng_for(1, 0),
    );
    println!("DynamicOuter2Phases (speed-agnostic, β_hom = {beta:.2}):");
    println!(
        "  comm {:.2}× bound, makespan {:.2}× ideal",
        d_rep.normalized(lb),
        d_rep.makespan / ideal
    );
    println!("{}", d_trace.gantt(p, 60));

    println!(
        "Static ships the least data but workers 1–7 idle (blank tails above)\n\
         while worker 0 grinds through its oversized rectangle. The dynamic\n\
         scheduler never knew any speeds and still keeps everyone busy to the\n\
         end — that is the paper's case for dynamic runtime scheduling."
    );
}
