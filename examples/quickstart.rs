//! Quickstart: compare the four outer-product scheduling strategies on a
//! random heterogeneous platform.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This reproduces in miniature the paper's core observation (Figs. 1/4):
//! locality-oblivious strategies (`RandomOuter`, `SortedOuter`) ship each
//! input block to many workers, while the data-aware strategies stay close
//! to the communication lower bound, and the two-phase variant with the
//! analytically chosen threshold does best.

use hetsched::core::{run_trials, BetaChoice, ExperimentConfig, Kernel, Strategy};

fn main() {
    let n = 100; // blocks per vector → n² = 10 000 tasks
    let p = 20; // workers, speeds ~ U[10, 100]
    let trials = 10;
    let seed = 0xC0FFEE;

    println!("Outer product: n = {n} blocks, p = {p} heterogeneous workers");
    println!(
        "normalized communication volume (mean ± std over {trials} trials, 1.0 = lower bound)\n"
    );

    let strategies = [
        Strategy::Random,
        Strategy::Sorted,
        Strategy::Dynamic,
        Strategy::TwoPhase(BetaChoice::Analytic),
    ];

    for strategy in strategies {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy,
            processors: p,
            ..Default::default()
        };
        let summary = run_trials(&cfg, trials, seed);
        let beta = if summary.beta_used.count() > 0 {
            format!("  (analytic β = {:.2})", summary.beta_used.mean())
        } else {
            String::new()
        };
        println!(
            "{:>22}: {:5.2} ± {:4.2}{}",
            strategy.label(cfg.kernel),
            summary.normalized_comm.mean(),
            summary.normalized_comm.std_dev(),
            beta
        );
    }

    println!(
        "\nThe data-aware two-phase strategy needs ~2× the lower bound;\n\
         the random baseline replicates blocks ~4–6× more than necessary."
    );
}
