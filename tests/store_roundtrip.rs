//! Golden round-trip fidelity for the trace-analytics warehouse: a probed
//! run ingested into a store and queried back must reproduce the original
//! `ProbeSeries` samples and `RunResult` metrics exactly — f64 values
//! bit-for-bit, since columns store raw IEEE-754 bits, not decimal text.

use hetsched::core::runner::trial_seed;
use hetsched::core::{
    run_once_observed, run_trials_collected, ExperimentConfig, Kernel, NetworkModel, Strategy,
};
use hetsched::sim::ProbeConfig;
use hetsched::store::{
    build_query, probe_rows, report_rows, run_query, sim_run_id, summary_rows, RunKey, Store, Value,
};

const SEED: u64 = 0xC0FFEE;
const TRIALS: usize = 3;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        kernel: Kernel::Outer { n: 32 },
        strategy: Strategy::Dynamic,
        processors: 6,
        network: NetworkModel::OnePort { master_bw: 50.0 },
        ..Default::default()
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hetsched-roundtrip-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ingests one probed run the way `simulate --store` does and returns
/// the store plus the in-memory originals to compare against.
fn ingest(
    dir: &std::path::Path,
) -> (
    Store,
    Vec<hetsched::core::RunResult>,
    hetsched::sim::ProbeSeries,
) {
    let cfg = cfg();
    let (results, summary) = run_trials_collected(&cfg, TRIALS, SEED, Some(1));
    let probe = ProbeConfig::by_events(8);
    let obs = run_once_observed(&cfg, trial_seed(SEED, 0), probe);

    let store = Store::open(dir).unwrap();
    let run_id = sim_run_id(SEED, TRIALS);
    let key = RunKey::new("golden", &run_id, SEED, &cfg);
    let strategy = cfg.strategy.label(cfg.kernel);
    let mut batch = store.batch();
    batch.push_all(summary_rows(&key, strategy, &summary));
    for (i, r) in results.iter().enumerate() {
        batch.push_all(report_rows(&key, strategy, i, trial_seed(SEED, i), r));
    }
    let beta = results
        .first()
        .and_then(|r| r.beta_used)
        .unwrap_or(f64::NAN);
    batch.push_all(probe_rows(&key, strategy, beta, &obs.probes));
    batch.commit().unwrap();
    (store, results, obs.probes)
}

fn f64_of(v: &Value) -> f64 {
    match v.as_f64() {
        Some(x) => x,
        None => panic!("expected a numeric value, got {v:?}"),
    }
}

#[test]
fn probed_run_round_trips_bit_exactly() {
    let dir = scratch("golden");
    let (store, results, probes) = ingest(&dir);

    // Every probe sample comes back: one row per (sample, worker), in
    // (t, worker) order, with every per-worker field bit-identical.
    let q = build_query(
        Some("t,worker,blocks,tasks,useful,link_busy,queue_depth,remaining,events"),
        Some("kind=probe"),
        None,
        None,
        None,
    )
    .unwrap();
    let res = run_query(&store, &q).unwrap();
    let workers = probes.workers();
    assert_eq!(
        res.rows.len(),
        probes.len() * workers,
        "row per (sample, worker)"
    );
    let mut rows = res.rows.clone();
    rows.sort_by(|a, b| {
        f64_of(&a[0])
            .total_cmp(&f64_of(&b[0]))
            .then(f64_of(&a[1]).total_cmp(&f64_of(&b[1])))
    });
    for (si, s) in probes.iter().enumerate() {
        for w in 0..workers {
            let row = &rows[si * workers + w];
            assert_eq!(
                f64_of(&row[0]).to_bits(),
                s.time.to_bits(),
                "t of sample {si}"
            );
            assert_eq!(f64_of(&row[1]) as usize, w);
            assert_eq!(f64_of(&row[2]) as u64, s.blocks_per_proc[w]);
            assert_eq!(f64_of(&row[3]) as u64, s.tasks_per_proc[w]);
            assert_eq!(
                f64_of(&row[4]).to_bits(),
                s.useful_fraction[w].to_bits(),
                "useful fraction of sample {si} worker {w}"
            );
            assert_eq!(f64_of(&row[5]).to_bits(), s.link_busy.to_bits());
            assert_eq!(f64_of(&row[6]) as usize, s.queue_depth);
            assert_eq!(f64_of(&row[7]) as usize, s.remaining);
            assert_eq!(f64_of(&row[8]) as u64, s.events);
        }
    }

    // Every trial's report metrics come back bit-exactly, keyed by the
    // trial index stored in `t`.
    for (metric, pick) in [
        (
            "makespan",
            (|r: &hetsched::core::RunResult| r.makespan) as fn(&hetsched::core::RunResult) -> f64,
        ),
        ("normalized_comm", |r| r.normalized_comm),
        ("lower_bound", |r| r.lower_bound),
        ("link_utilization", |r| r.link_utilization),
    ] {
        let q = build_query(
            Some("t,value"),
            Some(&format!("kind=report,metric={metric}")),
            None,
            None,
            None,
        )
        .unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows.len(), TRIALS, "{metric}: one row per trial");
        for row in &res.rows {
            let trial = f64_of(&row[0]) as usize;
            assert_eq!(
                f64_of(&row[1]).to_bits(),
                pick(&results[trial]).to_bits(),
                "{metric} of trial {trial}"
            );
        }
    }

    // Aggregates agree with the originals: mean(makespan) over the
    // ingested report rows equals the arithmetic mean of the trials.
    let q = build_query(
        None,
        Some("kind=report,metric=makespan"),
        None,
        Some("mean(value),count"),
        None,
    )
    .unwrap();
    let res = run_query(&store, &q).unwrap();
    let mean = results.iter().map(|r| r.makespan).sum::<f64>() / TRIALS as f64;
    assert_eq!(f64_of(&res.rows[0][1]) as usize, TRIALS);
    assert!((f64_of(&res.rows[0][0]) - mean).abs() < 1e-12);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reingesting_the_same_run_is_byte_stable() {
    let dir_a = scratch("stable-a");
    let dir_b = scratch("stable-b");
    let (store_a, _, _) = ingest(&dir_a);
    let (store_b, _, _) = ingest(&dir_b);

    // Identical runs produce identical content-addressed segments …
    let names = |s: &Store| -> Vec<String> {
        s.segment_paths()
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect()
    };
    assert_eq!(names(&store_a), names(&store_b));

    // … and identical query output, byte for byte.
    let q = build_query(
        None,
        Some("kind=report"),
        Some("metric"),
        Some("count,mean(value),min(value),max(value)"),
        None,
    )
    .unwrap();
    let csv_a = run_query(&store_a, &q).unwrap().to_csv();
    let csv_b = run_query(&store_b, &q).unwrap().to_csv();
    assert_eq!(csv_a, csv_b);
    assert!(!csv_a.is_empty());

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
