//! Every figure of the paper, in quick mode, checked for the qualitative
//! findings the paper reports. (The paper-scale regeneration lives in the
//! `figures` binary; EXPERIMENTS.md records a full run.)

use hetsched::core::figures::{
    fig1, fig10, fig11, fig2, fig4, fig5, fig6, fig7, fig8, fig9, FigOpts,
};
use hetsched::core::FigureData;

fn opts() -> FigOpts {
    FigOpts::quick()
}

fn series_mean(fig: &FigureData, label: &str) -> f64 {
    fig.series(label)
        .unwrap_or_else(|| panic!("{}: missing series {label}", fig.id))
        .overall_mean()
}

#[test]
fn fig1_data_aware_beats_oblivious() {
    let f = fig1(&opts());
    assert!(series_mean(&f, "DynamicOuter") < series_mean(&f, "RandomOuter"));
    assert!(series_mean(&f, "DynamicOuter") < series_mean(&f, "SortedOuter"));
    // Nothing beats the lower bound.
    for s in &f.series {
        for p in &s.points {
            assert!(p.mean >= 0.99, "{}: {} below bound", s.label, p.mean);
        }
    }
}

#[test]
fn fig2_endpoints_recover_pure_strategies() {
    let f = fig2(&opts());
    let two = f.series("DynamicOuter2Phases").unwrap();
    let first = two.points.first().unwrap();
    let last = two.points.last().unwrap();
    assert_eq!(first.x, 0.0);
    assert_eq!(last.x, 100.0);
    // 0 % phase 1 ≈ RandomOuter, 100 % ≈ DynamicOuter.
    let random = series_mean(&f, "RandomOuter");
    let dynamic = series_mean(&f, "DynamicOuter");
    assert!((first.mean - random).abs() / random < 0.25);
    assert!((last.mean - dynamic).abs() / dynamic < 0.25);
}

#[test]
fn fig4_and_fig5_analysis_tracks_two_phase_and_gap_grows_with_n() {
    let f4 = fig4(&opts());
    let f5 = fig5(&opts());
    for f in [&f4, &f5] {
        let two = f.series("DynamicOuter2Phases").unwrap();
        let ana = f.series("Analysis").unwrap();
        for (pt, pa) in two.points.iter().zip(&ana.points) {
            assert!(
                (pt.mean - pa.mean).abs() / pt.mean < 0.2,
                "{}: p={} sim {} vs analysis {}",
                f.id,
                pt.x,
                pt.mean,
                pa.mean
            );
        }
    }
    // Fig. 5's point: with larger n, the random/data-aware gap widens.
    let gap4 = series_mean(&f4, "RandomOuter") / series_mean(&f4, "DynamicOuter2Phases");
    let gap5 = series_mean(&f5, "RandomOuter") / series_mean(&f5, "DynamicOuter2Phases");
    assert!(
        gap5 > gap4,
        "gap at larger n {gap5:.2} ≤ gap at smaller {gap4:.2}"
    );
}

#[test]
fn fig6_u_shape_and_two_phase_beats_dynamic_at_optimum() {
    let f = fig6(&opts());
    let sim = f.series("DynamicOuter2Phases").unwrap();
    let dynamic = series_mean(&f, "DynamicOuter");
    let best = sim
        .points
        .iter()
        .map(|p| p.mean)
        .fold(f64::INFINITY, f64::min);
    assert!(best < dynamic, "best two-phase {best} vs dynamic {dynamic}");
}

#[test]
fn fig7_heterogeneity_barely_moves_the_curves() {
    let f = fig7(&opts());
    // §3.5: "the heterogeneity degree has very little impact" — compare
    // each strategy's values across the sweep, skipping the degenerate
    // h = 0 point: with *exactly* equal speeds and a simultaneous start
    // the deterministic SortedOuter falls into lock-step round-robin and
    // gets artificially good column reuse, an artifact any jitter removes.
    for s in &f.series {
        let pts: Vec<f64> = s.points.iter().skip(1).map(|p| p.mean).collect();
        let lo = pts.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = pts.iter().cloned().fold(0.0, f64::max);
        assert!(
            (hi - lo) / lo < 0.25,
            "{}: h-sweep moved from {lo:.2} to {hi:.2}",
            s.label
        );
    }
    // And the ranking is preserved at every h, including h = 0.
    let two = f.series("DynamicOuter2Phases").unwrap();
    let rnd = f.series("RandomOuter").unwrap();
    for (a, b) in two.points.iter().zip(&rnd.points) {
        assert!(a.mean < b.mean);
    }
}

#[test]
fn fig8_scenarios_do_not_change_the_story() {
    let f = fig8(&opts());
    let two = f.series("DynamicOuter2Phases").unwrap();
    let dynamic = f.series("DynamicOuter").unwrap();
    let random = f.series("RandomOuter").unwrap();
    let analysis = f.series("Analysis").unwrap();
    for i in 0..two.points.len() {
        assert!(two.points[i].mean <= dynamic.points[i].mean * 1.1);
        assert!(dynamic.points[i].mean < random.points[i].mean);
        // Analysis stays close to the two-phase simulation per scenario
        // (including the dyn.* ones, where it uses the base speeds).
        let (s, a) = (two.points[i].mean, analysis.points[i].mean);
        assert!(
            (s - a).abs() / s < 0.2,
            "scenario {}: sim {s:.2} vs analysis {a:.2}",
            two.points[i].x
        );
    }
}

#[test]
fn fig9_and_fig10_matmul_story() {
    let f9 = fig9(&opts());
    let f10 = fig10(&opts());
    for f in [&f9, &f10] {
        assert!(series_mean(f, "DynamicMatrix2Phases") <= series_mean(f, "DynamicMatrix") * 1.05);
        assert!(series_mean(f, "DynamicMatrix") < series_mean(f, "RandomMatrix"));
    }
    let gap9 = series_mean(&f9, "RandomMatrix") / series_mean(&f9, "DynamicMatrix2Phases");
    let gap10 = series_mean(&f10, "RandomMatrix") / series_mean(&f10, "DynamicMatrix2Phases");
    assert!(gap10 > gap9, "matmul gap should grow with n");
}

#[test]
fn fig11_u_shape_with_analysis_tracking() {
    let f = fig11(&opts());
    let sim = f.series("DynamicMatrix2Phases").unwrap();
    let ana = f.series("Analysis").unwrap();
    for (ps, pa) in sim.points.iter().zip(&ana.points) {
        assert!(
            (ps.mean - pa.mean).abs() / ps.mean < 0.3,
            "β={}: sim {} vs analysis {}",
            ps.x,
            ps.mean,
            pa.mean
        );
    }
}

#[test]
fn figures_render_csv_and_tables() {
    let f = fig1(&opts());
    let csv = f.to_csv();
    assert!(csv.starts_with("figure,series,x,mean,std_dev\n"));
    assert!(csv.lines().count() > f.series.len());
    let table = f.to_table();
    assert!(table.contains("fig1"));
    for s in &f.series {
        assert!(table.contains(&s.label));
    }
}
