//! Parallel-query and compaction invariants over the trace-analytics
//! store, end to end:
//!
//! 1. **Thread-count independence** — a grouped aggregate and a plain
//!    projection over a multi-segment, multi-chunk store render
//!    byte-identical CSV/JSONL at `--threads` 1, 2, and 8 (the partial
//!    aggregate states merge in (segment, chunk) order, never in thread
//!    completion order).
//! 2. **Compaction equivalence** — merging a fragmented store changes the
//!    file layout, not the data: fewer segments, identical query results,
//!    run keys preserved for replay dedupe.
//! 3. **Crash-mid-compact recovery** — a temp file left behind by a
//!    crashed writer is invisible to queries and swept by the next
//!    compaction pass.

use hetsched_store::{build_query, run_query, run_query_with, Row, Store, CHUNK_ROWS};
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsc-par-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A fragmented campaign: `batches` one-run segments of `rows_per` rows
/// each, with interleaved strategies and full-range values so group-by,
/// predicates, and zone pruning all have work to do.
fn fragmented_store(dir: &Path, batches: usize, rows_per: usize) -> Store {
    let store = Store::open(dir).unwrap();
    for b in 0..batches {
        let mut batch = store.batch();
        for i in 0..rows_per {
            let mut r = Row::new("camp", &format!("run-{b}"), "report", "cfg");
            r.strategy = if (b + i) % 3 == 0 {
                "Dynamic".to_string()
            } else {
                "Random".to_string()
            };
            r.metric = "makespan".to_string();
            r.seed = b as u64;
            r.worker = (i % 7) as i64;
            r.blocks = ((b * 31 + i * 7) % 101) as u64;
            r.value = (b * rows_per + i) as f64 * 0.125;
            r.useful = ((i * 13 + b) % 100) as f64 / 100.0;
            batch.push(r);
        }
        batch.commit().unwrap();
    }
    store
}

#[test]
fn query_output_is_byte_identical_at_any_thread_count() {
    let dir = scratch("threads");
    let store = fragmented_store(&dir, 12, 200);
    let grouped = build_query(
        None,
        Some("kind=report,metric=makespan"),
        Some("strategy,worker"),
        Some("count,mean(value),sum(useful),min(value),max(value),p50(value),p95(value)"),
        None,
    )
    .unwrap();
    let plain = build_query(
        Some("run,worker,value"),
        Some("value>=100,blocks<50"),
        None,
        None,
        None,
    )
    .unwrap();
    for (name, q) in [("grouped", &grouped), ("plain", &plain)] {
        let base = run_query_with(&store, q, Some(1)).unwrap();
        assert!(!base.rows.is_empty(), "{name} query must match rows");
        for threads in [2usize, 8] {
            let res = run_query_with(&store, q, Some(threads)).unwrap();
            assert_eq!(
                res.to_csv(),
                base.to_csv(),
                "{name} CSV must be byte-identical at {threads} threads"
            );
            assert_eq!(
                res.to_jsonl(),
                base.to_jsonl(),
                "{name} JSONL must be byte-identical at {threads} threads"
            );
        }
        // The default (all cores) is the same engine, same merge order.
        assert_eq!(run_query(&store, q).unwrap().to_csv(), base.to_csv());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_preserves_query_results_and_run_keys() {
    let dir = scratch("compact");
    let store = fragmented_store(&dir, 30, 50);
    assert_eq!(store.segment_paths().unwrap().len(), 30);

    // Association-free aggregates are exact whatever the chunk layout, so
    // byte-level equality must hold across compaction. (A mean's sum
    // re-associates when chunk boundaries move — compare it numerically.)
    let exact = build_query(
        None,
        Some("kind=report"),
        Some("strategy"),
        Some("count,min(value),max(value),p50(value),p95(useful)"),
        None,
    )
    .unwrap();
    let mean_q = build_query(None, None, Some("run"), Some("count,mean(value)"), None).unwrap();
    let pre_exact = run_query(&store, &exact).unwrap();
    let pre_mean = run_query(&store, &mean_q).unwrap();
    let pre_rows = store.total_rows().unwrap();

    let report = store.compact(CHUNK_ROWS).unwrap();
    assert_eq!(report.merged, 30);
    assert_eq!(report.rows, 30 * 50);
    assert_eq!(
        store.segment_paths().unwrap().len(),
        1,
        "1500 rows fit one chunk"
    );
    assert_eq!(store.total_rows().unwrap(), pre_rows);

    let post_exact = run_query(&store, &exact).unwrap();
    assert_eq!(
        post_exact.to_csv(),
        pre_exact.to_csv(),
        "exact aggregates unchanged"
    );
    let post_mean = run_query(&store, &mean_q).unwrap();
    assert_eq!(pre_mean.rows.len(), post_mean.rows.len());
    for (pre, post) in pre_mean.rows.iter().zip(&post_mean.rows) {
        assert_eq!(pre[0], post[0], "same groups in the same order");
        assert_eq!(pre[1], post[1], "counts are exact");
        let (a, b) = match (&pre[2], &post[2]) {
            (hetsched_store::Value::F64(a), hetsched_store::Value::F64(b)) => (*a, *b),
            other => panic!("mean cells must be floats, got {other:?}"),
        };
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "mean {a} vs {b}");
    }

    // Replay dedupe still sees every ingested run.
    for b in 0..30 {
        assert!(
            store
                .contains_run("camp", &format!("run-{b}"), "cfg")
                .unwrap(),
            "run-{b} key survives compaction"
        );
    }
    // A fresh handle (cold cache) agrees — the on-disk truth, not the
    // cached footers, carries the keys.
    let fresh = Store::open(&dir).unwrap();
    assert!(fresh.contains_run("camp", "run-29", "cfg").unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_compact_leaves_queries_intact_and_is_swept() {
    let dir = scratch("crash");
    let store = fragmented_store(&dir, 4, 25);
    let q = build_query(None, None, None, Some("count"), None).unwrap();
    let before = run_query(&store, &q).unwrap().to_csv();

    // A compaction (or ingest) that died mid-write leaves its temp file;
    // `segment_paths` only matches committed `seg-*.hsc` names, so scans
    // never see it.
    let stale = dir.join(".tmp-seg-0000000000000000.hsc-999999");
    std::fs::write(&stale, b"torn half-written segment").unwrap();
    assert_eq!(run_query(&store, &q).unwrap().to_csv(), before);
    assert_eq!(Store::open(&dir).unwrap().total_rows().unwrap(), 100);

    // The next pass sweeps the foreign-pid leftover and compacts as if
    // the crash never happened.
    let report = store.compact(CHUNK_ROWS).unwrap();
    assert_eq!(report.tmp_cleaned, 1);
    assert!(!stale.exists(), "stale temp file swept");
    assert_eq!(report.merged, 4);
    assert_eq!(run_query(&store, &q).unwrap().to_csv(), before);
    std::fs::remove_dir_all(&dir).ok();
}
