//! The network subsystem must be invisible until asked for.
//!
//! Two layers of protection:
//!
//! 1. **Golden values.** The numbers below were captured from the engine
//!    *before* `hetsched-net` existed (seed `0x5EED`, 6 workers, default
//!    `U[10,100]` speed draw). Every strategy must still reproduce them bit
//!    for bit under the default (`Infinite`) network — any drift means the
//!    refactor touched the free-communication path.
//! 2. **Explicit-vs-implicit.** `Engine::with_network(Infinite)` must be
//!    indistinguishable from never calling `with_network` at all: identical
//!    report *and* identical request trace, for all eight strategies.
//!
//! A third test exercises the acceptance criterion of the subsystem itself:
//! under a tight one-port master link, `DynamicOuter`'s lower communication
//! volume must translate into a strictly better makespan than
//! `RandomOuter`'s, and the advantage must vanish once bandwidth is ample.

use hetsched::core::{run_once, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::matmul::{DynamicMatrix, DynamicMatrix2Phases, RandomMatrix, SortedMatrix};
use hetsched::net::NetworkModel;
use hetsched::outer::{DynamicOuter, DynamicOuter2Phases, RandomOuter, SortedOuter};
use hetsched::platform::{Platform, SpeedModel};
use hetsched::sim::{Engine, Scheduler, SimReport, Trace};
use hetsched::util::rng::rng_for;

const SEED: u64 = 0x5EED;

struct Golden {
    kernel: Kernel,
    strategy: Strategy,
    blocks: u64,
    makespan_bits: u64,
    tasks: [u64; 6],
}

/// Captured from the pre-network engine (commit `4fe48f8`) with the exact
/// program in the module docs. Do not regenerate casually: a change here is
/// a behavior change in the default simulation path.
const GOLDEN: [Golden; 8] = [
    Golden {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Random,
        blocks: 262,
        makespan_bits: 0x3fff211bdd45ee88,
        tasks: [77, 39, 131, 32, 160, 137],
    },
    Golden {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Sorted,
        blocks: 280,
        makespan_bits: 0x3fff211bdd45ee88,
        tasks: [77, 39, 131, 32, 160, 137],
    },
    Golden {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Dynamic,
        blocks: 196,
        makespan_bits: 0x400028e484839820,
        tasks: [79, 41, 129, 31, 156, 140],
    },
    Golden {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::TwoPhase(BetaChoice::Analytic),
        blocks: 194,
        makespan_bits: 0x400028e484839820,
        tasks: [79, 41, 130, 32, 158, 136],
    },
    Golden {
        kernel: Kernel::Matmul { n: 10 },
        strategy: Strategy::Random,
        blocks: 1353,
        makespan_bits: 0x400ace767397cdec,
        tasks: [134, 68, 228, 55, 277, 238],
    },
    Golden {
        kernel: Kernel::Matmul { n: 10 },
        strategy: Strategy::Sorted,
        blocks: 1444,
        makespan_bits: 0x400ace767397cdec,
        tasks: [134, 68, 228, 55, 277, 238],
    },
    Golden {
        kernel: Kernel::Matmul { n: 10 },
        strategy: Strategy::Dynamic,
        blocks: 1278,
        makespan_bits: 0x400e7fb21ae2e702,
        tasks: [128, 63, 260, 56, 264, 229],
    },
    Golden {
        kernel: Kernel::Matmul { n: 10 },
        strategy: Strategy::TwoPhase(BetaChoice::Analytic),
        blocks: 877,
        makespan_bits: 0x400e7fb21ae2e702,
        tasks: [128, 65, 260, 53, 266, 228],
    },
];

#[test]
fn default_path_matches_pre_network_golden_values() {
    for g in GOLDEN {
        let cfg = ExperimentConfig {
            kernel: g.kernel,
            strategy: g.strategy,
            processors: 6,
            ..Default::default()
        };
        let label = g.strategy.label(g.kernel);
        let r = run_once(&cfg, SEED);
        assert_eq!(r.total_blocks, g.blocks, "{label}: blocks drifted");
        assert_eq!(
            r.makespan.to_bits(),
            g.makespan_bits,
            "{label}: makespan drifted ({} vs bits {:#018x})",
            r.makespan,
            g.makespan_bits
        );
        assert_eq!(r.tasks_per_proc, g.tasks, "{label}: task split drifted");
        assert_eq!(
            r.link_utilization, 0.0,
            "{label}: infinite model priced a link"
        );
        assert_eq!(r.max_queue_depth, 0, "{label}");
        assert_eq!(r.wasted_blocks, 0, "{label}");
        assert!(
            r.transfer_wait_per_proc.iter().all(|&w| w == 0.0),
            "{label}"
        );
    }
}

fn run_pair<S: Scheduler>(
    platform: &Platform,
    make: impl Fn() -> S,
) -> ((SimReport, Trace), (SimReport, Trace)) {
    let (ra, _, ta) =
        Engine::new(platform, SpeedModel::Fixed, make()).run_traced(&mut rng_for(SEED, 7));
    let (rb, _, tb) = Engine::new(platform, SpeedModel::Fixed, make())
        .with_network(NetworkModel::Infinite)
        .run_traced(&mut rng_for(SEED, 7));
    ((ra, ta), (rb, tb))
}

fn assert_identical(name: &str, a: (SimReport, Trace), b: (SimReport, Trace)) {
    let ((ra, ta), (rb, tb)) = (a, b);
    assert_eq!(
        ra.makespan.to_bits(),
        rb.makespan.to_bits(),
        "{name}: makespan"
    );
    assert_eq!(ra.total_blocks, rb.total_blocks, "{name}: blocks");
    assert_eq!(ra.lost_tasks, rb.lost_tasks, "{name}");
    assert_eq!(ra.reshipped_blocks, rb.reshipped_blocks, "{name}");
    assert_eq!(
        ra.ledger.tasks_per_proc(),
        rb.ledger.tasks_per_proc(),
        "{name}"
    );
    assert_eq!(
        ra.ledger.blocks_per_proc(),
        rb.ledger.blocks_per_proc(),
        "{name}"
    );
    assert_eq!(ta.events(), tb.events(), "{name}: traces diverge");
}

#[test]
fn explicit_infinite_network_is_bit_for_bit_identical() {
    let platform = Platform::from_speeds(vec![14.0, 95.0, 37.0, 61.0, 28.0, 80.0]);
    let (n, p, thresh) = (24, 6, 24 * 24 / 4);
    let (a, b) = run_pair(&platform, || RandomOuter::new(n, p));
    assert_identical("RandomOuter", a, b);
    let (a, b) = run_pair(&platform, || SortedOuter::new(n, p));
    assert_identical("SortedOuter", a, b);
    let (a, b) = run_pair(&platform, || DynamicOuter::new(n, p));
    assert_identical("DynamicOuter", a, b);
    let (a, b) = run_pair(&platform, || DynamicOuter2Phases::new(n, p, thresh));
    assert_identical("DynamicOuter2Phases", a, b);

    let (m, mthresh) = (10, 10 * 10 * 10 / 4);
    let (a, b) = run_pair(&platform, || RandomMatrix::new(m, p));
    assert_identical("RandomMatrix", a, b);
    let (a, b) = run_pair(&platform, || SortedMatrix::new(m, p));
    assert_identical("SortedMatrix", a, b);
    let (a, b) = run_pair(&platform, || DynamicMatrix::new(m, p));
    assert_identical("DynamicMatrix", a, b);
    let (a, b) = run_pair(&platform, || DynamicMatrix2Phases::new(m, p, mthresh));
    assert_identical("DynamicMatrix2Phases", a, b);
}

#[test]
fn one_port_sweep_has_a_crossover_where_dynamic_wins() {
    // Same seed → same platform draw for both strategies, so the makespans
    // are directly comparable at every bandwidth.
    let makespan = |strategy, bw: Option<f64>| {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 40 },
            strategy,
            processors: 8,
            network: match bw {
                Some(master_bw) => NetworkModel::OnePort { master_bw },
                None => NetworkModel::Infinite,
            },
            ..Default::default()
        };
        run_once(&cfg, SEED).makespan
    };

    // Sweep from starved to saturated and find the crossover.
    let sweep = [2.0, 5.0, 10.0, 25.0, 60.0, 150.0, 400.0, 1000.0];
    let mut crossover = None;
    for bw in sweep {
        let (rand, dynamic) = (
            makespan(Strategy::Random, Some(bw)),
            makespan(Strategy::Dynamic, Some(bw)),
        );
        if dynamic < rand * 0.98 && crossover.is_none() {
            crossover = Some(bw);
        }
    }
    let crossover = crossover.expect(
        "some bandwidth in the sweep must be tight enough for DynamicOuter's \
         lower communication volume to win on makespan",
    );

    // Below the crossover the link is the bottleneck: the win must be there
    // and must be a real margin, not noise.
    let (rand, dynamic) = (
        makespan(Strategy::Random, Some(crossover)),
        makespan(Strategy::Dynamic, Some(crossover)),
    );
    assert!(
        dynamic < rand * 0.98,
        "at bw={crossover}: dynamic {dynamic} vs random {rand}"
    );

    // With ample bandwidth both are compute-bound and work-conserving: the
    // advantage disappears (and neither is slower than its starved self).
    let (rand_hi, dyn_hi) = (
        makespan(Strategy::Random, Some(1e7)),
        makespan(Strategy::Dynamic, Some(1e7)),
    );
    assert!(
        (rand_hi - dyn_hi).abs() / rand_hi < 0.10,
        "ample bandwidth: {rand_hi} vs {dyn_hi} should be near-equal \
         (both are work-conserving; only end-game batch granularity differs)"
    );
    assert!(rand_hi < rand, "random must speed up when the link relaxes");

    // And the priced-but-ample run sits within a whisker of the free model.
    // (Not exactly equal: the networked loop draws allocations in a
    // different order, so the batches differ even when transfers are free.)
    let rand_free = makespan(Strategy::Random, None);
    assert!(
        (rand_hi - rand_free).abs() / rand_free < 0.05,
        "free {rand_free} vs ample one-port {rand_hi}"
    );
}
