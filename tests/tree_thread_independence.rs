//! Parallel tree-shard execution must be bit-for-bit independent of the
//! thread count: shards are conservative logical processes whose only
//! coupling — the root tier's input shipment — is resolved before any
//! shard runs, and shard reports and traces merge in shard order, never
//! completion order. These tests pin that contract end to end through
//! `ExperimentConfig::tree_threads`, including the rendered trace bytes.

use hetsched::core::{
    render_trace, run_once, ExperimentConfig, Kernel, RunResult, Strategy, Topology, TraceFormat,
};
use hetsched::net::NetworkModel;
use hetsched::sim::ProbeConfig;

const SEED: u64 = 0xC0FFEE;

fn tree_cfg(tree_threads: Option<usize>) -> ExperimentConfig {
    ExperimentConfig {
        kernel: Kernel::Outer { n: 36 },
        strategy: Strategy::Dynamic,
        processors: 9,
        topology: Topology::Tree { submasters: 3 },
        network: NetworkModel::OnePort { master_bw: 200.0 },
        tree_threads,
        ..Default::default()
    }
}

fn assert_runs_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.total_blocks, b.total_blocks, "{label}: total_blocks");
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{label}: makespan"
    );
    assert_eq!(
        a.link_utilization.to_bits(),
        b.link_utilization.to_bits(),
        "{label}: link_utilization"
    );
    assert_eq!(
        a.tasks_per_proc, b.tasks_per_proc,
        "{label}: tasks_per_proc"
    );
    assert_eq!(
        a.blocks_per_proc, b.blocks_per_proc,
        "{label}: blocks_per_proc"
    );
    assert_eq!(a.tier_blocks, b.tier_blocks, "{label}: tier_blocks");
}

/// A tree run's report is identical whether the shards run serially on
/// the caller's thread (`None`), on one thread, or fanned across several.
#[test]
fn tree_runs_are_thread_count_independent() {
    let serial = run_once(&tree_cfg(None), SEED);
    for threads in [1usize, 2, 4] {
        let parallel = run_once(&tree_cfg(Some(threads)), SEED);
        assert_runs_identical(&format!("threads={threads}"), &serial, &parallel);
    }
}

/// The merged shard trace — shifted onto the global clock, re-indexed to
/// global worker ids — renders to byte-identical JSONL for every shard
/// thread count.
#[test]
fn tree_traces_are_byte_identical_across_thread_counts() {
    let golden = render_trace(
        &tree_cfg(None),
        SEED,
        ProbeConfig::disabled(),
        TraceFormat::Jsonl,
    );
    assert!(
        golden.lines().count() > 10,
        "tree trace carries the shard events"
    );
    for threads in [1usize, 2, 4] {
        let again = render_trace(
            &tree_cfg(Some(threads)),
            SEED,
            ProbeConfig::disabled(),
            TraceFormat::Jsonl,
        );
        assert_eq!(golden, again, "JSONL trace differs at threads={threads}");
    }
}
