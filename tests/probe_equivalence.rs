//! Observation must be free: attaching a recorder — at any probe cadence,
//! with or without delta encoding — must leave the simulated numbers
//! bit-for-bit identical to the unobserved run. The engines consume the
//! same RNG stream whether or not a recorder rides along; these tests pin
//! that invariant for both the infinite-network and the priced-network
//! loops, with and without fault injection.

use hetsched::core::{
    run_once, run_once_observed, ExperimentConfig, Kernel, NetworkModel, RunResult, Strategy,
};
use hetsched::platform::{FailureModel, ProcId};
use hetsched::sim::ProbeConfig;

/// Every numeric field of the result, bit-exact for the floats.
fn assert_identical(plain: &RunResult, observed: &RunResult, what: &str) {
    assert_eq!(
        plain.makespan.to_bits(),
        observed.makespan.to_bits(),
        "{what}: makespan"
    );
    assert_eq!(plain.total_blocks, observed.total_blocks, "{what}: blocks");
    assert_eq!(
        plain.normalized_comm.to_bits(),
        observed.normalized_comm.to_bits(),
        "{what}: normalized comm"
    );
    assert_eq!(
        plain.tasks_per_proc, observed.tasks_per_proc,
        "{what}: tasks per proc"
    );
    assert_eq!(
        plain.blocks_per_proc, observed.blocks_per_proc,
        "{what}: blocks per proc"
    );
    assert_eq!(plain.lost_tasks, observed.lost_tasks, "{what}: lost tasks");
    assert_eq!(
        plain.reshipped_blocks, observed.reshipped_blocks,
        "{what}: reshipped blocks"
    );
    assert_eq!(
        plain.wasted_blocks, observed.wasted_blocks,
        "{what}: wasted blocks"
    );
    assert_eq!(
        plain.link_utilization.to_bits(),
        observed.link_utilization.to_bits(),
        "{what}: link utilization"
    );
    assert_eq!(
        plain.max_queue_depth, observed.max_queue_depth,
        "{what}: queue depth"
    );
    let waits: Vec<u64> = plain
        .transfer_wait_per_proc
        .iter()
        .map(|w| w.to_bits())
        .collect();
    let owaits: Vec<u64> = observed
        .transfer_wait_per_proc
        .iter()
        .map(|w| w.to_bits())
        .collect();
    assert_eq!(waits, owaits, "{what}: transfer waits");
}

/// The probe cadences under test: dense, sparse, time-based, and each with
/// delta-encoded counter columns.
fn probe_configs() -> Vec<(&'static str, ProbeConfig)> {
    vec![
        ("disabled", ProbeConfig::disabled()),
        ("every-event", ProbeConfig::by_events(1)),
        ("every-7", ProbeConfig::by_events(7)),
        ("every-64", ProbeConfig::by_events(64)),
        ("by-time", ProbeConfig::by_time(0.05)),
        (
            "every-7-delta",
            ProbeConfig::by_events(7).with_delta_encoding(),
        ),
        (
            "by-time-delta",
            ProbeConfig::by_time(0.05).with_delta_encoding(),
        ),
    ]
}

fn configs_under_test() -> Vec<(&'static str, ExperimentConfig)> {
    let base = ExperimentConfig {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Dynamic,
        processors: 5,
        ..Default::default()
    };
    vec![
        ("infinite", base.clone()),
        (
            "infinite+failure",
            ExperimentConfig {
                failures: FailureModel::none()
                    .fail_at(ProcId(1), 0.3)
                    .slow_down(ProcId(2), 2.0),
                ..base.clone()
            },
        ),
        (
            "one-port",
            ExperimentConfig {
                network: NetworkModel::OnePort { master_bw: 40.0 },
                link_latency: 0.01,
                ..base.clone()
            },
        ),
        (
            "one-port+failure",
            ExperimentConfig {
                network: NetworkModel::OnePort { master_bw: 40.0 },
                failures: FailureModel::none().fail_at(ProcId(0), 0.4),
                ..base
            },
        ),
    ]
}

#[test]
fn probed_runs_are_bit_identical_to_unprobed_runs() {
    for (cname, cfg) in configs_under_test() {
        for seed in [0x5EED, 7, 2026] {
            let plain = run_once(&cfg, seed);
            for (pname, probe) in probe_configs() {
                let obs = run_once_observed(&cfg, seed, probe);
                assert_identical(&plain, &obs.result, &format!("{cname}/{pname}/seed {seed}"));
            }
        }
    }
}

#[test]
fn probe_cadence_never_changes_what_is_observed() {
    // Different cadences sample the same trajectory at different points:
    // the final anchor sample (taken at the makespan for every cadence)
    // must agree exactly.
    let (_, cfg) = configs_under_test().remove(3);
    let dense = run_once_observed(&cfg, 11, ProbeConfig::by_events(1));
    let sparse = run_once_observed(&cfg, 11, ProbeConfig::by_events(100));
    let (d, s) = (dense.probes.last().unwrap(), sparse.probes.last().unwrap());
    assert_eq!(d.time.to_bits(), s.time.to_bits());
    assert_eq!(d.remaining, s.remaining);
    assert_eq!(d.blocks_per_proc, s.blocks_per_proc);
    assert_eq!(d.tasks_per_proc, s.tasks_per_proc);
    assert!(dense.probes.len() > sparse.probes.len());
}

#[test]
fn delta_encoding_materializes_the_same_series() {
    for (cname, cfg) in configs_under_test() {
        let plain = run_once_observed(&cfg, 3, ProbeConfig::by_events(5));
        let delta = run_once_observed(&cfg, 3, ProbeConfig::by_events(5).with_delta_encoding());
        assert_eq!(plain.probes.len(), delta.probes.len(), "{cname}");
        for (a, b) in plain.probes.iter().zip(delta.probes.iter()) {
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "{cname}");
            assert_eq!(a.remaining, b.remaining, "{cname}");
            assert_eq!(a.blocks_per_proc, b.blocks_per_proc, "{cname}");
            assert_eq!(a.tasks_per_proc, b.tasks_per_proc, "{cname}");
            assert_eq!(a.queue_depth, b.queue_depth, "{cname}");
        }
        assert!(delta.probes.delta_encoded());
        assert!(!plain.probes.delta_encoded());
    }
}
