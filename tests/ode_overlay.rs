//! Simulated vs analytic trajectories: the probed engine state must track
//! the §3.3 mean-field ODE within a stated tolerance band.
//!
//! The probe cadence is the real-time image of the analytic grid
//! (`t_i = τ_i·n²/Σs`), so simulated and predicted curves are compared on
//! the same sampling grid. Two bands are pinned:
//!
//! * the residual-task fraction against `1 − τ` (work conservation: exact
//!   up to batch granularity and the ≤ p in-flight batches);
//! * the cumulative shipped blocks against `Σ_k 2n·x_k(τ)` (Lemma 2
//!   inverted per worker — the model's actual communication prediction).

use hetsched::analysis::OuterAnalysis;
use hetsched::core::{run_once_observed, ExperimentConfig, Kernel, Strategy};
use hetsched::platform::Platform;
use hetsched::sim::ProbeConfig;

/// Probes one `DynamicOuter` run on `platform` and checks both simulated
/// trajectories against the ODE within `(residual_tol, blocks_tol)`.
fn assert_tracks_ode(platform: Platform, seed: u64, residual_tol: f64, blocks_tol: f64) {
    let n = 60;
    let p = platform.len();
    let model = OuterAnalysis::new(&platform, n);
    let total_speed = platform.total_speed();
    let tasks = (n * n) as f64;
    let max_blocks = (2 * n * p) as f64;
    let horizon = 0.9;
    let steps = 30usize;
    let traj = model.dynamic_trajectory(horizon, steps);
    let dt = horizon * tasks / total_speed / steps as f64;

    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n },
        strategy: Strategy::Dynamic,
        processors: p,
        platform: Some(platform),
        ..Default::default()
    };
    let obs = run_once_observed(&cfg, seed, ProbeConfig::by_time(dt));

    let mut checked = 0;
    for s in obs.probes.iter() {
        let tau = model.normalized_time(s.time, total_speed);
        if tau > horizon {
            continue;
        }
        let residual = s.remaining as f64 / tasks;
        let predicted_residual = 1.0 - tau;
        assert!(
            (residual - predicted_residual).abs() <= residual_tol,
            "τ={tau:.3}: simulated residual {residual:.4} vs ODE {predicted_residual:.4} \
             (band ±{residual_tol})"
        );

        // Nearest analytic grid point (samples sit on the first event at or
        // after each grid time, so the index matches up to rounding).
        let i = ((tau / horizon) * steps as f64).round() as usize;
        let i = i.min(steps);
        let shipped: u64 = s.blocks_per_proc.iter().sum();
        let sim_blocks = shipped as f64 / max_blocks;
        let ode_blocks = traj.total_blocks(i) / max_blocks;
        assert!(
            (sim_blocks - ode_blocks).abs() <= blocks_tol,
            "τ={tau:.3}: simulated blocks {sim_blocks:.4} vs ODE {ode_blocks:.4} \
             (band ±{blocks_tol})"
        );
        checked += 1;
    }
    assert!(
        checked >= steps / 2,
        "only {checked} samples landed inside the horizon"
    );
}

#[test]
fn dynamic_outer_tracks_the_ode_on_a_homogeneous_platform() {
    assert_tracks_ode(Platform::homogeneous(8), 11, 0.06, 0.08);
}

#[test]
fn dynamic_outer_tracks_the_ode_on_a_heterogeneous_platform() {
    assert_tracks_ode(
        Platform::from_speeds(vec![5.0, 10.0, 15.0, 20.0, 20.0, 30.0]),
        12,
        0.08,
        0.10,
    );
}

/// Networked engine: the trace's overlay events must reconcile with the
/// run's ledger — transfer wait summed from `Wait` events equals the
/// per-worker transfer wait the runner reports, and `Transfer` events
/// carry exactly the shipped volume.
#[test]
fn networked_trace_reconciles_with_the_run_result() {
    use hetsched::sim::EventKind;
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 40 },
        strategy: Strategy::Dynamic,
        processors: 5,
        network: hetsched::net::NetworkModel::OnePort { master_bw: 25.0 },
        ..Default::default()
    };
    let obs = run_once_observed(&cfg, 21, ProbeConfig::by_events(32));

    let transfer_blocks: u64 = obs
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Transfer)
        .map(|e| e.blocks)
        .sum();
    assert_eq!(transfer_blocks, obs.result.total_blocks);

    let wait_from_trace: f64 = obs
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::Wait)
        .map(|e| e.duration)
        .sum();
    let wait_from_ledger: f64 = obs.result.transfer_wait_per_proc.iter().sum();
    assert!(
        (wait_from_trace - wait_from_ledger).abs() < 1e-9,
        "trace wait {wait_from_trace} vs ledger wait {wait_from_ledger}"
    );

    let last = obs.probes.last().unwrap();
    assert!(last.link_busy > 0.0);
    assert_eq!(
        last.queue_depth, obs.result.max_queue_depth,
        "final probe sees the deepest queue"
    );
}
