//! The tree topology must be invisible at `submasters = 1`.
//!
//! A single-sub-master tree takes the real tree code path — shard
//! planning, rectangular shard schedulers, `run_tree` — but must reproduce
//! the flat engine bit for bit: same platform borrow, same RNG stream, no
//! tier transfers. This pins the identity for all eight strategies, with
//! and without a priced network, and with and without fault injection —
//! so every flat golden in `net_equivalence.rs` transitively keeps holding
//! under `Topology::Tree { submasters: 1 }`.
//!
//! A second battery checks that real hierarchies (`submasters ≥ 2`) stay
//! *correct*: every task computed exactly once, tier volume accounted, and
//! shard-local failures recovered.

use hetsched::core::{run_once, BetaChoice, ExperimentConfig, Kernel, Strategy, Topology};
use hetsched::net::NetworkModel;
use hetsched::platform::{FailureModel, ProcId};

const SEED: u64 = 0xC0FFEE;

fn eight_arms() -> Vec<(Kernel, Strategy)> {
    let strategies = [
        Strategy::Random,
        Strategy::Sorted,
        Strategy::Dynamic,
        Strategy::TwoPhase(BetaChoice::Analytic),
    ];
    let mut arms = Vec::new();
    for kernel in [Kernel::Outer { n: 24 }, Kernel::Matmul { n: 10 }] {
        for strategy in strategies {
            arms.push((kernel, strategy));
        }
    }
    arms
}

fn base_config(kernel: Kernel, strategy: Strategy) -> ExperimentConfig {
    ExperimentConfig {
        kernel,
        strategy,
        processors: 6,
        ..Default::default()
    }
}

/// Asserts two runs are bit-for-bit identical in every observable field.
fn assert_identical(
    label: &str,
    flat: &hetsched::core::RunResult,
    tree: &hetsched::core::RunResult,
) {
    assert_eq!(flat.total_blocks, tree.total_blocks, "{label}: blocks");
    assert_eq!(
        flat.makespan.to_bits(),
        tree.makespan.to_bits(),
        "{label}: makespan"
    );
    assert_eq!(flat.tasks_per_proc, tree.tasks_per_proc, "{label}: tasks");
    assert_eq!(
        flat.blocks_per_proc, tree.blocks_per_proc,
        "{label}: blocks/proc"
    );
    assert_eq!(flat.lost_tasks, tree.lost_tasks, "{label}: lost");
    assert_eq!(
        flat.reshipped_blocks, tree.reshipped_blocks,
        "{label}: reshipped"
    );
    assert_eq!(
        flat.transfer_wait_per_proc, tree.transfer_wait_per_proc,
        "{label}: waits"
    );
    assert_eq!(
        flat.link_utilization.to_bits(),
        tree.link_utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(
        flat.max_queue_depth, tree.max_queue_depth,
        "{label}: queue depth"
    );
    assert_eq!(flat.wasted_blocks, tree.wasted_blocks, "{label}: wasted");
    assert_eq!(flat.phase_split, tree.phase_split, "{label}: phase split");
    assert_eq!(flat.beta_used, tree.beta_used, "{label}: β");
    assert_eq!(
        tree.tier_blocks, 0,
        "{label}: single-sub-master tree is free"
    );
}

#[test]
fn k1_tree_is_bit_identical_to_flat_all_strategies() {
    for (kernel, strategy) in eight_arms() {
        let flat_cfg = base_config(kernel, strategy);
        let tree_cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 1 },
            ..flat_cfg.clone()
        };
        let flat = run_once(&flat_cfg, SEED);
        let tree = run_once(&tree_cfg, SEED);
        assert_identical(&format!("{kernel:?}/{strategy:?}"), &flat, &tree);
    }
}

#[test]
fn k1_tree_is_bit_identical_under_one_port_network() {
    for (kernel, strategy) in eight_arms() {
        let flat_cfg = ExperimentConfig {
            network: NetworkModel::OnePort { master_bw: 40.0 },
            link_latency: 0.02,
            ..base_config(kernel, strategy)
        };
        let tree_cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 1 },
            ..flat_cfg.clone()
        };
        let flat = run_once(&flat_cfg, SEED);
        let tree = run_once(&tree_cfg, SEED);
        assert_identical(&format!("{kernel:?}/{strategy:?}/one-port"), &flat, &tree);
    }
}

#[test]
fn k1_tree_is_bit_identical_under_fault_injection() {
    for (kernel, strategy) in eight_arms() {
        let flat_cfg = ExperimentConfig {
            failures: FailureModel::none()
                .fail_at(ProcId(1), 0.4)
                .slow_down(ProcId(0), 2.0),
            ..base_config(kernel, strategy)
        };
        let tree_cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 1 },
            ..flat_cfg.clone()
        };
        let flat = run_once(&flat_cfg, SEED);
        let tree = run_once(&tree_cfg, SEED);
        assert_identical(&format!("{kernel:?}/{strategy:?}/faults"), &flat, &tree);
        assert!(
            tree.lost_tasks > 0,
            "{kernel:?}/{strategy:?}: failure landed"
        );
    }
}

#[test]
fn real_hierarchy_completes_every_task_exactly_once() {
    for (kernel, strategy) in eight_arms() {
        for submasters in [2usize, 3] {
            let cfg = ExperimentConfig {
                topology: Topology::Tree { submasters },
                ..base_config(kernel, strategy)
            };
            let r = run_once(&cfg, SEED);
            let total: u64 = r.tasks_per_proc.iter().sum();
            assert_eq!(
                total as usize,
                kernel.total_tasks(),
                "{kernel:?}/{strategy:?}/k={submasters}"
            );
            assert!(
                r.tier_blocks > 0,
                "{kernel:?}/{strategy:?}/k={submasters}: root shipped shard inputs"
            );
            assert_eq!(
                r.total_blocks,
                r.blocks_per_proc.iter().sum::<u64>() + r.tier_blocks,
                "{kernel:?}/{strategy:?}/k={submasters}: tier volume accounted"
            );
        }
    }
}

#[test]
fn real_hierarchy_recovers_shard_local_failures() {
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Dynamic,
        processors: 6,
        topology: Topology::Tree { submasters: 2 },
        failures: FailureModel::none().fail_at(ProcId(4), 0.3),
        ..Default::default()
    };
    let r = run_once(&cfg, SEED);
    let total: u64 = r.tasks_per_proc.iter().sum();
    assert_eq!(total as usize, 24 * 24, "all tasks despite the failure");
    assert!(r.lost_tasks > 0, "the death landed mid-batch");
    // The dead worker belongs to shard 1 (workers 3..6); its lost tasks
    // must be finished by that shard's survivors.
    assert!(
        r.tasks_per_proc[3] + r.tasks_per_proc[5] > 0,
        "shard 1 survivors picked up the slack"
    );
}

#[test]
fn tree_runs_are_deterministic_and_seed_sensitive() {
    let cfg = ExperimentConfig {
        kernel: Kernel::Matmul { n: 10 },
        strategy: Strategy::TwoPhase(BetaChoice::Analytic),
        processors: 6,
        topology: Topology::Tree { submasters: 3 },
        network: NetworkModel::OnePort { master_bw: 60.0 },
        link_latency: 0.01,
        ..Default::default()
    };
    let a = run_once(&cfg, SEED);
    let b = run_once(&cfg, SEED);
    assert_eq!(a.total_blocks, b.total_blocks);
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.tasks_per_proc, b.tasks_per_proc);
    let c = run_once(&cfg, SEED + 1);
    assert!(
        c.total_blocks != a.total_blocks || c.makespan != a.makespan,
        "different seed should move the run"
    );
}

#[test]
fn priced_tier_delays_shard_starts() {
    // Tree under a tight one-port root: the run cannot finish before the
    // root has pushed every shard's inputs through its single channel.
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Dynamic,
        processors: 6,
        topology: Topology::Tree { submasters: 2 },
        network: NetworkModel::OnePort { master_bw: 5.0 },
        ..Default::default()
    };
    let r = run_once(&cfg, SEED);
    assert!(
        r.makespan >= r.tier_blocks as f64 / 5.0 - 1e-9,
        "makespan {} must cover the tier volume {} at bw 5",
        r.makespan,
        r.tier_blocks
    );
}
