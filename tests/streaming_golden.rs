//! Golden equivalence for the streaming trace path: a run streamed through
//! the chunked recorder must produce files byte-identical to the buffered
//! render — manifest line included — for every format, network model, and
//! chunk size, while holding peak buffered events at or below the chunk.

use hetsched::core::{
    render_trace, stream_trace, ExperimentConfig, Kernel, NetworkModel, Strategy, TraceFormat,
};
use hetsched::platform::{FailureModel, ProcId};
use hetsched::sim::ProbeConfig;

fn configs() -> Vec<(&'static str, ExperimentConfig)> {
    let base = ExperimentConfig {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Dynamic,
        processors: 5,
        ..Default::default()
    };
    vec![
        ("infinite", base.clone()),
        (
            "one-port",
            ExperimentConfig {
                network: NetworkModel::OnePort { master_bw: 40.0 },
                failures: FailureModel::none().fail_at(ProcId(1), 0.4),
                ..base
            },
        ),
    ]
}

#[test]
fn streamed_files_are_byte_identical_to_buffered_renders() {
    for (cname, cfg) in configs() {
        for format in [TraceFormat::Jsonl, TraceFormat::Chrome] {
            let buffered = render_trace(&cfg, 0x5EED, ProbeConfig::by_events(16), format);
            // Chunk 1 flushes every event; 17 exercises partial tails;
            // a huge chunk degenerates to one flush at the end.
            for chunk in [1usize, 17, 1 << 20] {
                let mut bytes = Vec::new();
                let run = stream_trace(
                    &cfg,
                    0x5EED,
                    ProbeConfig::by_events(16),
                    format,
                    chunk,
                    &mut bytes,
                )
                .unwrap();
                assert_eq!(
                    String::from_utf8(bytes).unwrap(),
                    buffered,
                    "{cname}/{format:?}/chunk {chunk}"
                );
                assert!(
                    run.peak_buffered_events <= chunk,
                    "{cname}/{format:?}: peak {} exceeds chunk {chunk}",
                    run.peak_buffered_events
                );
            }
        }
    }
}

#[test]
fn manifest_is_the_first_jsonl_line_in_both_paths() {
    let (_, cfg) = configs().remove(0);
    let buffered = render_trace(&cfg, 9, ProbeConfig::disabled(), TraceFormat::Jsonl);
    let mut bytes = Vec::new();
    stream_trace(
        &cfg,
        9,
        ProbeConfig::disabled(),
        TraceFormat::Jsonl,
        8,
        &mut bytes,
    )
    .unwrap();
    let streamed = String::from_utf8(bytes).unwrap();
    for (which, body) in [("buffered", &buffered), ("streamed", &streamed)] {
        let first = body.lines().next().unwrap();
        assert!(
            first.contains("\"manifest\"") && first.contains("\"seed\":9"),
            "{which}: manifest must lead the file, got {first}"
        );
    }
}

#[test]
fn delta_encoded_probes_render_identically() {
    // Delta encoding changes the in-memory probe representation, never the
    // rendered artifact.
    for (cname, cfg) in configs() {
        for format in [TraceFormat::Jsonl, TraceFormat::Chrome] {
            let plain = render_trace(&cfg, 4, ProbeConfig::by_events(8), format);
            let delta = render_trace(
                &cfg,
                4,
                ProbeConfig::by_events(8).with_delta_encoding(),
                format,
            );
            assert_eq!(plain, delta, "{cname}/{format:?}");
        }
    }
}

#[test]
fn peak_trace_memory_is_bounded_by_the_chunk_not_the_run() {
    // A long run (thousands of events) streamed with a small chunk must
    // never buffer more than the chunk — that is the whole point of the
    // streaming recorder.
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 60 },
        strategy: Strategy::Dynamic,
        processors: 8,
        ..Default::default()
    };
    let mut bytes = Vec::new();
    let run = stream_trace(
        &cfg,
        1,
        ProbeConfig::by_events(32),
        TraceFormat::Jsonl,
        64,
        &mut bytes,
    )
    .unwrap();
    assert!(
        run.flushed_events > 200,
        "expected a trace much longer than the chunk, got {} events",
        run.flushed_events
    );
    assert!(
        run.peak_buffered_events <= 64,
        "peak {} must stay within the 64-event chunk",
        run.peak_buffered_events
    );
}
