//! The paper's central claim: the ODE-based analysis predicts the
//! communication of the two-phase dynamic strategies. These tests rerun
//! that comparison at (reduced) paper scale through the public API.

use hetsched::analysis::{MatmulAnalysis, OuterAnalysis};
use hetsched::core::{run_trials, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::platform::{Platform, SpeedDistribution};
use hetsched::util::rng::rng_for;

/// Fig. 4 claim: analysis ≈ DynamicOuter2Phases, "indistinguishable".
#[test]
fn outer_analysis_matches_simulation_at_optimum() {
    let n = 100;
    for p in [20usize, 50] {
        let platform = Platform::sample(
            p,
            &SpeedDistribution::paper_default(),
            &mut rng_for(42, p as u64),
        );
        let model = OuterAnalysis::new(&platform, n);
        let (beta, predicted) = model.optimal_beta();
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
            processors: p,
            platform: Some(platform),
            ..Default::default()
        };
        let sim = run_trials(&cfg, 5, 0x51);
        let measured = sim.normalized_comm.mean();
        assert!(
            (measured - predicted).abs() / measured < 0.08,
            "p={p}: predicted {predicted:.3} vs simulated {measured:.3}"
        );
    }
}

/// §4.3 claim: same for the matrix multiplication once p is large enough.
#[test]
fn matmul_analysis_matches_simulation_at_optimum() {
    let n = 40;
    let p = 100;
    let platform = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(43, 0));
    let model = MatmulAnalysis::new(&platform, n);
    let (beta, predicted) = model.optimal_beta();
    let cfg = ExperimentConfig {
        kernel: Kernel::Matmul { n },
        strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
        processors: p,
        platform: Some(platform),
        ..Default::default()
    };
    let sim = run_trials(&cfg, 3, 0x52);
    let measured = sim.normalized_comm.mean();
    assert!(
        (measured - predicted).abs() / measured < 0.08,
        "predicted {predicted:.3} vs simulated {measured:.3}"
    );
}

/// The analysis tracks the simulation across the whole domain of interest
/// (3 ≤ β ≤ 6 for the outer product — the paper's Fig. 6 wording).
#[test]
fn outer_analysis_tracks_simulation_across_beta() {
    let n = 100;
    let p = 20;
    let platform = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(44, 0));
    let model = OuterAnalysis::new(&platform, n);
    for beta in [3.0, 4.0, 5.0, 6.0] {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
            processors: p,
            platform: Some(platform.clone()),
            ..Default::default()
        };
        let sim = run_trials(&cfg, 5, 0x53).normalized_comm.mean();
        let ana = model.ratio(beta);
        assert!(
            (sim - ana).abs() / sim < 0.10,
            "β={beta}: sim {sim:.3} vs analysis {ana:.3}"
        );
    }
}

/// Lemma 4 / Lemma 5 individually: the predicted phase-1 and phase-2
/// communication volumes match the strategy's internal phase accounting.
#[test]
fn phase_volumes_match_lemma_4_and_5() {
    let n = 100;
    let p = 30;
    let platform = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(45, 0));
    let model = OuterAnalysis::new(&platform, n);
    let beta = 4.0;
    let lb = hetsched::platform::outer_lower_bound(n, &platform);

    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n },
        strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
        processors: p,
        platform: Some(platform),
        ..Default::default()
    };
    let mut p1 = 0.0;
    let mut p2 = 0.0;
    let trials = 5;
    for t in 0..trials {
        let r = hetsched::core::run_once(&cfg, 0x54 + t);
        let (b1, b2, _, _) = r.phase_split.unwrap();
        p1 += b1 as f64 / lb / trials as f64;
        p2 += b2 as f64 / lb / trials as f64;
    }
    let pred1 = model.phase1_ratio(beta);
    let pred2 = model.phase2_ratio(beta);
    assert!(
        (p1 - pred1).abs() / p1 < 0.08,
        "phase 1: sim {p1:.3} vs Lemma 4 {pred1:.3}"
    );
    assert!(
        (p2 - pred2).abs() / p2 < 0.35,
        "phase 2: sim {p2:.3} vs Lemma 5 {pred2:.3}"
    );
}

/// The analytically-optimal β actually sits in the simulation's optimal
/// plateau: no fixed β beats it by more than a few percent.
#[test]
fn analytic_beta_is_near_empirically_optimal() {
    let n = 100;
    let p = 20;
    let platform = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(46, 0));
    let model = OuterAnalysis::new(&platform, n);
    let (beta_star, _) = model.optimal_beta();

    let simulate = |beta: f64| {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
            processors: p,
            platform: Some(platform.clone()),
            ..Default::default()
        };
        run_trials(&cfg, 5, 0x55).normalized_comm.mean()
    };

    let at_star = simulate(beta_star);
    let mut best = f64::INFINITY;
    let mut sweep = 1.5;
    while sweep <= 8.0 {
        best = best.min(simulate(sweep));
        sweep += 0.5;
    }
    assert!(
        at_star <= best * 1.04,
        "β* = {beta_star:.2} gives {at_star:.3}, sweep best is {best:.3}"
    );
}

/// §3.6: running the two-phase strategy with the speed-agnostic
/// homogeneous β costs at most a whisker more than the exact analytic β.
#[test]
fn homogeneous_beta_costs_almost_nothing() {
    let n = 100;
    let p = 20;
    let run = |choice| {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(choice),
            processors: p,
            ..Default::default()
        };
        run_trials(&cfg, 8, 0x56).normalized_comm.mean()
    };
    let exact = run(BetaChoice::Analytic);
    let agnostic = run(BetaChoice::Homogeneous);
    assert!(
        (agnostic - exact).abs() / exact < 0.02,
        "exact-β {exact:.4} vs homogeneous-β {agnostic:.4}"
    );
}

/// The mean-field g(x) from Lemma 1 describes the *measured* residual task
/// density: run pure DynamicOuter, sample one worker's knowledge fraction,
/// and compare the unprocessed share of its L-shape against (1−x²)^α.
#[test]
fn lemma1_residual_density_matches_measurement() {
    use hetsched::platform::ProcId;
    use hetsched::sim::Scheduler as _;
    use hetsched::util::rng::rng_for as rng;

    let n = 200;
    let p = 20;
    // Drive the scheduler manually for a fixed number of engine-less
    // rounds so we can stop mid-flight and inspect the state.
    let mut sched = hetsched::outer::DynamicOuter::new(n, p);
    let mut r = rng(0x57, 0);
    let mut out = Vec::new();
    // Round-robin requests approximate equal speeds; stop while x ≈ 0.15.
    'outer: loop {
        for k in 0..p {
            out.clear();
            sched.on_request(ProcId(k as u32), &mut r, &mut out);
            let w0 = sched.worker(ProcId(0));
            if w0.a.count() >= 30 {
                break 'outer;
            }
            if sched.remaining() == 0 {
                break 'outer;
            }
        }
    }
    let w0 = sched.worker(ProcId(0));
    let x = w0.a.count() as f64 / n as f64;
    let alpha = (p - 1) as f64;
    // Count unprocessed tasks in worker 0's L-shape (everything outside
    // its known sub-grid).
    let mut unprocessed_l = 0usize;
    let mut total_l = 0usize;
    for i in 0..n {
        for j in 0..n {
            if w0.a.owns(i) && w0.b.owns(j) {
                continue;
            }
            total_l += 1;
            if !sched.state().is_processed(i, j) {
                unprocessed_l += 1;
            }
        }
    }
    let g_measured = unprocessed_l as f64 / total_l as f64;
    let g_predicted = OuterAnalysis::g(x, alpha);
    assert!(
        (g_measured - g_predicted).abs() < 0.06,
        "x={x:.3}: measured g {g_measured:.3} vs (1−x²)^α = {g_predicted:.3}"
    );
}
