//! The real threaded runtime against the simulator: same schedulers, real
//! data, verified numerics, consistent communication accounting.

use hetsched::exec::block::{reference_matmul, reference_outer, BlockedMatrix, BlockedVector};
use hetsched::exec::{run_matmul, run_outer, ExecConfig};
use hetsched::matmul::{DynamicMatrix2Phases, RandomMatrix};
use hetsched::outer::{DynamicOuter, DynamicOuter2Phases, RandomOuter, SortedOuter};

#[test]
fn all_outer_strategies_produce_the_exact_product() {
    let n = 15;
    let l = 4;
    let a = BlockedVector::random(n, l, 1);
    let b = BlockedVector::random(n, l, 2);
    let reference = reference_outer(&a, &b);
    let cfg = ExecConfig::homogeneous(4, 9);

    let runs: Vec<(&str, BlockedMatrix)> = vec![
        ("random", run_outer(RandomOuter::new(n, 4), &a, &b, &cfg).0),
        ("sorted", run_outer(SortedOuter::new(n, 4), &a, &b, &cfg).0),
        (
            "dynamic",
            run_outer(DynamicOuter::new(n, 4), &a, &b, &cfg).0,
        ),
        (
            "two-phase",
            run_outer(DynamicOuter2Phases::with_beta(n, 4, 3.0), &a, &b, &cfg).0,
        ),
    ];
    for (label, m) in runs {
        assert_eq!(m.max_abs_diff(&reference), 0.0, "{label}");
    }
}

#[test]
fn matmul_two_phase_matches_reference_with_many_workers() {
    let n = 8;
    let l = 5;
    let a = BlockedMatrix::random(n, l, 3);
    let b = BlockedMatrix::random(n, l, 4);
    let reference = reference_matmul(&a, &b);
    let cfg = ExecConfig {
        speeds: vec![1.0, 1.0, 2.0, 3.0, 5.0, 8.0],
        seed: 10,
        faults: Vec::new(),
    };
    let (c, report) = run_matmul(DynamicMatrix2Phases::with_beta(n, 6, 2.5), &a, &b, &cfg);
    assert!(c.max_abs_diff(&reference) < 1e-10);
    assert_eq!(report.total_tasks(), 512);
}

#[test]
fn exec_comm_ordering_matches_simulation_findings() {
    // The real runtime must reproduce the paper's ordering: the data-aware
    // scheduler moves far fewer input blocks than the random one.
    let n = 20;
    let l = 2;
    let a = BlockedMatrix::random(n, l, 5);
    let b = BlockedMatrix::random(n, l, 6);
    let cfg = ExecConfig::homogeneous(8, 11);
    let (_, dyn_report) = run_matmul(DynamicMatrix2Phases::with_beta(n, 8, 3.0), &a, &b, &cfg);
    let (_, rnd_report) = run_matmul(RandomMatrix::new(n, 8), &a, &b, &cfg);
    assert!(
        dyn_report.input_blocks_shipped * 3 < rnd_report.input_blocks_shipped * 2,
        "dynamic {} vs random {}",
        dyn_report.input_blocks_shipped,
        rnd_report.input_blocks_shipped
    );
}

#[test]
fn exec_ships_at_most_what_the_scheduler_accounted() {
    // The master ships lazily (only blocks the allocated tasks need), so
    // real traffic is bounded by the scheduler's own ledger for the same
    // run. We re-run the identical scheduler/seed in the simulator to get
    // the ledger... the RNG streams differ between engine and exec, so the
    // comparison is statistical: exec's lazy volume must not exceed the
    // per-strategy worst case.
    let n = 16;
    let l = 2;
    let a = BlockedVector::random(n, l, 7);
    let b = BlockedVector::random(n, l, 8);
    let cfg = ExecConfig::homogeneous(4, 12);
    let (_, report) = run_outer(RandomOuter::new(n, 4), &a, &b, &cfg);
    // RandomOuter ships at most 2 blocks per task and at least each block
    // once.
    assert!(report.input_blocks_shipped <= 2 * (n * n) as u64);
    assert!(report.input_blocks_shipped >= 2 * n as u64);
}

#[test]
fn exec_respects_exactly_once_under_concurrency() {
    // Sum of per-worker task counts equals the task total for every
    // strategy — checked through the runtime (allocation and execution
    // race with real threads).
    let n = 12;
    let cfg = ExecConfig::homogeneous(6, 13);
    let a = BlockedVector::random(n, 3, 9);
    let b = BlockedVector::random(n, 3, 10);
    for _ in 0..3 {
        let (_, report) = run_outer(DynamicOuter::new(n, 6), &a, &b, &cfg);
        assert_eq!(report.total_tasks(), (n * n) as u64);
        assert_eq!(report.tasks_per_worker.len(), 6, "one counter per worker");
    }
}

#[test]
fn killed_worker_still_yields_the_exact_product() {
    // A worker thread dies after five tasks; its whole assignment history
    // is lost (results only flush at shutdown) and the survivors recompute
    // it. The final matrix must still match the sequential reference bit
    // for bit, and the ledger must balance.
    let n = 12;
    let l = 3;
    let a = BlockedVector::random(n, l, 21);
    let b = BlockedVector::random(n, l, 22);
    let reference = reference_outer(&a, &b);
    let cfg = ExecConfig::homogeneous(4, 23).fail_after_tasks(2, 5);
    let (m, report) = run_outer(DynamicOuter::new(n, 4), &a, &b, &cfg);
    assert_eq!(m.max_abs_diff(&reference), 0.0);
    assert_eq!(report.total_tasks(), (n * n) as u64);
    assert!(report.total_tasks_lost() > 0, "the fault must have fired");
    assert_eq!(
        report.tasks_per_worker[2], 0,
        "the dead worker's work is voided"
    );
}

#[test]
fn exec_result_blocks_counted_correctly() {
    // Outer: every C block travels back exactly once (unique owner).
    let n = 10;
    let cfg = ExecConfig::homogeneous(3, 14);
    let a = BlockedVector::random(n, 2, 11);
    let b = BlockedVector::random(n, 2, 12);
    let (_, report) = run_outer(RandomOuter::new(n, 3), &a, &b, &cfg);
    assert_eq!(report.result_blocks_returned, (n * n) as u64);

    // Matmul: between n² (single contributor each) and p·n².
    let am = BlockedMatrix::random(n, 2, 13);
    let bm = BlockedMatrix::random(n, 2, 14);
    let (_, report) = run_matmul(RandomMatrix::new(n, 3), &am, &bm, &cfg);
    assert!(report.result_blocks_returned >= (n * n) as u64);
    assert!(report.result_blocks_returned <= (3 * n * n) as u64);
}
