//! The parallel sweep drivers must be bit-for-bit independent of the
//! thread count: every trial derives its RNG stream from `(seed, trial
//! index)`, never from the thread it lands on. These tests pin that
//! contract for `run_trials_with_threads` and for the parallelized figure
//! and extension sweeps.

use hetsched::core::figures::{fig1, fig7, FigOpts};
use hetsched::core::{
    extensions, run_trials_with_threads, ExperimentConfig, FigureData, Kernel, Strategy,
    TrialSummary,
};
use hetsched::util::OnlineStats;

/// Everything an `OnlineStats` can report, for exact comparison.
fn stats_key(s: &OnlineStats) -> (u64, f64, f64, f64, f64) {
    (s.count(), s.mean(), s.variance(), s.min(), s.max())
}

fn assert_summaries_identical(a: &TrialSummary, b: &TrialSummary) {
    assert_eq!(a.trials, b.trials);
    for (fa, fb, name) in [
        (&a.normalized_comm, &b.normalized_comm, "normalized_comm"),
        (&a.total_blocks, &b.total_blocks, "total_blocks"),
        (&a.makespan, &b.makespan, "makespan"),
        (&a.beta_used, &b.beta_used, "beta_used"),
        (&a.lost_tasks, &b.lost_tasks, "lost_tasks"),
        (&a.reshipped_blocks, &b.reshipped_blocks, "reshipped_blocks"),
        (&a.transfer_wait, &b.transfer_wait, "transfer_wait"),
        (&a.link_utilization, &b.link_utilization, "link_utilization"),
    ] {
        let (ka, kb) = (stats_key(fa), stats_key(fb));
        // NaN min/max of empty stats compare equal via bit pattern.
        let bits = |k: (u64, f64, f64, f64, f64)| {
            (
                k.0,
                k.1.to_bits(),
                k.2.to_bits(),
                k.3.to_bits(),
                k.4.to_bits(),
            )
        };
        assert_eq!(bits(ka), bits(kb), "{name} differs across thread counts");
    }
}

fn assert_figures_identical(a: &FigureData, b: &FigureData) {
    assert_eq!(a.id, b.id);
    assert_eq!(a.series.len(), b.series.len());
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.label, sb.label);
        assert_eq!(sa.points, sb.points, "series {:?} differs", sa.label);
    }
}

/// `run_trials_with_threads`: 1 thread vs many, with few trials so the
/// chunking actually splits the work unevenly.
#[test]
fn run_trials_is_thread_count_independent() {
    for strategy in [
        Strategy::Dynamic,
        Strategy::TwoPhase(hetsched::core::BetaChoice::Analytic),
    ] {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 30 },
            strategy,
            processors: 6,
            ..Default::default()
        };
        let serial = run_trials_with_threads(&cfg, 5, 0x7EAD, Some(1));
        for threads in [2, 4, 16] {
            let parallel = run_trials_with_threads(&cfg, 5, 0x7EAD, Some(threads));
            assert_summaries_identical(&serial, &parallel);
        }
    }
}

/// The parallelized extF grid (strategies × bandwidth × trial).
#[test]
fn ext_f_is_thread_count_independent() {
    let serial = extensions::by_id("extF", &FigOpts::quick().with_threads(1)).unwrap();
    let parallel = extensions::by_id("extF", &FigOpts::quick().with_threads(3)).unwrap();
    assert_figures_identical(&serial, &parallel);
}

/// Golden-snapshot determinism for trace artifacts: the same seed must
/// yield a byte-identical JSONL trace no matter what `--threads` the
/// surrounding sweeps use (traced runs are always a single trial, and the
/// embedded manifest pins `threads: 1` for exactly this reason).
#[test]
fn traces_are_byte_identical_across_thread_counts() {
    use hetsched::core::{render_trace, TraceFormat};
    use hetsched::sim::ProbeConfig;

    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 30 },
        strategy: Strategy::Dynamic,
        processors: 6,
        ..Default::default()
    };
    let golden = render_trace(&cfg, 0x7EAD, ProbeConfig::by_events(16), TraceFormat::Jsonl);
    assert!(
        golden.lines().next().unwrap().contains("\"threads\":1"),
        "trace manifests pin threads to 1"
    );
    for threads in [1, 3, 8] {
        // Interleave parallel sweeps to prove no global state leaks into
        // the traced run.
        let _ = run_trials_with_threads(&cfg, 4, 0x7EAD, Some(threads));
        let again = render_trace(&cfg, 0x7EAD, ProbeConfig::by_events(16), TraceFormat::Jsonl);
        assert_eq!(
            golden, again,
            "JSONL trace differs after a {threads}-thread sweep"
        );
    }
    let chrome_a = render_trace(
        &cfg,
        0x7EAD,
        ProbeConfig::by_events(16),
        TraceFormat::Chrome,
    );
    let _ = run_trials_with_threads(&cfg, 4, 0x7EAD, Some(4));
    let chrome_b = render_trace(
        &cfg,
        0x7EAD,
        ProbeConfig::by_events(16),
        TraceFormat::Chrome,
    );
    assert_eq!(chrome_a, chrome_b, "Chrome trace must be deterministic too");
}

/// The parallelized p-sweep (fig1) and hetero probe + grid (fig7).
#[test]
fn figure_sweeps_are_thread_count_independent() {
    let serial = fig1(&FigOpts::quick().with_threads(1));
    let parallel = fig1(&FigOpts::quick().with_threads(3));
    assert_figures_identical(&serial, &parallel);

    let serial = fig7(&FigOpts::quick().with_threads(1));
    let parallel = fig7(&FigOpts::quick().with_threads(4));
    assert_figures_identical(&serial, &parallel);
}
