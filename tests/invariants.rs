//! Cross-crate invariants: every strategy × kernel combination, audited
//! through the public API.

use hetsched::core::{run_once, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::platform::Platform;

const ALL_STRATEGIES: [Strategy; 6] = [
    Strategy::Random,
    Strategy::Sorted,
    Strategy::Dynamic,
    Strategy::TwoPhase(BetaChoice::Analytic),
    Strategy::TwoPhase(BetaChoice::Homogeneous),
    Strategy::TwoPhase(BetaChoice::Fixed(2.0)),
];

fn kernels() -> [Kernel; 2] {
    [Kernel::Outer { n: 24 }, Kernel::Matmul { n: 10 }]
}

#[test]
fn every_task_is_computed_exactly_once() {
    for kernel in kernels() {
        for strategy in ALL_STRATEGIES {
            let cfg = ExperimentConfig {
                kernel,
                strategy,
                processors: 7,
                ..Default::default()
            };
            let r = run_once(&cfg, 0xA11);
            let total: u64 = r.tasks_per_proc.iter().sum();
            assert_eq!(
                total as usize,
                kernel.total_tasks(),
                "{:?} / {:?}",
                kernel,
                strategy
            );
        }
    }
}

#[test]
fn every_input_block_is_shipped_at_least_once() {
    // Each a/b (or A/B/C) block is an input (or output) of some task, so
    // it must cross the wire at least once: comm ≥ 2n (outer) / 3n²
    // (matmul) regardless of the strategy.
    for strategy in ALL_STRATEGIES {
        let outer = run_once(
            &ExperimentConfig {
                kernel: Kernel::Outer { n: 24 },
                strategy,
                processors: 7,
                ..Default::default()
            },
            0xB22,
        );
        assert!(outer.total_blocks >= 2 * 24, "{strategy:?}");

        let mm = run_once(
            &ExperimentConfig {
                kernel: Kernel::Matmul { n: 10 },
                strategy,
                processors: 7,
                ..Default::default()
            },
            0xB23,
        );
        assert!(mm.total_blocks >= 3 * 100, "{strategy:?}");
    }
}

#[test]
fn communication_respects_lower_bound_at_scale() {
    // At realistic scale (p ≪ n²) the demand-driven schedulers are load
    // balanced and the normalized volume must be ≥ ~1.
    for strategy in ALL_STRATEGIES {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 60 },
            strategy,
            processors: 12,
            ..Default::default()
        };
        let r = run_once(&cfg, 0xC33);
        assert!(
            r.normalized_comm >= 0.999,
            "{strategy:?}: normalized {} below the bound",
            r.normalized_comm
        );
    }
}

#[test]
fn demand_driven_load_balance_tracks_speeds() {
    // Fixed platform with a 1:2:7 speed split: task shares must follow,
    // within one batch per worker, for every strategy.
    let pf = Platform::from_speeds(vec![10.0, 20.0, 70.0]);
    for strategy in ALL_STRATEGIES {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 50 },
            strategy,
            processors: 3,
            platform: Some(pf.clone()),
            ..Default::default()
        };
        let r = run_once(&cfg, 0xD44);
        let total: u64 = r.tasks_per_proc.iter().sum();
        for (k, &tasks) in r.tasks_per_proc.iter().enumerate() {
            let share = tasks as f64 / total as f64;
            let ideal = pf.relative_speed(hetsched::platform::ProcId(k as u32));
            assert!(
                (share - ideal).abs() < 0.08,
                "{strategy:?}: worker {k} share {share:.3} vs ideal {ideal:.3}"
            );
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    for kernel in kernels() {
        for strategy in ALL_STRATEGIES {
            let cfg = ExperimentConfig {
                kernel,
                strategy,
                processors: 5,
                ..Default::default()
            };
            let a = run_once(&cfg, 0xE55);
            let b = run_once(&cfg, 0xE55);
            assert_eq!(a.total_blocks, b.total_blocks, "{kernel:?}/{strategy:?}");
            assert_eq!(a.tasks_per_proc, b.tasks_per_proc);
            assert_eq!(a.blocks_per_proc, b.blocks_per_proc);
            assert_eq!(a.makespan, b.makespan);
        }
    }
}

#[test]
fn different_seeds_give_different_randomized_runs() {
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 30 },
        strategy: Strategy::Random,
        processors: 6,
        ..Default::default()
    };
    let a = run_once(&cfg, 1);
    let b = run_once(&cfg, 2);
    assert_ne!(
        (a.total_blocks, a.makespan.to_bits()),
        (b.total_blocks, b.makespan.to_bits())
    );
}

#[test]
fn strategy_ranking_holds_for_both_kernels() {
    // The paper's headline ordering: two-phase ≤ dynamic < random.
    for kernel in [Kernel::Outer { n: 60 }, Kernel::Matmul { n: 16 }] {
        let run = |strategy| {
            run_once(
                &ExperimentConfig {
                    kernel,
                    strategy,
                    processors: 16,
                    ..Default::default()
                },
                0xF66,
            )
            .normalized_comm
        };
        let two = run(Strategy::TwoPhase(BetaChoice::Analytic));
        let dynamic = run(Strategy::Dynamic);
        let random = run(Strategy::Random);
        assert!(
            two <= dynamic * 1.05,
            "{kernel:?}: two-phase {two} vs dynamic {dynamic}"
        );
        assert!(
            dynamic < random,
            "{kernel:?}: dynamic {dynamic} vs random {random}"
        );
    }
}

#[test]
fn phase_split_is_consistent_with_threshold() {
    for kernel in kernels() {
        let cfg = ExperimentConfig {
            kernel,
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(3.0)),
            processors: 6,
            ..Default::default()
        };
        let r = run_once(&cfg, 0xAB7);
        let (b1, b2, t1, t2) = r.phase_split.expect("two-phase reports split");
        assert_eq!(b1 + b2, r.total_blocks);
        assert_eq!(t1 + t2, kernel.total_tasks());
        let threshold = ((-3.0f64).exp() * kernel.total_tasks() as f64).round() as usize;
        assert!(t2 <= threshold, "phase 2 did {t2} > threshold {threshold}");
        assert!(t2 > 0, "β=3 must leave an end game at these sizes");
    }
}

#[test]
fn dyn_scenarios_complete_and_stay_ranked() {
    use hetsched::platform::Scenario;
    for scenario in [Scenario::Dyn5, Scenario::Dyn20] {
        let base = ExperimentConfig {
            kernel: Kernel::Outer { n: 40 },
            processors: 8,
            distribution: scenario.distribution(),
            speed_model: scenario.speed_model(),
            ..Default::default()
        };
        let dynamic = run_once(
            &ExperimentConfig {
                strategy: Strategy::Dynamic,
                ..base.clone()
            },
            0xCD8,
        );
        let random = run_once(
            &ExperimentConfig {
                strategy: Strategy::Random,
                ..base
            },
            0xCD8,
        );
        let total: u64 = dynamic.tasks_per_proc.iter().sum();
        assert_eq!(total, 1600);
        assert!(
            dynamic.normalized_comm < random.normalized_comm,
            "{scenario:?}"
        );
    }
}
