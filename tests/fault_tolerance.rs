//! Fault-tolerance invariants through the public API: fail-stop failures
//! and stragglers injected into every dynamic strategy × kernel.

use hetsched::core::{run_once, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::platform::{FailureModel, ProcId};

const DYNAMIC_STRATEGIES: [Strategy; 6] = [
    Strategy::Random,
    Strategy::Sorted,
    Strategy::Dynamic,
    Strategy::TwoPhase(BetaChoice::Analytic),
    Strategy::TwoPhase(BetaChoice::Homogeneous),
    Strategy::TwoPhase(BetaChoice::Fixed(2.0)),
];

fn kernels() -> [Kernel; 2] {
    [Kernel::Outer { n: 20 }, Kernel::Matmul { n: 8 }]
}

#[test]
fn every_task_survives_a_mid_run_failure() {
    // Kill one worker halfway through the (clean) run: its in-flight batch
    // is lost and must be re-allocated, yet every task still completes
    // exactly once and the loss is visible in the report.
    for kernel in kernels() {
        for strategy in DYNAMIC_STRATEGIES {
            let clean_cfg = ExperimentConfig {
                kernel,
                strategy,
                processors: 5,
                ..Default::default()
            };
            let clean = run_once(&clean_cfg, 0x5EED);
            // 0.47, not 0.5: dyadic fractions of the makespan can land
            // exactly on a batch boundary of the failing worker (the
            // makespan is often an integer number of its batches), in which
            // case it dies idle with nothing in flight.
            let cfg = ExperimentConfig {
                failures: FailureModel::none().fail_at(ProcId(1), clean.makespan * 0.47),
                ..clean_cfg
            };
            let r = run_once(&cfg, 0x5EED);
            let total: u64 = r.tasks_per_proc.iter().sum();
            assert_eq!(
                total as usize,
                kernel.total_tasks(),
                "{kernel:?}/{strategy:?}: tasks lost for good"
            );
            assert!(
                r.lost_tasks > 0,
                "{kernel:?}/{strategy:?}: a worker dying mid-run must lose its batch"
            );
        }
    }
}

#[test]
fn failure_runs_are_deterministic() {
    for kernel in kernels() {
        for strategy in DYNAMIC_STRATEGIES {
            let cfg = ExperimentConfig {
                kernel,
                strategy,
                processors: 6,
                failures: FailureModel::none()
                    .fail_at(ProcId(0), 1.5)
                    .slow_down(ProcId(2), 3.0),
                ..Default::default()
            };
            let a = run_once(&cfg, 0xFA17);
            let b = run_once(&cfg, 0xFA17);
            assert_eq!(a.total_blocks, b.total_blocks, "{kernel:?}/{strategy:?}");
            assert_eq!(a.tasks_per_proc, b.tasks_per_proc);
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            assert_eq!(a.lost_tasks, b.lost_tasks);
            assert_eq!(a.reshipped_blocks, b.reshipped_blocks);
        }
    }
}

#[test]
fn empty_failure_model_is_bit_for_bit_identical() {
    // `FailureModel::none()` must be a guaranteed fast path: the engine
    // draws no extra randomness and schedules no extra events, so results
    // match a config that never mentions failures at all.
    for kernel in kernels() {
        for strategy in DYNAMIC_STRATEGIES {
            let plain = ExperimentConfig {
                kernel,
                strategy,
                processors: 7,
                ..Default::default()
            };
            let explicit = ExperimentConfig {
                failures: FailureModel::none(),
                ..plain.clone()
            };
            let a = run_once(&plain, 0xBEEF);
            let b = run_once(&explicit, 0xBEEF);
            assert_eq!(a.total_blocks, b.total_blocks, "{kernel:?}/{strategy:?}");
            assert_eq!(a.tasks_per_proc, b.tasks_per_proc);
            assert_eq!(a.blocks_per_proc, b.blocks_per_proc);
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            assert_eq!(a.lost_tasks, 0);
            assert_eq!(a.reshipped_blocks, 0);
        }
    }
}

#[test]
fn straggler_sheds_load_without_losing_tasks() {
    // A permanently slowed worker must end up with fewer tasks — the
    // demand-driven master simply hears from it less often — and nothing
    // is ever lost or re-shipped.
    let base = ExperimentConfig {
        kernel: Kernel::Outer { n: 30 },
        strategy: Strategy::Dynamic,
        processors: 4,
        ..Default::default()
    };
    let clean = run_once(&base, 0x51C6);
    let slowed = run_once(
        &ExperimentConfig {
            failures: FailureModel::none().slow_down(ProcId(0), 4.0),
            ..base
        },
        0x51C6,
    );
    let total: u64 = slowed.tasks_per_proc.iter().sum();
    assert_eq!(total, 900);
    assert_eq!(slowed.lost_tasks, 0, "stragglers lose nothing");
    assert_eq!(slowed.reshipped_blocks, 0);
    assert!(
        slowed.tasks_per_proc[0] < clean.tasks_per_proc[0],
        "slowed worker kept {} of its former {} tasks",
        slowed.tasks_per_proc[0],
        clean.tasks_per_proc[0]
    );
}

#[test]
fn static_partition_tolerates_stragglers_but_rejects_failures() {
    // Static allocation cannot re-allocate lost work (config validation
    // refuses the combination), but a straggler only stretches the
    // makespan: the fixed allocation still completes exactly once.
    let straggler = ExperimentConfig {
        kernel: Kernel::Outer { n: 24 },
        strategy: Strategy::Static,
        processors: 4,
        failures: FailureModel::none().slow_down(ProcId(1), 2.0),
        ..Default::default()
    };
    let r = run_once(&straggler, 0x57A7);
    let total: u64 = r.tasks_per_proc.iter().sum();
    assert_eq!(total, 576);
    assert_eq!(r.lost_tasks, 0);

    let failing = ExperimentConfig {
        failures: FailureModel::none().fail_at(ProcId(1), 1.0),
        ..straggler
    };
    assert!(
        failing.validate().is_err(),
        "static + fail-stop must be rejected"
    );
}

#[test]
fn cascading_failures_still_complete() {
    // Two workers die at different times; the survivors absorb both waves
    // of orphans.
    for strategy in [Strategy::Random, Strategy::TwoPhase(BetaChoice::Analytic)] {
        let clean_cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 20 },
            strategy,
            processors: 5,
            ..Default::default()
        };
        let clean = run_once(&clean_cfg, 0xCA5C);
        let cfg = ExperimentConfig {
            failures: FailureModel::none()
                .fail_at(ProcId(1), clean.makespan * 0.3)
                .fail_at(ProcId(3), clean.makespan * 0.6),
            ..clean_cfg
        };
        let r = run_once(&cfg, 0xCA5C);
        let total: u64 = r.tasks_per_proc.iter().sum();
        assert_eq!(total, 400, "{strategy:?}");
        assert!(r.lost_tasks > 0, "{strategy:?}");
        assert!(
            r.makespan > clean.makespan,
            "{strategy:?}: losing two workers cannot speed the run up"
        );
    }
}
