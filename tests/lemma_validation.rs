//! The paper's lemmas, validated against traced simulations.
//!
//! The analysis crate checks its formulas against their own ODEs and the
//! paper's reported constants; these tests close the remaining gap by
//! comparing the closed forms against the *discrete randomized process*
//! itself, using the simulator's execution traces.
//!
//! Key observable: in the data-aware phase every satisfied request ships
//! exactly 2 blocks (outer: one `a` + one `b`) or `3(2y+1)` blocks
//! (matmul), so a worker's cumulative shipped-block count in the trace
//! recovers its knowledge fraction `x` at every event time.

use hetsched::analysis::{MatmulAnalysis, OuterAnalysis};
use hetsched::matmul::DynamicMatrix;
use hetsched::outer::{DynamicOuter, DynamicOuter2Phases};
use hetsched::platform::{Platform, ProcId, SpeedModel};
use hetsched::sim::run_traced;
use hetsched::util::rng::rng_for;

/// Lemma 2: the time at which a worker knows a fraction `x` of the
/// vectors is `t(x)·Σs = n²·(1 − (1−x²)^{α+1})` — measured from a traced
/// pure-`DynamicOuter` run on a homogeneous platform.
#[test]
fn lemma2_time_evolution_matches_trace() {
    let n = 300;
    let p = 20;
    let pf = Platform::homogeneous(p);
    let alpha = (p - 1) as f64;
    let (_, _, trace) = run_traced(
        &pf,
        SpeedModel::Fixed,
        DynamicOuter::new(n, p),
        &mut rng_for(0x12, 0),
    );

    // Reconstruct worker 0's (t, x) trajectory from its block counts.
    let mut cum_blocks = 0u64;
    let mut checked = 0;
    for ev in trace.events().iter().filter(|e| e.proc == ProcId(0)) {
        cum_blocks += ev.blocks;
        let x = (cum_blocks / 2) as f64 / n as f64;
        // Sample the mid-range where the mean-field approximation is
        // valid: not the very first events (discreteness) and not the
        // end game (competition depletes the pool).
        if !(0.08..=0.25).contains(&x) {
            continue;
        }
        let tau_measured = ev.time * pf.total_speed() / (n * n) as f64;
        let tau_predicted = OuterAnalysis::t_fraction(x, alpha);
        // The mean-field model carries an O(1/p) bias at p = 20 (the
        // paper's own caveat: "valid for a reasonably large number of
        // processors"); allow ~10 % of the predicted value.
        assert!(
            (tau_measured - tau_predicted).abs() < 0.07 + 0.02 * tau_predicted,
            "x = {x:.3}: measured τ {tau_measured:.4} vs Lemma 2 {tau_predicted:.4}"
        );
        checked += 1;
    }
    assert!(checked > 10, "trajectory sampled only {checked} times");
}

/// Lemma 3 / switch point: when `DynamicOuter2Phases` flips to phase 2,
/// each worker's knowledge fraction is `x_k = √(1 − e^{−β·rs_k})`.
#[test]
fn lemma3_switch_fractions_match_trace() {
    let n = 200;
    let p = 10;
    let pf = Platform::from_speeds(vec![
        15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0, 95.0, 105.0,
    ]);
    let beta: f64 = 4.5;
    let model = OuterAnalysis::new(&pf, n);
    let threshold = ((-beta).exp() * (n * n) as f64).round() as usize;

    let (_, _, trace) = run_traced(
        &pf,
        SpeedModel::Fixed,
        DynamicOuter2Phases::with_beta(n, p, beta),
        &mut rng_for(0x13, 0),
    );

    // Replay the trace until the remaining-task count crosses the
    // threshold; accumulate per-worker blocks up to that point.
    let mut blocks = vec![0u64; p];
    let mut allocated = 0usize;
    for ev in trace.events() {
        if (n * n) - allocated <= threshold {
            break;
        }
        allocated += ev.tasks;
        blocks[ev.proc.idx()] += ev.blocks;
    }

    for (k, &b) in blocks.iter().enumerate() {
        let x_measured = (b / 2) as f64 / n as f64;
        let x_predicted = model.switch_x(k, beta);
        assert!(
            (x_measured - x_predicted).abs() < 0.08,
            "worker {k}: measured x {x_measured:.3} vs predicted {x_predicted:.3}"
        );
    }
}

/// Lemma 8 (matmul time evolution): reconstruct `y` from the cumulative
/// block count (`Σ 3(2k+1) = 3y²`) and compare the event time against the
/// closed form.
#[test]
fn lemma8_matmul_time_evolution_matches_trace() {
    // The paper notes the matmul analysis is accurate "when the number of
    // processors is large enough (p ≥ 50)"; test in that regime.
    let n = 60;
    let p = 50;
    let pf = Platform::homogeneous(p);
    let alpha = (p - 1) as f64;
    let (_, _, trace) = run_traced(
        &pf,
        SpeedModel::Fixed,
        DynamicMatrix::new(n, p),
        &mut rng_for(0x14, 0),
    );

    let mut cum_blocks = 0u64;
    let mut checked = 0;
    for ev in trace.events().iter().filter(|e| e.proc == ProcId(0)) {
        cum_blocks += ev.blocks;
        let y = (cum_blocks as f64 / 3.0).sqrt();
        let x = y / n as f64;
        if !(0.1..=0.3).contains(&x) {
            continue;
        }
        let tau_measured = ev.time * pf.total_speed() / (n * n * n) as f64;
        let tau_predicted = MatmulAnalysis::t_fraction(x, alpha);
        // Event times are allocation times; tasks are marked processed at
        // allocation but complete one batch later, so the measured
        // trajectory runs systematically ahead of the mean-field t(x) by
        // roughly one in-flight batch per worker — the cube geometry makes
        // this ~20 % at these sizes. The aggregate communication
        // prediction (what the paper actually uses the model for) is
        // validated to a few percent in analysis_vs_simulation.rs.
        assert!(
            tau_measured <= tau_predicted + 0.05,
            "x = {x:.3}: measured τ {tau_measured:.4} far above Lemma 8 {tau_predicted:.4}"
        );
        assert!(
            tau_measured >= tau_predicted * 0.7 - 0.02,
            "x = {x:.3}: measured τ {tau_measured:.4} far below Lemma 8 {tau_predicted:.4}"
        );
        checked += 1;
    }
    assert!(checked > 5, "trajectory sampled only {checked} times");
}

/// The x_at_time inversion agrees with the trace directly: at normalized
/// time τ the worker knows x(τ) of the data.
#[test]
fn x_at_time_matches_trace() {
    let n = 300;
    let p = 20;
    let pf = Platform::homogeneous(p);
    let alpha = (p - 1) as f64;
    let (_, _, trace) = run_traced(
        &pf,
        SpeedModel::Fixed,
        DynamicOuter::new(n, p),
        &mut rng_for(0x15, 0),
    );
    let mut cum_blocks = 0u64;
    for ev in trace.events().iter().filter(|e| e.proc == ProcId(0)) {
        cum_blocks += ev.blocks;
        let x_measured = (cum_blocks / 2) as f64 / n as f64;
        if !(0.08..=0.25).contains(&x_measured) {
            continue;
        }
        let tau = (ev.time * pf.total_speed() / (n * n) as f64).clamp(0.0, 1.0);
        let x_predicted = OuterAnalysis::x_at_time(tau, alpha);
        assert!(
            (x_measured - x_predicted).abs() < 0.05,
            "τ = {tau:.4}: measured x {x_measured:.3} vs inverted {x_predicted:.3}"
        );
    }
}

/// The end-game pathology, observed in time: pure `DynamicOuter` ships a
/// large share of its total communication in the *last tenth* of the run
/// (extensions that enable almost nothing), which is precisely what the
/// two-phase variant eliminates.
#[test]
fn dynamic_end_game_is_back_loaded_and_two_phase_fixes_it() {
    let n = 120;
    let p = 12;
    let pf = Platform::homogeneous(p);
    let (_, _, dyn_trace) = run_traced(
        &pf,
        SpeedModel::Fixed,
        DynamicOuter::new(n, p),
        &mut rng_for(0x16, 0),
    );
    let (_, _, two_trace) = run_traced(
        &pf,
        SpeedModel::Fixed,
        DynamicOuter2Phases::with_beta(n, p, 4.3),
        &mut rng_for(0x16, 0),
    );
    let dyn_tail = 1.0 - dyn_trace.comm_front_loading(0.9);
    let two_tail = 1.0 - two_trace.comm_front_loading(0.9);
    assert!(
        dyn_tail > 0.2,
        "expected an expensive end game for pure dynamic, tail share {dyn_tail:.2}"
    );
    assert!(
        two_tail < dyn_tail - 0.05,
        "two-phase tail {two_tail:.2} vs pure dynamic {dyn_tail:.2}"
    );
}
