//! Property-based tests over the whole stack: for arbitrary problem sizes,
//! worker counts, speeds and seeds, the invariants hold.

use hetsched::core::{run_once, BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched::platform::{Platform, SpeedDistribution};
use proptest::prelude::*;
// `hetsched`'s `Strategy` shadows proptest's trait of the same name; bring
// the trait's methods back into scope anonymously.
use proptest::strategy::Strategy as _;

fn arb_strategy() -> impl proptest::strategy::Strategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::Random),
        Just(Strategy::Sorted),
        Just(Strategy::Dynamic),
        (0.5f64..6.0).prop_map(|b| Strategy::TwoPhase(BetaChoice::Fixed(b))),
        (0.0f64..=1.0).prop_map(|f| Strategy::TwoPhase(BetaChoice::Phase1Fraction(f))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once execution and block-coverage lower bounds, outer.
    #[test]
    fn outer_invariants(
        n in 2usize..28,
        p in 1usize..9,
        strategy in arb_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy,
            processors: p,
            ..Default::default()
        };
        let r = run_once(&cfg, seed);
        let total: u64 = r.tasks_per_proc.iter().sum();
        prop_assert_eq!(total as usize, n * n);
        // Every block crosses the wire at least once, and no run ships a
        // block to the same worker twice: per-worker cap is 2n.
        prop_assert!(r.total_blocks >= 2 * n as u64);
        for &blocks in &r.blocks_per_proc {
            prop_assert!(blocks <= 2 * n as u64);
        }
        prop_assert!(r.makespan > 0.0);
    }

    /// Same for the matrix multiplication.
    #[test]
    fn matmul_invariants(
        n in 2usize..12,
        p in 1usize..7,
        strategy in arb_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = ExperimentConfig {
            kernel: Kernel::Matmul { n },
            strategy,
            processors: p,
            ..Default::default()
        };
        let r = run_once(&cfg, seed);
        let total: u64 = r.tasks_per_proc.iter().sum();
        prop_assert_eq!(total as usize, n * n * n);
        prop_assert!(r.total_blocks >= 3 * (n * n) as u64);
        for &blocks in &r.blocks_per_proc {
            // Per-worker cap: each of the 3n² distinct blocks at most once.
            prop_assert!(blocks <= 3 * (n * n) as u64);
        }
    }

    /// Determinism: identical config and seed → identical run.
    #[test]
    fn runs_are_reproducible(
        n in 2usize..20,
        p in 1usize..6,
        strategy in arb_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy,
            processors: p,
            ..Default::default()
        };
        let a = run_once(&cfg, seed);
        let b = run_once(&cfg, seed);
        prop_assert_eq!(a.total_blocks, b.total_blocks);
        prop_assert_eq!(a.tasks_per_proc, b.tasks_per_proc);
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    /// Two-phase accounting always balances.
    #[test]
    fn two_phase_split_balances(
        n in 2usize..24,
        p in 1usize..8,
        beta in 0.5f64..6.0,
        seed in 0u64..1_000_000,
    ) {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(beta)),
            processors: p,
            ..Default::default()
        };
        let r = run_once(&cfg, seed);
        let (b1, b2, t1, t2) = r.phase_split.unwrap();
        prop_assert_eq!(b1 + b2, r.total_blocks);
        prop_assert_eq!(t1 + t2, n * n);
        let threshold = ((-beta).exp() * (n * n) as f64).round() as usize;
        prop_assert!(t2 <= threshold);
    }

    /// The analytic β optimizer returns a finite optimum with a ratio that
    /// is at least 1 (cannot beat the lower bound) for realistic shapes
    /// (p ≪ n², the paper's regime — with p approaching n² the bound is
    /// unreachable and the optimum degenerates to the β → 0 boundary,
    /// i.e. "just go random").
    #[test]
    fn analysis_optimum_is_sane(
        p in 2usize..200,
        n in 60usize..500,
        seed in 0u64..10_000,
    ) {
        let pf = Platform::sample(
            p,
            &SpeedDistribution::paper_default(),
            &mut hetsched::util::rng::rng_for(seed, 0),
        );
        let model = hetsched::analysis::OuterAnalysis::new(&pf, n);
        let (beta, ratio) = model.optimal_beta();
        prop_assert!(beta.is_finite() && beta > 0.0);
        prop_assert!(ratio.is_finite());
        prop_assert!(ratio >= 0.99, "ratio {} below 1", ratio);
        // When the optimum is interior, it is a genuine local minimum.
        let (lo, hi) = hetsched::analysis::outer::BETA_RANGE;
        if beta > lo * 1.1 && beta < hi * 0.9 {
            prop_assert!(model.ratio((beta * 0.8).max(lo)) >= ratio - 1e-9);
            prop_assert!(model.ratio((beta * 1.2).min(hi)) >= ratio - 1e-9);
        }
    }

    /// g and t stay within physical ranges for every x and α.
    #[test]
    fn closed_forms_are_bounded(
        x in 0.0f64..=1.0,
        alpha in 0.1f64..1000.0,
    ) {
        use hetsched::analysis::{MatmulAnalysis, OuterAnalysis};
        let g2 = OuterAnalysis::g(x, alpha);
        let g3 = MatmulAnalysis::g(x, alpha);
        prop_assert!((0.0..=1.0).contains(&g2));
        prop_assert!((0.0..=1.0).contains(&g3));
        // Cube residue ≥ square residue: (1−x³) ≥ (1−x²) for x ∈ [0,1].
        prop_assert!(g3 >= g2 - 1e-12);
        let t2 = OuterAnalysis::t_fraction(x, alpha);
        let t3 = MatmulAnalysis::t_fraction(x, alpha);
        prop_assert!((0.0..=1.0).contains(&t2));
        prop_assert!((0.0..=1.0).contains(&t3));
    }

    /// DAG scheduling: every policy completes every task exactly once on
    /// random Cholesky/QR instances, deterministically per seed.
    #[test]
    fn dag_policies_complete_and_are_deterministic(
        t in 2usize..10,
        p in 1usize..8,
        qr in proptest::bool::ANY,
        policy_idx in 0usize..4,
        seed in 0u64..100_000,
    ) {
        use hetsched::dag::{cholesky_graph, qr_graph, simulate, Policy};
        let policy = [
            Policy::Random,
            Policy::DataAware,
            Policy::DataAwareCp,
            Policy::CriticalPath,
        ][policy_idx];
        let graph = if qr { qr_graph(t) } else { cholesky_graph(t) };
        let pf = Platform::sample(
            p,
            &SpeedDistribution::paper_default(),
            &mut hetsched::util::rng::rng_for(seed, 7),
        );
        let a = simulate(&graph, &pf, policy, &mut hetsched::util::rng::rng_for(seed, 8));
        let b = simulate(&graph, &pf, policy, &mut hetsched::util::rng::rng_for(seed, 8));
        let total: u64 = a.tasks_per_worker.iter().sum();
        prop_assert_eq!(total as usize, graph.len());
        prop_assert_eq!(a.total_blocks, b.total_blocks);
        prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        // Precedence lower bounds hold.
        let s_max = pf.speeds().iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a.makespan >= graph.critical_path() / s_max - 1e-9);
        prop_assert!(a.makespan >= graph.total_weight() / pf.total_speed() - 1e-9);
    }

    /// Lower bounds are monotone in the processor count and consistent
    /// between kernels.
    #[test]
    fn lower_bounds_monotone(
        p in 1usize..100,
        n in 1usize..200,
    ) {
        use hetsched::platform::{matmul_lower_bound, outer_lower_bound};
        let small = Platform::homogeneous(p);
        let large = Platform::homogeneous(p + 1);
        prop_assert!(outer_lower_bound(n, &small) <= outer_lower_bound(n, &large) + 1e-9);
        prop_assert!(matmul_lower_bound(n, &small) <= matmul_lower_bound(n, &large) + 1e-9);
        // Single processor: exact block counts.
        let one = Platform::homogeneous(1);
        prop_assert!((outer_lower_bound(n, &one) - 2.0 * n as f64).abs() < 1e-9);
        prop_assert!((matmul_lower_bound(n, &one) - 3.0 * (n * n) as f64).abs() < 1e-9);
    }
}
