//! Seeded generators.

use crate::RngCore;

/// Deterministic seeded generator.
///
/// Implemented as a SplitMix64 stream (Weyl-sequence counter pushed through
/// the SplitMix64 finalizer). Unlike upstream `rand`'s ChaCha12-based
/// `StdRng` this is not cryptographic, but it is statistically solid for
/// simulation workloads, equidistributed over 2⁶⁴ outputs, and — the only
/// property the workspace relies on — fully reproducible from its seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl StdRng {
    /// Builds the generator directly from a 64-bit seed (the
    /// `SeedableRng::seed_from_u64` entry point).
    #[inline]
    pub fn from_u64_seed(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
