//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this crate. It implements exactly the surface the workspace
//! uses — `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` over the integer/float ranges that appear in the code, and
//! `SliceRandom::{shuffle, choose}` — with a deterministic SplitMix64-based
//! generator. Streams differ from upstream `rand`'s ChaCha-based `StdRng`,
//! but every consumer in the workspace only relies on *seeded determinism*,
//! not on a specific stream.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_int_range_impls {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )*};
}

signed_int_range_impls!(i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    #[inline]
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng::from_u64_seed(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4096 {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
