//! Offline vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no registry access, so the workspace patches
//! `criterion` to this crate. Benchmarks compile and run with correct
//! timing (mean wall-clock per iteration over a fixed warm-up + sample
//! budget) but without criterion's statistical analysis, HTML reports or
//! saved baselines. The point is that `cargo bench` keeps working offline
//! and still prints comparable per-iteration times.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (group name supplies the function part).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: `BenchmarkId`, `&str`, or `String`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.into() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `f`, printing the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the measured batch.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / self.samples as u32;
        println!("  time: {per_iter:>12.2?} ({} iterations)", self.samples);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        println!("bench: {}", id.id);
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        println!("bench: {}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        println!("bench: {}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `fn main` running the given groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Silence unused-field warnings for the fields kept for API fidelity.
#[allow(dead_code)]
fn _touch(d: Duration) -> Duration {
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("f", 10), |b| b.iter(|| 2 * 2));
        g.bench_function("plain-str", |b| b.iter(|| ()));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5usize, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_all_shapes() {
        benches();
    }
}
