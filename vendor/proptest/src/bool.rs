//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Fair-coin boolean strategy.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// The canonical instance (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}
