//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no registry access, so the workspace patches
//! `proptest` to this crate. It keeps the property-test surface the
//! workspace uses — the `proptest!` macro with `#![proptest_config(..)]`,
//! range/`Just`/`prop_map`/`prop_oneof!` strategies, `proptest::bool::ANY`,
//! and the `prop_assert*` macros — on top of a deterministic in-crate RNG.
//!
//! Differences from upstream, by design:
//! * no shrinking: a failing case reports its inputs and panics directly;
//! * no regression-file persistence: seeds derive from the test name, so a
//!   given binary always replays the same cases;
//! * strategies sample uniformly (no bias toward boundary values).

pub mod bool;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the use site and passes
/// through) that samples `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            for __case in 0..__cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __inputs = ::std::format!(
                    ::core::concat!($(::core::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let ::core::result::Result::Err(__payload) = __outcome {
                    ::std::eprintln!(
                        "proptest '{}' failed at case {}/{} with inputs: {}",
                        ::core::stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a property body (`assert!` that proptest would intercept
/// for shrinking; here it panics directly and the harness reports inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::core::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        ::core::assert!($cond, $($fmt)+)
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        ::core::assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        ::core::assert_eq!($a, $b, $($fmt)+)
    };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        ::core::assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        ::core::assert_ne!($a, $b, $($fmt)+)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Union::boxed($s) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(
            a in 1usize..10,
            b in 0.0f64..=1.0,
            c in prop_oneof![Just(1u32), (5u32..8).prop_map(|v| v * 10)],
            d in crate::bool::ANY,
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(c == 1 || (50..80).contains(&c), "c = {}", c);
            prop_assert_eq!(d as u8 <= 1, true);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
