//! Test configuration and the deterministic case RNG.

/// Subset of proptest's run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream seeded from the test's name, so every
/// run of a given binary replays identical cases (no persistence needed).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next() % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
