//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds from the (non-empty) list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }

    /// Type-erases one alternative (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

impl<T, S: Strategy + ?Sized> Strategy for Box<S>
where
    S: Strategy<Value = T>,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit() as $t * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit() as $t * (hi - lo)
            }
        }
    )*};
}

float_strategies!(f32, f64);
