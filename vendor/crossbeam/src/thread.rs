//! Scoped threads with crossbeam's panic-collecting semantics.
//!
//! `std::thread::scope` re-raises a child panic in the parent after joining;
//! crossbeam instead catches child panics and returns them as the scope's
//! `Err` value. Callers here rely on the crossbeam behaviour
//! (`.expect("worker thread panicked")`), so each spawned closure runs under
//! `catch_unwind` and the first payload is surfaced as the scope error.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

type PanicList = Arc<Mutex<Vec<Box<dyn Any + Send + 'static>>>>;

/// A scope handle; spawned closures receive a reference (crossbeam passes
/// the scope back into each closure so children can spawn siblings).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    panics: PanicList,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        Scope {
            inner: self.inner,
            panics: self.panics.clone(),
        }
    }
}

/// Handle to a spawned child thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the child; `Err` if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The payload went to the scope's collector; synthesize one.
            Ok(None) => Err(Box::new("scoped thread panicked".to_string())),
            Err(e) => Err(e),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a child thread running `f(&scope)` inside the scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = self.clone();
        let inner = self.inner.spawn(move || {
            match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                Ok(v) => Some(v),
                Err(payload) => {
                    scope.panics.lock().unwrap().push(payload);
                    None
                }
            }
        });
        ScopedJoinHandle { inner }
    }
}

/// Runs `f` with a scope; joins every spawned thread before returning.
/// Returns `Err(first panic payload)` if any child panicked, otherwise
/// `Ok(f's return value)`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panics: PanicList = Arc::new(Mutex::new(Vec::new()));
    let collector = panics.clone();
    let result = std::thread::scope(move |s| {
        let wrapper = Scope {
            inner: s,
            panics: collector,
        };
        f(&wrapper)
    });
    let mut collected = panics.lock().unwrap();
    if collected.is_empty() {
        Ok(result)
    } else {
        Err(collected.swap_remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_children_and_returns_value() {
        let mut data = vec![0u32; 8];
        let out = scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
            "done"
        })
        .unwrap();
        assert_eq!(out, "done");
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn child_panic_becomes_scope_error() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_handle_returns_child_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 40 + 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn children_can_spawn_siblings() {
        let r = scope(|s| {
            let h = s.spawn(|s2| s2.spawn(|_| 99).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 99);
    }
}
