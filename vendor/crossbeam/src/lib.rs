//! Offline vendored subset of the `crossbeam` 0.8 API.
//!
//! The build environment has no registry access, so the workspace patches
//! `crossbeam` to this crate. It provides the two pieces the workspace
//! uses: MPMC unbounded channels (`channel::unbounded`) and panic-catching
//! scoped threads (`thread::scope`), both built on `std` primitives.

pub mod channel;
pub mod thread;
