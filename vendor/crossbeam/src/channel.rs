//! Unbounded MPMC channel on `Mutex<VecDeque>` + `Condvar`.
//!
//! Semantics mirror `crossbeam-channel`: both halves are cloneable, `recv`
//! blocks until a message or until every `Sender` is dropped (then drains
//! the queue before erroring), `send` fails once every `Receiver` is gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half; cloneable (MPMC: clones *share* the queue).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// The message could not be delivered because all receivers are gone.
pub struct SendError<T>(pub T);

/// All senders disconnected and the queue is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one blocked receiver.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.ready.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive of an already-queued message.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

/// Error for [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now.
    Empty,
    /// All senders gone and the queue is drained.
    Disconnected,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.senders -= 1;
        let wake = inner.senders == 0;
        drop(inner);
        if wake {
            // Blocked receivers must observe the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.inner.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "queue drains before disconnect error");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let n_senders = 4;
        let per_sender = 250;
        std::thread::scope(|s| {
            for t in 0..n_senders {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_sender {
                        tx.send(t * per_sender + i).unwrap();
                    }
                });
            }
            drop(tx);
            let rx2 = rx.clone();
            let h1 = s.spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = s.spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all = h1.join().unwrap();
            all.extend(h2.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..n_senders * per_sender).collect::<Vec<_>>());
        });
    }
}
