//! `hetsched-serve`: the long-running scheduler daemon.
//!
//! Turns the one-shot simulator into a service: a daemon owns a durable
//! job queue (jobs are `key=value` experiment specs, parsed by
//! [`hetsched_core::parse_job_spec`]), leases them to a shared worker
//! pool under an admission [`Policy`], and journals every state
//! transition to an append-only JSONL [`EventLog`] that doubles as the
//! crash-recovery source of truth. Clients speak a length-prefixed JSON
//! protocol over a Unix socket ([`proto`], [`client`]).
//!
//! Modules:
//! - [`proto`] — framing + minimal JSON field readers
//! - [`job`] — job states, outcomes and the admission-time prediction
//! - [`table`] — in-memory queue, policies, leases (pure state)
//! - [`log`] — durable event log and deterministic replay
//! - [`daemon`] — the serve loop: replay, bind, lease, run, drain
//! - [`client`] — one-request-one-reply socket helper
//! - [`batch`] — virtual-time batch-admission experiments

pub mod batch;
pub mod client;
pub mod daemon;
pub mod job;
pub mod log;
pub mod proto;
pub mod table;

pub use batch::{burst_jobs, simulate_admission, BatchJob, BatchOutcome};
pub use daemon::{serve, ServeOpts};
pub use job::{predict_makespan, Job, JobId, JobOutcome, JobState};
pub use log::{replay, EventLog, ReplayedJob};
pub use table::{JobTable, Policy};
