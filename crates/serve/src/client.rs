//! Client side of the socket protocol: one request, one reply.

use crate::proto::{read_frame, write_frame};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Connects to the daemon at `socket`, sends one JSON request frame and
/// returns the reply payload. Each call is its own connection — requests
/// are small and the daemon accepts serially, so connection reuse buys
/// nothing.
pub fn request(socket: &Path, payload: &str) -> io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, payload)?;
    read_frame(&mut stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without replying",
        )
    })
}

/// Like [`request`], retrying the connect while the daemon is still
/// binding its socket. Gives up after `timeout`.
pub fn request_with_retry(
    socket: &Path,
    payload: &str,
    timeout: std::time::Duration,
) -> io::Result<String> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match request(socket, payload) {
            Ok(reply) => return Ok(reply),
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(25)),
        }
    }
}
