//! The in-memory job table: queue order, admission policies and leases.
//!
//! The table is pure state — no I/O, no clock of its own (callers pass
//! `Instant`s in) — so every transition is unit-testable without a daemon.
//! The daemon wraps it in a mutex and mirrors each transition to the event
//! log.

use crate::job::{Job, JobId, JobOutcome, JobState};
use crate::log::ReplayedJob;
use hetsched_core::JobRequest;
use std::time::Instant;

/// Which queued job a freed worker takes next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Strict submission order.
    Fifo,
    /// Shortest predicted makespan first (ties: submission order). The
    /// prediction is the admission-time bound of
    /// [`crate::job::predict_makespan`].
    Spf,
    /// Fair share across submission groups: the group with the fewest
    /// jobs started so far goes first (ties: lexicographic group name),
    /// FIFO within the group.
    Fair,
}

impl Policy {
    /// Parses a policy name as the CLI and the protocol spell it.
    pub fn parse(name: &str) -> Result<Policy, String> {
        match name {
            "fifo" => Ok(Policy::Fifo),
            "spf" | "shortest" => Ok(Policy::Spf),
            "fair" | "fair-share" => Ok(Policy::Fair),
            other => Err(format!("policy: expected fifo|spf|fair, got {other:?}")),
        }
    }

    /// Stable name, used in logs and status replies.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::Spf => "spf",
            Policy::Fair => "fair",
        }
    }
}

/// A live lease: which job, and when it times out.
#[derive(Clone, Copy, Debug)]
struct Lease {
    job: JobId,
    deadline: Instant,
}

/// Jobs in submission order plus the lease table.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Vec<Job>,
    leases: Vec<Lease>,
}

impl JobTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a job in `Queued` state and returns its id (1-based
    /// submission order).
    pub fn submit(&mut self, spec: String, req: JobRequest, predicted: f64) -> JobId {
        let id = self.jobs.len() as JobId + 1;
        self.jobs.push(Job {
            id,
            spec,
            req,
            state: JobState::Queued,
            retries: 0,
            lease_epoch: 0,
            predicted,
            outcome: None,
            error: None,
        });
        id
    }

    /// All jobs, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The job with `id`, if any.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id.checked_sub(1)? as usize)
    }

    fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.jobs.get_mut(id.checked_sub(1)? as usize)
    }

    /// Number of jobs in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.jobs.iter().filter(|j| j.state == state).count()
    }

    /// `true` once every job reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.jobs.iter().all(|j| j.state.is_terminal())
    }

    /// Jobs a group has taken off the queue so far (leased or finished) —
    /// the fair-share "service received" counter.
    fn served(&self, group: &str) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.req.group == group && j.state != JobState::Queued)
            .count()
    }

    /// The next job `policy` admits, without leasing it. `None` when
    /// nothing is queued.
    pub fn pick(&self, policy: Policy) -> Option<JobId> {
        let queued = self.jobs.iter().filter(|j| j.state == JobState::Queued);
        match policy {
            Policy::Fifo => queued.map(|j| j.id).next(),
            Policy::Spf => queued
                .min_by(|a, b| {
                    a.predicted
                        .partial_cmp(&b.predicted)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.id.cmp(&b.id))
                })
                .map(|j| j.id),
            Policy::Fair => queued
                .min_by_key(|j| (self.served(&j.req.group), j.req.group.clone(), j.id))
                .map(|j| j.id),
        }
    }

    /// Leases `id` until `deadline` and returns the lease epoch the
    /// holder must present to settle the job. Panics if the job is not
    /// queued — the daemon picks and leases under one lock.
    pub fn lease(&mut self, id: JobId, deadline: Instant) -> u32 {
        let job = self.get_mut(id).expect("leasing unknown job");
        assert_eq!(job.state, JobState::Queued, "leasing a non-queued job");
        job.state = JobState::Leased;
        job.lease_epoch += 1;
        let epoch = job.lease_epoch;
        self.leases.push(Lease { job: id, deadline });
        epoch
    }

    /// Completes `id` with `outcome`. Returns `false` (a no-op) when
    /// `epoch` is stale — the lease expired and the job was requeued or
    /// re-leased while the holder was still running it.
    pub fn complete(&mut self, id: JobId, epoch: u32, outcome: JobOutcome) -> bool {
        let job = self.get_mut(id).expect("completing unknown job");
        if job.state != JobState::Leased || job.lease_epoch != epoch {
            return false;
        }
        job.state = JobState::Done;
        job.outcome = Some(outcome);
        self.leases.retain(|l| l.job != id);
        true
    }

    /// Fails `id` permanently with a reason. Same stale-epoch contract as
    /// [`JobTable::complete`].
    pub fn fail(&mut self, id: JobId, epoch: u32, error: String) -> bool {
        let job = self.get_mut(id).expect("failing unknown job");
        if job.state != JobState::Leased || job.lease_epoch != epoch {
            return false;
        }
        job.state = JobState::Failed;
        job.error = Some(error);
        self.leases.retain(|l| l.job != id);
        true
    }

    /// Expires every lease whose deadline passed: the job goes back to
    /// `Queued` (one more retry), or to `Failed` once it has burned
    /// `max_retries` requeues. Returns `(requeued, failed)` ids, in lease
    /// order, for the caller to log.
    pub fn expire_leases(&mut self, now: Instant, max_retries: u32) -> (Vec<JobId>, Vec<JobId>) {
        let expired: Vec<JobId> = self
            .leases
            .iter()
            .filter(|l| l.deadline <= now)
            .map(|l| l.job)
            .collect();
        let mut requeued = Vec::new();
        let mut failed = Vec::new();
        for id in expired {
            self.leases.retain(|l| l.job != id);
            let max = max_retries;
            let job = self.get_mut(id).expect("expiring unknown job");
            if job.state != JobState::Leased {
                continue;
            }
            if job.retries >= max {
                job.state = JobState::Failed;
                job.error = Some(format!("lease expired {} times", job.retries + 1));
                failed.push(id);
            } else {
                job.retries += 1;
                job.state = JobState::Queued;
                requeued.push(id);
            }
        }
        (requeued, failed)
    }

    /// Restores a job from the event log during crash recovery. Terminal
    /// jobs keep their state; anything that was queued, leased or running
    /// when the daemon died is re-queued, in original submission order.
    pub fn restore(&mut self, req: JobRequest, from_log: ReplayedJob) -> JobId {
        let id = self.submit(from_log.spec, req, from_log.predicted);
        let job = self.get_mut(id).expect("just submitted");
        job.retries = from_log.retries;
        match from_log.state {
            JobState::Done => {
                job.state = JobState::Done;
                job.outcome = from_log.outcome;
            }
            JobState::Failed => {
                job.state = JobState::Failed;
                job.error = from_log.error;
            }
            // Queued or leased at the moment of the crash: back on the
            // queue, in original submission order.
            JobState::Queued | JobState::Leased => job.state = JobState::Queued,
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::parse_job_spec;
    use std::time::Duration;

    fn table_with(specs: &[(&str, f64)]) -> JobTable {
        let mut t = JobTable::new();
        for (spec, predicted) in specs {
            let req = parse_job_spec(spec).unwrap();
            t.submit(spec.to_string(), req, *predicted);
        }
        t
    }

    #[test]
    fn fifo_respects_submission_order() {
        let t = table_with(&[("n=10", 5.0), ("n=20", 1.0), ("n=30", 3.0)]);
        assert_eq!(t.pick(Policy::Fifo), Some(1));
    }

    #[test]
    fn spf_takes_the_shortest_prediction_with_stable_ties() {
        let t = table_with(&[("n=10", 5.0), ("n=20", 1.0), ("n=30", 1.0)]);
        assert_eq!(t.pick(Policy::Spf), Some(2), "ties break by id");
    }

    #[test]
    fn fair_rotates_across_groups() {
        let mut t = table_with(&[
            ("n=10 group=a", 1.0),
            ("n=10 group=a", 1.0),
            ("n=10 group=b", 9.0),
        ]);
        let first = t.pick(Policy::Fair).unwrap();
        assert_eq!(first, 1, "nobody served yet: ties break by group name");
        t.lease(first, Instant::now() + Duration::from_secs(60));
        assert_eq!(
            t.pick(Policy::Fair),
            Some(3),
            "group a already holds a lease, so b goes next"
        );
    }

    #[test]
    fn lease_complete_fail_transitions() {
        let mut t = table_with(&[("n=10", 1.0), ("n=20", 2.0)]);
        let deadline = Instant::now() + Duration::from_secs(60);
        let e1 = t.lease(1, deadline);
        assert_eq!(t.count(JobState::Queued), 1);
        assert_eq!(t.count(JobState::Leased), 1);
        assert!(t.complete(
            1,
            e1,
            JobOutcome {
                makespan_mean: 1.0,
                total_blocks_mean: 2.0,
                normalized_comm_mean: 1.1,
            },
        ));
        assert_eq!(t.get(1).unwrap().state, JobState::Done);
        let e2 = t.lease(2, deadline);
        assert!(t.fail(2, e2, "boom".into()));
        assert_eq!(t.get(2).unwrap().state, JobState::Failed);
        assert!(t.all_terminal());
    }

    #[test]
    fn stale_epochs_cannot_settle_a_release() {
        let mut t = table_with(&[("n=10", 1.0)]);
        let past = Instant::now();
        let stale = t.lease(1, past);
        t.expire_leases(past + Duration::from_millis(1), 5);
        let fresh = t.lease(1, past + Duration::from_secs(60));
        assert!(!t.complete(
            1,
            stale,
            JobOutcome {
                makespan_mean: 0.0,
                total_blocks_mean: 0.0,
                normalized_comm_mean: 0.0,
            },
        ));
        assert!(!t.fail(1, stale, "late".into()));
        assert_eq!(
            t.get(1).unwrap().state,
            JobState::Leased,
            "new lease intact"
        );
        assert!(t.complete(
            1,
            fresh,
            JobOutcome {
                makespan_mean: 1.0,
                total_blocks_mean: 2.0,
                normalized_comm_mean: 1.1,
            },
        ));
    }

    #[test]
    fn expired_leases_requeue_then_fail() {
        let mut t = table_with(&[("n=10", 1.0)]);
        let past = Instant::now();
        t.lease(1, past);
        let (requeued, failed) = t.expire_leases(past + Duration::from_millis(1), 1);
        assert_eq!((requeued, failed), (vec![1], vec![]));
        assert_eq!(t.get(1).unwrap().state, JobState::Queued);
        assert_eq!(t.get(1).unwrap().retries, 1);

        t.lease(1, past);
        let (requeued, failed) = t.expire_leases(past + Duration::from_millis(1), 1);
        assert_eq!(
            (requeued, failed),
            (vec![], vec![1]),
            "retry budget exhausted"
        );
        assert_eq!(t.get(1).unwrap().state, JobState::Failed);
    }

    #[test]
    fn live_leases_survive_an_expiry_sweep() {
        let mut t = table_with(&[("n=10", 1.0)]);
        let now = Instant::now();
        t.lease(1, now + Duration::from_secs(300));
        let (requeued, failed) = t.expire_leases(now, 2);
        assert!(requeued.is_empty() && failed.is_empty());
        assert_eq!(t.get(1).unwrap().state, JobState::Leased);
    }

    #[test]
    fn restore_requeues_interrupted_jobs_in_order() {
        let replayed = |state, retries, outcome| ReplayedJob {
            spec: "n=10".into(),
            predicted: 1.0,
            state,
            retries,
            outcome,
            error: None,
        };
        let mut t = JobTable::new();
        let req = parse_job_spec("n=10").unwrap();
        t.restore(
            req.clone(),
            replayed(
                JobState::Done,
                0,
                Some(JobOutcome {
                    makespan_mean: 3.0,
                    total_blocks_mean: 4.0,
                    normalized_comm_mean: 1.2,
                }),
            ),
        );
        t.restore(req.clone(), replayed(JobState::Leased, 0, None));
        t.restore(req, replayed(JobState::Queued, 1, None));
        assert_eq!(t.get(1).unwrap().state, JobState::Done);
        assert_eq!(t.get(2).unwrap().state, JobState::Queued, "lease dropped");
        assert_eq!(t.get(3).unwrap().retries, 1);
        assert_eq!(t.pick(Policy::Fifo), Some(2), "submission order preserved");
    }
}
