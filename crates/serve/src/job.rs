//! Jobs: what the daemon queues, leases and runs.

use hetsched_core::runner::{platform_for, trial_seed};
use hetsched_core::JobRequest;

/// Monotonic job identifier, assigned at submission (starting from 1) and
/// stable across crash recovery (replay re-assigns the same ids in
/// submission order).
pub type JobId = u64;

/// Lifecycle of a job. `Queued → Leased → Done | Failed`, with lease
/// expiry sending a job back to `Queued` (bounded by the retry budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker; eligible for admission.
    Queued,
    /// Held by a worker under a lease; not eligible until the lease expires.
    Leased,
    /// Finished; outcome recorded.
    Done,
    /// Gave up: the run errored, or the retry budget ran out.
    Failed,
}

impl JobState {
    /// Stable lower-case name, used in the event log and status replies.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Leased => "leased",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// `true` for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Summary of a finished trial campaign, carried by `Done` jobs. The
/// fields are exactly what the result manifest and the `done` log event
/// record, so crash recovery can compare them bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// Mean makespan over the job's trials.
    pub makespan_mean: f64,
    /// Mean total blocks shipped over the job's trials.
    pub total_blocks_mean: f64,
    /// Mean normalized communication over the job's trials.
    pub normalized_comm_mean: f64,
}

/// One queued experiment.
#[derive(Clone, Debug)]
pub struct Job {
    /// Identifier (1-based submission order).
    pub id: JobId,
    /// The raw spec string, exactly as submitted — the durable form.
    pub spec: String,
    /// The parsed request (config, trials, seed, name, group).
    pub req: JobRequest,
    /// Current lifecycle state.
    pub state: JobState,
    /// Times this job's lease expired and it went back to the queue.
    pub retries: u32,
    /// Bumped on every lease; the holder must present the matching epoch
    /// to settle the job, so a stale holder cannot clobber a re-lease.
    pub lease_epoch: u32,
    /// Admission-time makespan bound (shortest-predicted-first key).
    pub predicted: f64,
    /// Outcome, once `Done`; error message, once `Failed`.
    pub outcome: Option<JobOutcome>,
    /// Failure reason, once `Failed`.
    pub error: Option<String>,
}

/// Admission-time makespan bound for a request: the two-resource lower
/// bound ([`hetsched_analysis::makespan_bound`]) evaluated on exactly the
/// platform trial 0 will draw, so the prediction is deterministic per
/// `(spec, seed)` and never runs the simulation.
pub fn predict_makespan(req: &JobRequest) -> f64 {
    let platform = platform_for(&req.cfg, trial_seed(req.seed, 0));
    hetsched_analysis::makespan_bound(
        req.cfg.kernel.total_tasks() as f64,
        platform.total_speed(),
        req.cfg.kernel.lower_bound(&platform),
        req.cfg.network.master_bw(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::parse_job_spec;

    #[test]
    fn prediction_is_deterministic_and_size_monotone() {
        let small = parse_job_spec("kernel=outer n=20 p=4 seed=7").unwrap();
        let large = parse_job_spec("kernel=outer n=80 p=4 seed=7").unwrap();
        let a = predict_makespan(&small);
        let b = predict_makespan(&small);
        assert_eq!(a, b, "same spec, same prediction");
        assert!(predict_makespan(&large) > a, "more tasks, larger bound");
    }

    #[test]
    fn slow_links_raise_the_prediction() {
        let free = parse_job_spec("n=40 p=4 seed=3").unwrap();
        let choked = parse_job_spec("n=40 p=4 seed=3 net=one-port bandwidth=0.5").unwrap();
        assert!(predict_makespan(&choked) > predict_makespan(&free));
    }

    #[test]
    fn states_classify_terminality() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Leased.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert_eq!(JobState::Leased.name(), "leased");
    }
}
