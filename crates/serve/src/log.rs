//! The durable event log: append-only JSONL, one state transition per
//! line, doubling as the crash-recovery journal.
//!
//! Every transition the daemon makes is appended (and flushed) before the
//! daemon acts on it, except `done`/`failed`, which are appended *after*
//! the result manifest hits disk — so a crash between the two re-runs the
//! job deterministically and rewrites an identical manifest. On restart,
//! [`replay`] folds the log back into per-job records: terminal jobs keep
//! their recorded state, everything else goes back on the queue in
//! original submission order. A torn final line (the daemon died
//! mid-write) is skipped, not fatal.

use crate::job::{JobId, JobOutcome, JobState};
use crate::proto::{f64_field, str_field, u64_field};
use hetsched_core::provenance::json_escape;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// Append-only writer for the event log.
#[derive(Debug)]
pub struct EventLog {
    file: File,
}

impl EventLog {
    /// Opens `path` for appending, creating it if absent.
    pub fn open(path: &Path) -> io::Result<EventLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog { file })
    }

    fn append(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Daemon came up (fresh or after recovery).
    pub fn daemon_start(
        &mut self,
        policy: &str,
        workers: usize,
        recovered: usize,
    ) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"daemon_start","policy":"{policy}","workers":{workers},"recovered":{recovered}}}"#
        ))
    }

    /// A job entered the queue.
    pub fn submitted(&mut self, id: JobId, spec: &str, predicted: f64) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"submitted","job":{id},"spec":"{}","predicted":{predicted}}}"#,
            json_escape(spec)
        ))
    }

    /// A worker took the job under a lease.
    pub fn leased(&mut self, id: JobId) -> io::Result<()> {
        self.append(&format!(r#"{{"event":"leased","job":{id}}}"#))
    }

    /// The job finished; its manifest is already on disk.
    pub fn done(&mut self, id: JobId, outcome: &JobOutcome) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"done","job":{id},"makespan_mean":{},"total_blocks_mean":{},"normalized_comm_mean":{}}}"#,
            outcome.makespan_mean, outcome.total_blocks_mean, outcome.normalized_comm_mean
        ))
    }

    /// The job gave up for good.
    pub fn failed(&mut self, id: JobId, error: &str) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"failed","job":{id},"error":"{}"}}"#,
            json_escape(error)
        ))
    }

    /// A lease timed out.
    pub fn lease_expired(&mut self, id: JobId) -> io::Result<()> {
        self.append(&format!(r#"{{"event":"lease_expired","job":{id}}}"#))
    }

    /// The job went back on the queue after a lease expiry.
    pub fn requeued(&mut self, id: JobId, retries: u32) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"requeued","job":{id},"retries":{retries}}}"#
        ))
    }

    /// The daemon drained: every job terminal, shutting down.
    pub fn drained(&mut self) -> io::Result<()> {
        self.append(r#"{"event":"drained"}"#)
    }

    /// An opportunistic store-compaction pass merged small segments.
    /// Carries no per-job state — replay ignores it — but records when
    /// and how much the store shrank.
    pub fn compacted(&mut self, before: usize, after: usize, rows: usize) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"compacted","segments_before":{before},"segments_after":{after},"rows":{rows}}}"#
        ))
    }

    /// A store-compaction pass failed. The store itself is unharmed (the
    /// merged segment lands before any removal), so the daemon keeps
    /// serving and retries at the next threshold crossing.
    pub fn compact_failed(&mut self, error: &str) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"compact_failed","error":"{}"}}"#,
            json_escape(error)
        ))
    }

    /// A thread panicked while holding the daemon lock; the daemon
    /// recovered the poisoned mutex and kept serving. Carries no per-job
    /// state — replay ignores it — but leaves an audit trail of the
    /// incident.
    pub fn lock_poisoned(&mut self, context: &str) -> io::Result<()> {
        self.append(&format!(
            r#"{{"event":"lock_poisoned","context":"{}"}}"#,
            json_escape(context)
        ))
    }
}

/// A job's state as reconstructed from the log.
#[derive(Clone, Debug)]
pub struct ReplayedJob {
    /// The spec string exactly as submitted.
    pub spec: String,
    /// Admission-time prediction recorded at submission.
    pub predicted: f64,
    /// Last state the log witnessed.
    pub state: JobState,
    /// Requeue count the log witnessed.
    pub retries: u32,
    /// Outcome, when the last state is `Done`.
    pub outcome: Option<JobOutcome>,
    /// Error, when the last state is `Failed`.
    pub error: Option<String>,
}

/// Replays the event log at `path` into per-job records, in submission
/// order (index `i` is job id `i + 1`). Missing file means a fresh
/// daemon: empty vec. Unparsable lines — including a torn final line from
/// a crash mid-append — are skipped.
pub fn replay(path: &Path) -> io::Result<Vec<ReplayedJob>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut jobs: Vec<ReplayedJob> = Vec::new();
    for line in BufReader::new(file).split(b'\n') {
        let line = line?;
        let Ok(line) = String::from_utf8(line) else {
            continue;
        };
        let Some(event) = str_field(&line, "event") else {
            continue;
        };
        match event.as_str() {
            "submitted" => {
                let (Some(id), Some(spec), Some(predicted)) = (
                    u64_field(&line, "job"),
                    str_field(&line, "spec"),
                    f64_field(&line, "predicted"),
                ) else {
                    continue;
                };
                // Ids are assigned in submission order; a gap or repeat
                // means a torn log, so only the expected next id counts.
                if id != jobs.len() as u64 + 1 {
                    continue;
                }
                jobs.push(ReplayedJob {
                    spec,
                    predicted,
                    state: JobState::Queued,
                    retries: 0,
                    outcome: None,
                    error: None,
                });
            }
            "leased" | "done" | "failed" | "requeued" => {
                let Some(job) = u64_field(&line, "job")
                    .and_then(|id| jobs.get_mut(id.checked_sub(1)? as usize))
                else {
                    continue;
                };
                match event.as_str() {
                    "leased" => job.state = JobState::Leased,
                    "done" => {
                        let (Some(mk), Some(tb), Some(nc)) = (
                            f64_field(&line, "makespan_mean"),
                            f64_field(&line, "total_blocks_mean"),
                            f64_field(&line, "normalized_comm_mean"),
                        ) else {
                            continue;
                        };
                        job.state = JobState::Done;
                        job.outcome = Some(JobOutcome {
                            makespan_mean: mk,
                            total_blocks_mean: tb,
                            normalized_comm_mean: nc,
                        });
                    }
                    "failed" => {
                        job.state = JobState::Failed;
                        job.error = str_field(&line, "error");
                    }
                    "requeued" => {
                        job.state = JobState::Queued;
                        job.retries = u64_field(&line, "retries").unwrap_or(0) as u32;
                    }
                    _ => unreachable!(),
                }
            }
            // daemon_start / lease_expired / drained carry no per-job
            // state beyond what the transitions above already record.
            _ => {}
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hetsched-log-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("events.jsonl")
    }

    #[test]
    fn log_round_trips_through_replay() {
        let path = tmp("roundtrip");
        let _ = fs::remove_file(&path);
        {
            let mut log = EventLog::open(&path).unwrap();
            log.daemon_start("fifo", 2, 0).unwrap();
            log.submitted(1, "n=10 name=\"a\"", 4.5).unwrap();
            log.submitted(2, "n=20", 9.0).unwrap();
            log.submitted(3, "n=30", 13.5).unwrap();
            log.leased(1).unwrap();
            log.done(
                1,
                &JobOutcome {
                    makespan_mean: 4.25,
                    total_blocks_mean: 100.0,
                    normalized_comm_mean: 1.5,
                },
            )
            .unwrap();
            log.leased(2).unwrap();
            log.lease_expired(2).unwrap();
            log.requeued(2, 1).unwrap();
            log.leased(3).unwrap();
            log.failed(3, "panic: \"boom\"").unwrap();
        }
        let jobs = replay(&path).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].state, JobState::Done);
        assert_eq!(jobs[0].spec, "n=10 name=\"a\"");
        assert_eq!(jobs[0].outcome.as_ref().unwrap().makespan_mean, 4.25);
        assert_eq!(jobs[1].state, JobState::Queued, "requeued after expiry");
        assert_eq!(jobs[1].retries, 1);
        assert_eq!(jobs[2].state, JobState::Failed);
        assert_eq!(jobs[2].error.as_deref(), Some("panic: \"boom\""));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_log_is_a_fresh_start() {
        let path = tmp("missing");
        let _ = fs::remove_file(&path);
        assert!(replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_final_line_is_skipped() {
        let path = tmp("torn");
        let _ = fs::remove_file(&path);
        {
            let mut log = EventLog::open(&path).unwrap();
            log.submitted(1, "n=10", 4.5).unwrap();
            log.leased(1).unwrap();
        }
        // Simulate a crash mid-append: a partial `done` line without the
        // trailing fields or newline.
        let mut raw = fs::read(&path).unwrap();
        raw.extend(br#"{"event":"done","job":1,"makespan_me"#);
        fs::write(&path, raw).unwrap();
        let jobs = replay(&path).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs[0].state,
            JobState::Leased,
            "torn done line ignored; job replays as interrupted"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_ignores_ids_that_break_submission_order() {
        let path = tmp("order");
        let _ = fs::remove_file(&path);
        fs::write(
            &path,
            concat!(
                r#"{"event":"submitted","job":1,"spec":"n=10","predicted":1.0}"#,
                "\n",
                r#"{"event":"submitted","job":5,"spec":"n=20","predicted":2.0}"#,
                "\n",
            ),
        )
        .unwrap();
        let jobs = replay(&path).unwrap();
        assert_eq!(jobs.len(), 1, "out-of-order id dropped");
        fs::remove_file(&path).unwrap();
    }
}
