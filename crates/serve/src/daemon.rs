//! The daemon: replay, bind, lease, run, drain.
//!
//! One thread accepts connections on a Unix socket (serially — requests
//! are short), `workers` threads execute leased jobs, and a monitor
//! thread sweeps expired leases. All of them share a [`JobTable`] plus
//! the open [`EventLog`] under one mutex, with a condvar for "queue
//! changed" wake-ups.
//!
//! Durability contract: every transition is logged (and flushed) when it
//! happens, except that a job's result manifest is written to
//! `results_dir` *before* its `done` event — so a crash in the gap
//! re-runs the job on recovery and, simulations being deterministic per
//! `(spec, seed)`, rewrites byte-identical results. The socket file's
//! existence is the readiness signal: it appears only after recovery
//! replay finished and the listener is bound.

use crate::job::{predict_makespan, JobId, JobOutcome, JobState};
use crate::log::{replay, EventLog};
use crate::proto::{read_frame, str_field, u64_field, write_frame};
use crate::table::{JobTable, Policy};
use hetsched_core::provenance::{json_escape, manifest_json};
use hetsched_core::runner::run_trials_with_threads;
use hetsched_core::{parse_job_spec, JobRequest};
use std::fs;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Everything `hetsched serve` needs to run.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Unix socket path; created on bind, removed on clean shutdown.
    pub socket: PathBuf,
    /// Event-log path; appended to, replayed on start.
    pub log: PathBuf,
    /// Directory for per-job result manifests (`job-<id>.json`).
    pub results_dir: PathBuf,
    /// Admission policy for the shared worker pool.
    pub policy: Policy,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// How long a worker may hold a job before it is presumed stuck.
    pub lease_ttl: Duration,
    /// Requeues a job survives before it is failed outright.
    pub max_retries: u32,
    /// Trace-analytics store directory: when set, every completed job's
    /// summary report is appended there (campaign `serve`, run
    /// `job-<id>`), replay-safe via the store's `(campaign, run,
    /// config)` dedupe.
    pub store: Option<PathBuf>,
    /// Compact the store between jobs once this many sub-chunk segments
    /// have accumulated (`--store` writes one small segment per completed
    /// job, so long campaigns fragment). `0` disables the opportunistic
    /// pass; `hetsched compact` always remains available offline.
    pub compact_threshold: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            socket: PathBuf::from("hetsched.sock"),
            log: PathBuf::from("hetsched-events.jsonl"),
            results_dir: PathBuf::from("hetsched-results"),
            policy: Policy::Fifo,
            workers: 2,
            lease_ttl: Duration::from_secs(300),
            max_retries: 2,
            store: None,
            compact_threshold: 64,
        }
    }
}

/// State shared by the accept loop, the workers and the monitor.
struct Shared {
    table: JobTable,
    log: EventLog,
    draining: bool,
    shutdown: bool,
}

struct State {
    shared: Mutex<Shared>,
    cond: Condvar,
    opts: ServeOpts,
    /// Open store handle (when `--store` is set), long-lived so the
    /// footer cache pays off across jobs, plus a gate serializing ingest
    /// and compaction passes against each other.
    store: Option<StoreHandle>,
}

struct StoreHandle {
    store: hetsched_store::Store,
    gate: Mutex<()>,
}

impl StoreHandle {
    /// The gate guards no data of its own (the store is internally
    /// synchronized), so a poisoned lock is safe to take over.
    fn enter(&self) -> MutexGuard<'_, ()> {
        self.gate
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Locks the shared state, recovering from mutex poisoning.
///
/// A poisoned lock means some thread panicked while holding it — e.g. a
/// table invariant tripped between a worker's lease and its settle path.
/// The shared state is transition-logged and never left half-updated
/// across a call boundary, so crashing the whole daemon (the old
/// `.expect("daemon lock")` behaviour) threw away a consistent queue.
/// Instead: clear the poison so later locks return `Ok`, append a
/// `lock_poisoned` audit event, and keep serving. Any job the panicking
/// thread held is settled by the lease monitor when its lease expires
/// (requeued, then failed after `max_retries`).
fn lock_shared<'a>(state: &'a State, context: &str) -> MutexGuard<'a, Shared> {
    match state.shared.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            state.shared.clear_poison();
            let mut guard = poisoned.into_inner();
            let _ = guard.log.lock_poisoned(context);
            guard
        }
    }
}

/// [`Condvar::wait_timeout`] on the shared state, with the same poison
/// recovery as [`lock_shared`].
fn wait_shared<'a>(
    state: &'a State,
    guard: MutexGuard<'a, Shared>,
    timeout: Duration,
    context: &str,
) -> MutexGuard<'a, Shared> {
    match state.cond.wait_timeout(guard, timeout) {
        Ok((guard, _)) => guard,
        Err(poisoned) => {
            state.shared.clear_poison();
            let mut guard = poisoned.into_inner().0;
            let _ = guard.log.lock_poisoned(context);
            guard
        }
    }
}

/// Runs the daemon until a client drains it. Blocks the calling thread.
pub fn serve(opts: ServeOpts) -> io::Result<()> {
    fs::create_dir_all(&opts.results_dir)?;

    // Recovery replay happens before the socket exists, so clients never
    // observe a half-recovered queue.
    let mut table = JobTable::new();
    let mut recovered = 0usize;
    for mut job in replay(&opts.log)? {
        let interrupted = !job.state.is_terminal();
        let req = match parse_job_spec(&job.spec) {
            Ok(req) => req,
            // Validated at submission; only version drift gets here.
            Err(e) => {
                job.state = JobState::Failed;
                job.error = Some(format!("spec no longer parses after recovery: {e}"));
                parse_job_spec("").expect("default spec parses")
            }
        };
        table.restore(req, job);
        if interrupted {
            recovered += 1;
        }
    }
    let mut log = EventLog::open(&opts.log)?;
    log.daemon_start(opts.policy.name(), opts.workers, recovered)?;

    // A leftover socket file from a crashed daemon would make bind fail.
    match fs::remove_file(&opts.socket) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(&opts.socket)?;

    let store = match &opts.store {
        Some(dir) => Some(StoreHandle {
            store: hetsched_store::Store::open(dir)?,
            gate: Mutex::new(()),
        }),
        None => None,
    };
    let state = Arc::new(State {
        shared: Mutex::new(Shared {
            table,
            log,
            draining: false,
            shutdown: false,
        }),
        cond: Condvar::new(),
        opts: opts.clone(),
        store,
    });

    let mut threads = Vec::new();
    for _ in 0..opts.workers.max(1) {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || worker_loop(&st)));
    }
    {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || monitor_loop(&st)));
    }

    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                if handle_connection(stream, &state).is_break() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }

    {
        let mut sh = lock_shared(&state, "shutdown");
        sh.shutdown = true;
        state.cond.notify_all();
    }
    for t in threads {
        let _ = t.join();
    }
    let _ = fs::remove_file(&opts.socket);
    Ok(())
}

/// Worker: pick under the policy, lease, run outside the lock, settle.
fn worker_loop(state: &State) {
    loop {
        let (id, epoch, req) = {
            let mut sh = lock_shared(state, "worker pick");
            loop {
                if sh.shutdown {
                    return;
                }
                if let Some(id) = sh.table.pick(state.opts.policy) {
                    let deadline = Instant::now() + state.opts.lease_ttl;
                    let epoch = sh.table.lease(id, deadline);
                    let _ = sh.log.leased(id);
                    let req = sh.table.get(id).expect("just leased").req.clone();
                    break (id, epoch, req);
                }
                sh = wait_shared(state, sh, Duration::from_millis(200), "worker wait");
            }
        };

        let run = catch_unwind(AssertUnwindSafe(|| {
            run_trials_with_threads(&req.cfg, req.trials, req.seed, Some(1))
        }));
        match run {
            Ok(summary) => {
                let outcome = JobOutcome {
                    makespan_mean: summary.makespan.mean(),
                    total_blocks_mean: summary.total_blocks.mean(),
                    normalized_comm_mean: summary.normalized_comm.mean(),
                };
                // Manifest first, then store ingest, `done` event last: a
                // crash anywhere in between re-runs the job on recovery and,
                // runs being deterministic, rewrites identical manifest
                // bytes — and the store's `(campaign, run, config)` dedupe
                // makes the re-ingest a no-op instead of a duplicate.
                let manifest = job_manifest(id, &req, &outcome);
                let path = state.opts.results_dir.join(format!("job-{id}.json"));
                let wrote = fs::write(&path, manifest).is_ok();
                let store_err = if wrote {
                    store_ingest_job(state, id, &req, &summary).err()
                } else {
                    None
                };
                let settled_ok = {
                    let mut sh = lock_shared(state, "worker settle");
                    let mut ok = false;
                    if !wrote {
                        if sh
                            .table
                            .fail(id, epoch, "could not write result manifest".into())
                        {
                            let _ = sh.log.failed(id, "could not write result manifest");
                        }
                    } else if let Some(e) = store_err {
                        let msg = format!("store ingest failed: {e}");
                        if sh.table.fail(id, epoch, msg.clone()) {
                            let _ = sh.log.failed(id, &msg);
                        }
                    } else if sh.table.complete(id, epoch, outcome.clone()) {
                        let _ = sh.log.done(id, &outcome);
                        ok = true;
                    }
                    state.cond.notify_all();
                    ok
                };
                // Opportunistic compaction between jobs: one small segment
                // lands per completed job, so long campaigns fragment. Runs
                // outside the shared lock (only the store gate is held), so
                // the queue keeps moving while segments merge.
                if settled_ok {
                    if let Err(e) = maybe_compact(state) {
                        let mut sh = lock_shared(state, "compact");
                        let _ = sh.log.compact_failed(&e);
                    }
                }
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                let mut sh = lock_shared(state, "worker settle (panicked job)");
                if sh.table.fail(id, epoch, msg.clone()) {
                    let _ = sh.log.failed(id, &msg);
                }
                state.cond.notify_all();
            }
        }
    }
}

/// Monitor: sweep expired leases at a cadence well under the TTL.
fn monitor_loop(state: &State) {
    let sweep = (state.opts.lease_ttl / 4).max(Duration::from_millis(50));
    let mut sh = lock_shared(state, "monitor sweep");
    loop {
        if sh.shutdown {
            return;
        }
        let (requeued, failed) = sh
            .table
            .expire_leases(Instant::now(), state.opts.max_retries);
        for id in requeued {
            let retries = sh.table.get(id).map(|j| j.retries).unwrap_or(0);
            let _ = sh.log.lease_expired(id);
            let _ = sh.log.requeued(id, retries);
            state.cond.notify_all();
        }
        for id in failed {
            let error = sh
                .table
                .get(id)
                .and_then(|j| j.error.clone())
                .unwrap_or_else(|| "lease expired".into());
            let _ = sh.log.lease_expired(id);
            let _ = sh.log.failed(id, &error);
            state.cond.notify_all();
        }
        sh = wait_shared(state, sh, sweep, "monitor wait");
    }
}

/// Serves one client connection. `Break` means a drain completed and the
/// accept loop should stop.
fn handle_connection(mut stream: UnixStream, state: &State) -> std::ops::ControlFlow<()> {
    while let Ok(Some(request)) = read_frame(&mut stream) {
        let cmd = str_field(&request, "cmd").unwrap_or_default();
        let reply = match cmd.as_str() {
            "ping" => r#"{"ok":true}"#.to_string(),
            "submit" => handle_submit(&request, state),
            "status" => handle_status(state),
            "logs" => handle_logs(&request, state),
            "drain" => {
                let reply = handle_drain(state);
                let _ = write_frame(&mut stream, &reply);
                return std::ops::ControlFlow::Break(());
            }
            other => format!(
                r#"{{"ok":false,"error":"unknown command \"{}\""}}"#,
                json_escape(other)
            ),
        };
        if write_frame(&mut stream, &reply).is_err() {
            break;
        }
    }
    std::ops::ControlFlow::Continue(())
}

fn handle_submit(request: &str, state: &State) -> String {
    let Some(spec) = str_field(request, "spec") else {
        return r#"{"ok":false,"error":"submit needs a \"spec\" field"}"#.into();
    };
    let req = match parse_job_spec(&spec) {
        Ok(req) => req,
        Err(e) => {
            return format!(r#"{{"ok":false,"error":"{}"}}"#, json_escape(&e));
        }
    };
    let predicted = predict_makespan(&req);
    let mut sh = lock_shared(state, "submit");
    if sh.draining {
        return r#"{"ok":false,"error":"daemon is draining; not accepting jobs"}"#.into();
    }
    let id = sh.table.submit(spec.clone(), req, predicted);
    if let Err(e) = sh.log.submitted(id, &spec, predicted) {
        // Un-logged jobs would vanish on recovery; refuse instead.
        return format!(
            r#"{{"ok":false,"error":"event log write failed: {}"}}"#,
            json_escape(&e.to_string())
        );
    }
    state.cond.notify_all();
    format!(r#"{{"ok":true,"job":{id},"predicted":{predicted}}}"#)
}

fn handle_status(state: &State) -> String {
    let sh = lock_shared(state, "status");
    let mut jobs = String::new();
    for job in sh.table.jobs() {
        if !jobs.is_empty() {
            jobs.push(',');
        }
        jobs.push_str(&format!(
            r#"{{"job":{},"name":"{}","group":"{}","state":"{}","retries":{},"predicted":{}"#,
            job.id,
            json_escape(&job.req.name),
            json_escape(&job.req.group),
            job.state.name(),
            job.retries,
            job.predicted,
        ));
        if let Some(outcome) = &job.outcome {
            jobs.push_str(&format!(
                r#","makespan_mean":{},"total_blocks_mean":{},"normalized_comm_mean":{}"#,
                outcome.makespan_mean, outcome.total_blocks_mean, outcome.normalized_comm_mean
            ));
        }
        if let Some(error) = &job.error {
            jobs.push_str(&format!(r#","error":"{}""#, json_escape(error)));
        }
        jobs.push('}');
    }
    format!(
        r#"{{"ok":true,"policy":"{}","draining":{},"queued":{},"leased":{},"done":{},"failed":{},"jobs":[{}]}}"#,
        state.opts.policy.name(),
        sh.draining,
        sh.table.count(JobState::Queued),
        sh.table.count(JobState::Leased),
        sh.table.count(JobState::Done),
        sh.table.count(JobState::Failed),
        jobs,
    )
}

fn handle_logs(request: &str, state: &State) -> String {
    let tail = u64_field(request, "tail").unwrap_or(20).min(10_000) as usize;
    // Hold the lock while reading so no event lands mid-read.
    let _sh = lock_shared(state, "logs");
    let text = fs::read_to_string(&state.opts.log).unwrap_or_default();
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(tail);
    let shown = &lines[start..];
    format!(
        r#"{{"ok":true,"total":{},"shown":{},"text":"{}"}}"#,
        lines.len(),
        shown.len(),
        json_escape(&shown.join("\n")),
    )
}

fn handle_drain(state: &State) -> String {
    let mut sh = lock_shared(state, "drain");
    sh.draining = true;
    state.cond.notify_all();
    while !sh.table.all_terminal() {
        sh = wait_shared(state, sh, Duration::from_millis(200), "drain wait");
    }
    let _ = sh.log.drained();
    format!(
        r#"{{"ok":true,"done":{},"failed":{}}}"#,
        sh.table.count(JobState::Done),
        sh.table.count(JobState::Failed),
    )
}

/// Appends a completed job's summary report to an already-open store
/// handle. Replay-safe: recovery re-runs a job whose `done` event never
/// landed, and the `(campaign, run, config)` key of the earlier ingest
/// makes the second one skip instead of duplicating.
fn store_ingest_into(
    store: &hetsched_store::Store,
    id: JobId,
    req: &JobRequest,
    summary: &hetsched_core::TrialSummary,
) -> Result<(), String> {
    let run = format!("job-{id}");
    let key = hetsched_store::RunKey::new("serve", &run, req.seed, &req.cfg);
    if store.contains_run(&key.campaign, &key.run, &key.config)? {
        return Ok(());
    }
    let strategy = req.cfg.strategy.label(req.cfg.kernel);
    let mut batch = store.batch();
    batch.push_all(hetsched_store::summary_rows(&key, strategy, summary));
    batch.commit()?;
    Ok(())
}

/// Worker-side ingest through the daemon's long-lived handle, serialized
/// against compaction by the store gate.
fn store_ingest_job(
    state: &State,
    id: JobId,
    req: &JobRequest,
    summary: &hetsched_core::TrialSummary,
) -> Result<(), String> {
    let Some(handle) = &state.store else {
        return Ok(());
    };
    let _gate = handle.enter();
    store_ingest_into(&handle.store, id, req, summary)
}

/// Compacts the store when the small-segment count has crossed the
/// configured threshold. Holds only the store gate — ingest and other
/// compaction passes wait, the job queue does not. Logs a `compacted`
/// event when segments actually merged.
fn maybe_compact(state: &State) -> Result<(), String> {
    let Some(handle) = &state.store else {
        return Ok(());
    };
    if state.opts.compact_threshold == 0 {
        return Ok(());
    }
    let _gate = handle.enter();
    if handle.store.small_segment_count()? < state.opts.compact_threshold {
        return Ok(());
    }
    let report = handle.store.compact(hetsched_store::CHUNK_ROWS)?;
    if report.merged > 0 {
        let mut sh = lock_shared(state, "compact");
        let _ = sh
            .log
            .compacted(report.segments_before, report.segments_after, report.rows);
    }
    Ok(())
}

/// The per-job result manifest: the shared provenance header plus the
/// job's identity and summary means. Deterministic per `(spec, seed)` —
/// the crash-recovery test relies on byte identity across re-runs.
fn job_manifest(id: JobId, req: &JobRequest, outcome: &JobOutcome) -> String {
    manifest_json(
        &req.cfg,
        req.seed,
        1,
        &[
            ("job", id.to_string()),
            ("name", format!("\"{}\"", json_escape(&req.name))),
            ("group", format!("\"{}\"", json_escape(&req.group))),
            ("trials", req.trials.to_string()),
            ("makespan_mean", outcome.makespan_mean.to_string()),
            ("total_blocks_mean", outcome.total_blocks_mean.to_string()),
            (
                "normalized_comm_mean",
                outcome.normalized_comm_mean.to_string(),
            ),
        ],
    )
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hetsched-daemon-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts_in(dir: &std::path::Path) -> ServeOpts {
        ServeOpts {
            socket: dir.join("sock"),
            log: dir.join("events.jsonl"),
            results_dir: dir.join("results"),
            policy: Policy::Fifo,
            workers: 2,
            lease_ttl: Duration::from_secs(60),
            max_retries: 1,
            store: None,
            compact_threshold: 64,
        }
    }

    fn wait_for_socket(path: &std::path::Path) {
        for _ in 0..200 {
            if path.exists() {
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("daemon never bound {}", path.display());
    }

    #[test]
    fn daemon_runs_jobs_and_drains_in_process() {
        let dir = scratch("roundtrip");
        let opts = opts_in(&dir);
        let socket = opts.socket.clone();
        let handle = std::thread::spawn(move || serve(opts));
        wait_for_socket(&socket);

        let a = client::request(
            &socket,
            r#"{"cmd":"submit","spec":"n=16 p=4 trials=2 seed=9"}"#,
        )
        .unwrap();
        assert_eq!(u64_field(&a, "job"), Some(1), "reply: {a}");
        let b = client::request(
            &socket,
            r#"{"cmd":"submit","spec":"n=16 p=4 trials=2 seed=9 strategy=random name=\"rnd\""}"#,
        )
        .unwrap();
        assert_eq!(u64_field(&b, "job"), Some(2), "reply: {b}");

        let bad = client::request(&socket, r#"{"cmd":"submit","spec":"nope=1"}"#).unwrap();
        assert!(bad.contains(r#""ok":false"#), "reply: {bad}");

        let drained = client::request(&socket, r#"{"cmd":"drain"}"#).unwrap();
        assert_eq!(u64_field(&drained, "done"), Some(2), "reply: {drained}");
        handle.join().unwrap().unwrap();

        assert!(dir.join("results/job-1.json").exists());
        assert!(dir.join("results/job-2.json").exists());
        assert!(!socket.exists(), "socket removed on clean shutdown");
        let log = fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert_eq!(log.matches(r#""event":"done""#).count(), 2);
        assert!(log.ends_with("{\"event\":\"drained\"}\n"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn completed_jobs_land_in_the_store_once() {
        let dir = scratch("store");
        let mut opts = opts_in(&dir);
        opts.store = Some(dir.join("store"));
        let socket = opts.socket.clone();
        let serve_opts = opts.clone();
        let handle = std::thread::spawn(move || serve(serve_opts));
        wait_for_socket(&socket);

        let spec = "n=16 p=4 trials=2 seed=9";
        let reply =
            client::request(&socket, &format!(r#"{{"cmd":"submit","spec":"{spec}"}}"#)).unwrap();
        assert_eq!(u64_field(&reply, "job"), Some(1), "reply: {reply}");
        let drained = client::request(&socket, r#"{"cmd":"drain"}"#).unwrap();
        assert_eq!(u64_field(&drained, "done"), Some(1), "reply: {drained}");
        handle.join().unwrap().unwrap();

        let store = hetsched_store::Store::open(&dir.join("store")).unwrap();
        assert!(store.total_rows().unwrap() > 0, "summary rows ingested");
        let req = parse_job_spec(spec).unwrap();
        let config = hetsched_store::config_hash(&req.cfg);
        assert!(store.contains_run("serve", "job-1", &config).unwrap());

        // Recovery replay-safety: re-ingesting the same completed job (as a
        // crash between ingest and the `done` event would) is a no-op.
        let segments = store.segment_paths().unwrap().len();
        let summary = run_trials_with_threads(&req.cfg, req.trials, req.seed, Some(1));
        let fresh = hetsched_store::Store::open(opts.store.as_ref().unwrap()).unwrap();
        store_ingest_into(&fresh, 1, &req, &summary).unwrap();
        assert_eq!(store.segment_paths().unwrap().len(), segments);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn daemon_compacts_fragmented_store_between_jobs() {
        let dir = scratch("compact");
        let mut opts = opts_in(&dir);
        opts.store = Some(dir.join("store"));
        // Every completed job writes one small segment; with a threshold
        // of 2 the daemon must compact at least once during this run.
        opts.compact_threshold = 2;
        let socket = opts.socket.clone();
        let handle = std::thread::spawn(move || serve(opts));
        wait_for_socket(&socket);

        for seed in 1..=4u64 {
            let reply = client::request(
                &socket,
                &format!(r#"{{"cmd":"submit","spec":"n=16 p=4 trials=1 seed={seed}"}}"#),
            )
            .unwrap();
            assert_eq!(u64_field(&reply, "job"), Some(seed), "reply: {reply}");
        }
        let drained = client::request(&socket, r#"{"cmd":"drain"}"#).unwrap();
        assert_eq!(u64_field(&drained, "done"), Some(4), "reply: {drained}");
        handle.join().unwrap().unwrap();

        let log = fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(
            log.contains(r#""event":"compacted""#),
            "threshold 2 with 4 jobs must trigger a pass: {log}"
        );
        assert!(!log.contains(r#""event":"compact_failed""#), "{log}");

        // Compaction changed the file layout, not the data: every job's
        // run key still dedupes and the merged store answers queries.
        let store = hetsched_store::Store::open(&dir.join("store")).unwrap();
        assert!(
            store.segment_paths().unwrap().len() < 4,
            "4 one-job segments must have merged"
        );
        for (job, seed) in (1..=4u64).map(|s| (s, s)) {
            let req = parse_job_spec(&format!("n=16 p=4 trials=1 seed={seed}")).unwrap();
            let config = hetsched_store::config_hash(&req.cfg);
            assert!(
                store
                    .contains_run("serve", &format!("job-{job}"), &config)
                    .unwrap(),
                "job-{job} run key survives compaction"
            );
        }
        let q =
            hetsched_store::build_query(None, Some("campaign=serve"), None, Some("count"), None)
                .unwrap();
        let res = hetsched_store::run_query(&store, &q).unwrap();
        assert_eq!(
            res.rows[0][0],
            hetsched_store::Value::F64(store.total_rows().unwrap() as f64),
            "every ingested row is still queryable"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_lock_is_recovered_not_fatal() {
        let dir = scratch("poison");
        let opts = opts_in(&dir);
        let state = Arc::new(State {
            shared: Mutex::new(Shared {
                table: JobTable::new(),
                log: EventLog::open(&opts.log).unwrap(),
                draining: false,
                shutdown: false,
            }),
            cond: Condvar::new(),
            opts,
            store: None,
        });

        // Poison the mutex the way a panicking thread would: panic while
        // holding the guard.
        let st = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let _guard = st.shared.lock().unwrap();
            panic!("boom while holding the daemon lock");
        })
        .join();
        assert!(state.shared.is_poisoned(), "setup: lock must be poisoned");

        // Request handlers keep working on the recovered state instead of
        // crashing the daemon.
        let status = handle_status(&state);
        assert!(status.contains(r#""ok":true"#), "status: {status}");
        let submit = handle_submit(
            r#"{"cmd":"submit","spec":"n=16 p=4 trials=1 seed=3"}"#,
            &state,
        );
        assert!(submit.contains(r#""ok":true"#), "submit: {submit}");

        // The poison was cleared (one incident, one recovery) and the
        // event log carries the audit trail.
        assert!(!state.shared.is_poisoned(), "poison cleared after recovery");
        let log = fs::read_to_string(&state.opts.log).unwrap();
        assert_eq!(
            log.matches(r#""event":"lock_poisoned""#).count(),
            1,
            "exactly one audit event: {log}"
        );
        assert!(log.contains(r#""context":"status""#), "{log}");
        assert!(
            log.contains(r#""event":"submitted""#),
            "daemon kept serving: {log}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replay_requeues_interrupted_jobs() {
        let dir = scratch("recovery");
        let opts = opts_in(&dir);
        // Forge the log a crashed daemon would leave: job 1 done, job 2
        // leased (interrupted), job 3 still queued.
        fs::write(
            &opts.log,
            concat!(
                r#"{"event":"daemon_start","policy":"fifo","workers":2,"recovered":0}"#,
                "\n",
                r#"{"event":"submitted","job":1,"spec":"n=16 p=4 trials=1 seed=5","predicted":10}"#,
                "\n",
                r#"{"event":"submitted","job":2,"spec":"n=16 p=4 trials=1 seed=6","predicted":10}"#,
                "\n",
                r#"{"event":"submitted","job":3,"spec":"n=16 p=4 trials=1 seed=7","predicted":10}"#,
                "\n",
                r#"{"event":"leased","job":1}"#,
                "\n",
                r#"{"event":"done","job":1,"makespan_mean":4.5,"total_blocks_mean":64,"normalized_comm_mean":1.2}"#,
                "\n",
                r#"{"event":"leased","job":2}"#,
                "\n",
            ),
        )
        .unwrap();
        let socket = opts.socket.clone();
        let handle = std::thread::spawn(move || serve(opts));
        wait_for_socket(&socket);

        let status = client::request(&socket, r#"{"cmd":"status"}"#).unwrap();
        assert!(
            status.contains(r#""job":1,"name":"job","group":"default","state":"done""#),
            "terminal job survives replay: {status}"
        );
        let drained = client::request(&socket, r#"{"cmd":"drain"}"#).unwrap();
        assert_eq!(u64_field(&drained, "done"), Some(3), "reply: {drained}");
        handle.join().unwrap().unwrap();

        let log = fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(
            log.contains(r#""event":"daemon_start","policy":"fifo","workers":2,"recovered":2"#),
            "jobs 2 and 3 count as recovered: {log}"
        );
        assert!(dir.join("results/job-2.json").exists());
        assert!(dir.join("results/job-3.json").exists());
        assert!(
            !dir.join("results/job-1.json").exists(),
            "already-done jobs are not re-run"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
