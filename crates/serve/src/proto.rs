//! The wire protocol: length-prefixed JSON frames and a minimal JSON
//! field reader.
//!
//! Every message — request or reply — is one UTF-8 JSON object, prefixed
//! by its byte length as a big-endian `u32`. The framing keeps the stream
//! trivially parseable without a streaming JSON reader; the payloads are
//! small, flat objects assembled by hand (the workspace vendors no JSON
//! crate, matching the provenance manifests).
//!
//! The field reader ([`str_field`], [`u64_field`], [`f64_field`]) is
//! deliberately minimal: it handles exactly the flat single-line objects
//! this crate writes (no nesting except ignored sub-objects, `\"`-escaped
//! strings). That is enough for the daemon's event-log replay and the
//! client's replies, without pretending to be a general JSON parser.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload, to fail fast on corrupt prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes `payload` as one length-prefixed frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF before the length
/// prefix (the peer hung up between messages).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Finds the raw value slice after `"key":` in a flat JSON object, or
/// `None` when the key is absent.
fn raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let mut from = 0;
    loop {
        let at = json[from..].find(&needle)? + from;
        // Reject matches inside string values: the byte before must be
        // `{` or `,` (object position), possibly after whitespace.
        let before = json[..at].trim_end();
        if before.ends_with('{') || before.ends_with(',') || before.is_empty() {
            let rest = json[at + needle.len()..].trim_start();
            return Some(rest);
        }
        from = at + needle.len();
    }
}

/// Reads a string field, undoing the escapes [`json_escape`] produces
/// (`\"`, `\\`, `\n`, `\r`, `\t`, `\u00XX`).
///
/// [`json_escape`]: hetsched_core::provenance::json_escape
pub fn str_field(json: &str, key: &str) -> Option<String> {
    let rest = raw_value(json, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            other => out.push(other),
        }
    }
    None
}

/// Reads an unsigned integer field.
pub fn u64_field(json: &str, key: &str) -> Option<u64> {
    let rest = raw_value(json, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads a floating-point field (accepts integer literals too).
pub fn f64_field(json: &str, key: &str) -> Option<f64> {
    let rest = raw_value(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::provenance::json_escape;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, r#"{"cmd":"status"}"#).unwrap();
        write_frame(&mut buf, r#"{"ok":true}"#).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"cmd":"status"}"#);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), r#"{"ok":true}"#);
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend((MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn fields_extract_and_unescape() {
        let spec = "n=10 p=4 name=\"quoted\"";
        let line = format!(
            r#"{{"event":"submitted","job":7,"spec":"{}","predicted":12.5}}"#,
            json_escape(spec)
        );
        assert_eq!(str_field(&line, "event").unwrap(), "submitted");
        assert_eq!(str_field(&line, "spec").unwrap(), spec);
        assert_eq!(u64_field(&line, "job"), Some(7));
        assert_eq!(f64_field(&line, "predicted"), Some(12.5));
        assert_eq!(str_field(&line, "missing"), None);
    }

    #[test]
    fn key_lookalikes_inside_strings_are_skipped() {
        let line = r#"{"note":"fake \"job\": 9 here","job":3}"#;
        assert_eq!(u64_field(line, "job"), Some(3));
    }
}
