//! Batch-admission experiments: what order should a shared worker pool
//! run a burst of heterogeneous jobs in?
//!
//! The daemon's admission policies are replayed here in *virtual* time:
//! every job arrives at t = 0, `slots` identical workers pull jobs one at
//! a time, and a job's service time is its own simulated makespan (so the
//! per-job data-aware scheduling result feeds the batch-level question).
//! Policies only reorder the queue — total work is fixed — so batch
//! makespan moves little, while waiting time is where shortest-
//! predicted-first earns its keep, exactly as classic scheduling theory
//! predicts.

use crate::job::predict_makespan;
use crate::table::Policy;
use hetsched_core::parse_job_spec;
use hetsched_core::runner::run_once;

/// One job in a batch: its spec plus the two numbers admission cares
/// about — the admission-time prediction (what the policy sees) and the
/// simulated service time (what actually happens).
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Display name (from the spec's `name=`).
    pub name: String,
    /// Fair-share group (from the spec's `group=`).
    pub group: String,
    /// Admission-time makespan bound — the SPF key.
    pub predicted: f64,
    /// Simulated makespan of the job itself, in simulation time units.
    pub service_time: f64,
}

/// Batch-level metrics for one policy.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// When the last job finishes.
    pub makespan: f64,
    /// Mean time jobs spend queued before starting.
    pub mean_wait: f64,
    /// Mean completion time (wait + service) — the flow-time objective.
    pub mean_flow: f64,
    /// Job indices in the order the policy started them.
    pub order: Vec<usize>,
}

/// List-schedules `jobs` (all arriving at t = 0) onto `slots` identical
/// workers under `policy`, in virtual time. Deterministic: ties break by
/// submission index, mirroring [`crate::table::JobTable::pick`].
pub fn simulate_admission(jobs: &[BatchJob], slots: usize, policy: Policy) -> BatchOutcome {
    assert!(slots > 0, "a batch needs at least one slot");
    let mut free_at = vec![0.0f64; slots];
    let mut remaining: Vec<usize> = (0..jobs.len()).collect();
    let mut served_per_group: Vec<(String, usize)> = Vec::new();
    let mut order = Vec::with_capacity(jobs.len());
    let mut makespan = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut total_flow = 0.0f64;

    while !remaining.is_empty() {
        // The next slot to free up takes the next admitted job.
        let slot = (0..slots)
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
            .expect("slots > 0");
        let pos = match policy {
            Policy::Fifo => 0,
            Policy::Spf => remaining
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    jobs[a]
                        .predicted
                        .total_cmp(&jobs[b].predicted)
                        .then(a.cmp(&b))
                })
                .map(|(pos, _)| pos)
                .expect("non-empty"),
            Policy::Fair => remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| {
                    let served = served_per_group
                        .iter()
                        .find(|(g, _)| *g == jobs[i].group)
                        .map(|(_, n)| *n)
                        .unwrap_or(0);
                    (served, jobs[i].group.clone(), i)
                })
                .map(|(pos, _)| pos)
                .expect("non-empty"),
        };
        let idx = remaining.remove(pos);
        let start = free_at[slot];
        let finish = start + jobs[idx].service_time;
        free_at[slot] = finish;
        makespan = makespan.max(finish);
        total_wait += start;
        total_flow += finish;
        match served_per_group
            .iter_mut()
            .find(|(g, _)| *g == jobs[idx].group)
        {
            Some((_, n)) => *n += 1,
            None => served_per_group.push((jobs[idx].group.clone(), 1)),
        }
        order.push(idx);
    }

    let n = jobs.len().max(1) as f64;
    BatchOutcome {
        makespan,
        mean_wait: total_wait / n,
        mean_flow: total_flow / n,
        order,
    }
}

/// The burst the batch-admission experiment submits: mixed problem sizes
/// and strategies over one heterogeneous platform behind a one-port
/// master link, in two fair-share groups. Service times come from
/// simulating each job once with its own trial-0 seed, so the whole
/// batch is deterministic in `seed`.
pub fn burst_jobs(seed: u64) -> Vec<BatchJob> {
    // Submission order deliberately interleaves long and short jobs —
    // a burst that happens to arrive shortest-first would make FIFO
    // indistinguishable from shortest-predicted-first.
    let specs = [
        (
            "large-rnd",
            "b",
            "n=48 p=8 scenario=set.5 net=one-port bandwidth=4 strategy=random",
        ),
        (
            "small-dyn",
            "a",
            "n=16 p=8 scenario=set.5 net=one-port bandwidth=4",
        ),
        (
            "choked-dyn",
            "a",
            "n=32 p=8 scenario=set.5 net=one-port bandwidth=1",
        ),
        (
            "mid-rnd",
            "b",
            "n=32 p=8 scenario=set.5 net=one-port bandwidth=4 strategy=random",
        ),
        (
            "large-dyn",
            "b",
            "n=48 p=8 scenario=set.5 net=one-port bandwidth=4",
        ),
        (
            "small-rnd",
            "a",
            "n=16 p=8 scenario=set.5 net=one-port bandwidth=4 strategy=random",
        ),
        (
            "wide-dyn",
            "b",
            "n=32 p=16 scenario=set.5 net=one-port bandwidth=4",
        ),
        (
            "mid-dyn",
            "a",
            "n=32 p=8 scenario=set.5 net=one-port bandwidth=4",
        ),
    ];
    specs
        .iter()
        .map(|(name, group, body)| {
            let spec = format!("{body} seed={seed} name={name} group={group}");
            let req = parse_job_spec(&spec).expect("burst specs parse");
            let predicted = predict_makespan(&req);
            let service_time = run_once(&req.cfg, req.seed).makespan;
            BatchJob {
                name: (*name).to_string(),
                group: (*group).to_string(),
                predicted,
                service_time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_jobs() -> Vec<BatchJob> {
        // Predictions deliberately rank the same as service times.
        [(4.0, "a"), (1.0, "a"), (3.0, "b"), (2.0, "b")]
            .iter()
            .enumerate()
            .map(|(i, (t, g))| BatchJob {
                name: format!("j{i}"),
                group: (*g).to_string(),
                predicted: *t,
                service_time: *t,
            })
            .collect()
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let out = simulate_admission(&toy_jobs(), 1, Policy::Fifo);
        assert_eq!(out.order, vec![0, 1, 2, 3]);
        assert_eq!(out.makespan, 10.0);
    }

    #[test]
    fn spf_minimizes_mean_flow_on_one_slot() {
        let jobs = toy_jobs();
        let fifo = simulate_admission(&jobs, 1, Policy::Fifo);
        let spf = simulate_admission(&jobs, 1, Policy::Spf);
        assert_eq!(spf.order, vec![1, 3, 2, 0], "shortest first");
        assert!(spf.mean_flow < fifo.mean_flow, "SPT optimality");
        assert_eq!(
            spf.makespan, fifo.makespan,
            "same work, same single-slot makespan"
        );
    }

    #[test]
    fn fair_alternates_between_groups() {
        let out = simulate_admission(&toy_jobs(), 1, Policy::Fair);
        let groups: Vec<&str> = out
            .order
            .iter()
            .map(|&i| if i < 2 { "a" } else { "b" })
            .collect();
        assert_eq!(groups, vec!["a", "b", "a", "b"]);
    }

    #[test]
    fn more_slots_never_lengthen_the_batch() {
        let jobs = toy_jobs();
        let one = simulate_admission(&jobs, 1, Policy::Fifo);
        let two = simulate_admission(&jobs, 2, Policy::Fifo);
        assert!(two.makespan <= one.makespan);
        assert!(two.mean_wait <= one.mean_wait);
    }

    #[test]
    fn burst_is_deterministic_and_heterogeneous() {
        let a = burst_jobs(7);
        let b = burst_jobs(7);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.predicted, y.predicted);
            assert_eq!(x.service_time, y.service_time);
        }
        let min = a.iter().map(|j| j.service_time).fold(f64::MAX, f64::min);
        let max = a.iter().map(|j| j.service_time).fold(0.0, f64::max);
        assert!(max > 1.5 * min, "burst mixes short and long jobs");
    }
}
