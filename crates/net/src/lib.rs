//! Bandwidth-constrained network models for the master/worker platform.
//!
//! The paper measures communication *volume* as a proxy for time because the
//! master's outbound link is the expected bottleneck — its simulator ships
//! blocks instantaneously and only counts them. This crate supplies the
//! missing half: a [`NetworkModel`] that prices every transfer in simulated
//! time, so the engine can show *when* a data-aware strategy's lower volume
//! actually buys makespan.
//!
//! Three regimes, in increasing contention fidelity:
//!
//! * [`NetworkModel::Infinite`] — the paper's model: transfers are free and
//!   instantaneous. This is the default everywhere and is guaranteed
//!   bit-for-bit identical to the pre-network engine.
//! * [`NetworkModel::OnePort`] — the classic one-port master of Dongarra et
//!   al., *Revisiting Matrix Product on Master-Worker Platforms*: the master
//!   serializes its sends at `master_bw` blocks per unit time, FIFO.
//! * [`NetworkModel::BoundedMultiport`] — the bounded-multiport model: the
//!   master may drive several transfers concurrently, each capped at
//!   `worker_bw`, with aggregate capacity `master_bw`. Implemented as a
//!   deterministic slot queue: each transfer runs at
//!   `r = min(worker_bw, master_bw)` and the master offers
//!   `⌊master_bw / r⌋` concurrent channels.
//!
//! Per-worker link *latency* comes from the
//! [`Platform`](hetsched_platform::Platform) (`link_latencies`), added to
//! every priced transfer's arrival time. `Infinite` ignores latency by
//! definition — it reproduces the free-communication model exactly.
//!
//! [`NetState`] is the mutable per-run counterpart: it owns the channel
//! clocks and answers "when does this batch arrive?", while accumulating the
//! master-link busy time and the maximum send-queue depth for the engine's
//! report.

pub mod model;
pub mod state;

pub use model::NetworkModel;
pub use state::{NetState, TransferPlan};
