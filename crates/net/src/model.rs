//! The declarative network description.

/// How the master's outbound link prices block transfers.
///
/// Bandwidths are in *blocks per unit of simulated time* — the same unit the
/// platform speeds use for tasks, so `master_bw` is directly comparable to
/// the aggregate task rate `Σ s_i`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum NetworkModel {
    /// Communication is free and instantaneous (the paper's model, and the
    /// default). Latency is ignored too: this variant reproduces the
    /// pre-network engine bit for bit.
    #[default]
    Infinite,
    /// The master serializes sends: one transfer at a time at `master_bw`
    /// blocks per unit time, FIFO over pending batches.
    OnePort {
        /// Master outbound bandwidth (blocks per unit time).
        master_bw: f64,
    },
    /// The master drives several transfers concurrently: each transfer is
    /// capped at `worker_bw`, the aggregate at `master_bw`. Modelled as
    /// `⌊master_bw / min(worker_bw, master_bw)⌋` deterministic channels.
    BoundedMultiport {
        /// Aggregate master outbound bandwidth (blocks per unit time).
        master_bw: f64,
        /// Per-worker inbound cap (blocks per unit time).
        worker_bw: f64,
    },
}

impl NetworkModel {
    /// True for the free-communication model.
    pub fn is_infinite(&self) -> bool {
        matches!(self, NetworkModel::Infinite)
    }

    /// Master outbound bandwidth, if the link is priced.
    pub fn master_bw(&self) -> Option<f64> {
        match *self {
            NetworkModel::Infinite => None,
            NetworkModel::OnePort { master_bw }
            | NetworkModel::BoundedMultiport { master_bw, .. } => Some(master_bw),
        }
    }

    /// Effective per-transfer rate: `master_bw` for one-port,
    /// `min(worker_bw, master_bw)` for bounded-multiport.
    pub fn transfer_rate(&self) -> Option<f64> {
        match *self {
            NetworkModel::Infinite => None,
            NetworkModel::OnePort { master_bw } => Some(master_bw),
            NetworkModel::BoundedMultiport {
                master_bw,
                worker_bw,
            } => Some(worker_bw.min(master_bw)),
        }
    }

    /// Number of concurrent master channels (1 for one-port).
    pub fn channels(&self) -> usize {
        match *self {
            NetworkModel::Infinite => usize::MAX,
            NetworkModel::OnePort { .. } => 1,
            NetworkModel::BoundedMultiport {
                master_bw,
                worker_bw,
            } => ((master_bw / worker_bw.min(master_bw)).floor() as usize).max(1),
        }
    }

    /// Short display name, matching the CLI's `--net` values.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkModel::Infinite => "infinite",
            NetworkModel::OnePort { .. } => "one-port",
            NetworkModel::BoundedMultiport { .. } => "multiport",
        }
    }

    /// Checks bandwidths are positive and finite.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            NetworkModel::Infinite => Ok(()),
            NetworkModel::OnePort { master_bw } => {
                if !master_bw.is_finite() || master_bw <= 0.0 {
                    return Err(format!("one-port master bandwidth {master_bw} must be > 0"));
                }
                Ok(())
            }
            NetworkModel::BoundedMultiport {
                master_bw,
                worker_bw,
            } => {
                if !master_bw.is_finite() || master_bw <= 0.0 {
                    return Err(format!(
                        "multiport master bandwidth {master_bw} must be > 0"
                    ));
                }
                if !worker_bw.is_finite() || worker_bw <= 0.0 {
                    return Err(format!(
                        "multiport worker bandwidth {worker_bw} must be > 0"
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_infinite() {
        assert!(NetworkModel::default().is_infinite());
        assert_eq!(NetworkModel::default().master_bw(), None);
        assert_eq!(NetworkModel::default().transfer_rate(), None);
    }

    #[test]
    fn one_port_is_a_single_channel() {
        let m = NetworkModel::OnePort { master_bw: 50.0 };
        assert_eq!(m.channels(), 1);
        assert_eq!(m.transfer_rate(), Some(50.0));
        assert_eq!(m.name(), "one-port");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn multiport_channel_count() {
        let m = NetworkModel::BoundedMultiport {
            master_bw: 100.0,
            worker_bw: 25.0,
        };
        assert_eq!(m.channels(), 4);
        assert_eq!(m.transfer_rate(), Some(25.0));

        // Worker cap above the master's capacity degenerates to one-port.
        let fat = NetworkModel::BoundedMultiport {
            master_bw: 30.0,
            worker_bw: 100.0,
        };
        assert_eq!(fat.channels(), 1);
        assert_eq!(fat.transfer_rate(), Some(30.0));
    }

    #[test]
    fn validate_rejects_bad_bandwidths() {
        assert!(NetworkModel::Infinite.validate().is_ok());
        assert!(NetworkModel::OnePort { master_bw: 0.0 }.validate().is_err());
        assert!(NetworkModel::OnePort {
            master_bw: f64::NAN
        }
        .validate()
        .is_err());
        assert!(NetworkModel::BoundedMultiport {
            master_bw: 10.0,
            worker_bw: -1.0
        }
        .validate()
        .is_err());
        assert!(NetworkModel::BoundedMultiport {
            master_bw: 10.0,
            worker_bw: 2.0
        }
        .validate()
        .is_ok());
    }
}
