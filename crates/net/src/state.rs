//! Mutable per-run network state: channel clocks and link metrics.

use crate::model::NetworkModel;
use hetsched_platform::ProcId;

/// The priced timing of one batch transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferPlan {
    /// When the master's channel starts pushing this batch.
    pub start: f64,
    /// When the last block leaves the master.
    pub end: f64,
    /// When the batch is usable at the worker (`end` + the worker's link
    /// latency).
    pub arrival: f64,
}

/// Simulates the master link for one run: answers "when does this batch
/// arrive at worker `k`?" under the run's [`NetworkModel`], and accumulates
/// the master-busy time and the maximum send-queue depth.
///
/// Transfers are priced in request order (FIFO): each send grabs the
/// earliest-free channel. Because every worker has at most one batch in
/// flight, at most `p` transfers are ever outstanding.
#[derive(Clone, Debug)]
pub struct NetState {
    model: NetworkModel,
    latency: Vec<f64>,
    /// Per-worker inbound bandwidth caps overriding the model's uniform
    /// `worker_bw` (empty = uniform). Only meaningful for
    /// [`NetworkModel::BoundedMultiport`].
    worker_bw: Vec<f64>,
    /// Free time of each concurrent master channel (len = `channels()`,
    /// empty for `Infinite`).
    channel_free: Vec<f64>,
    /// Accumulated master-link busy time (sum of transfer durations).
    busy: f64,
    /// Start times of transfers that were queued behind a busy channel and
    /// have not started yet (pruned lazily).
    waiting_starts: Vec<f64>,
    max_queue_depth: usize,
}

impl NetState {
    /// Network state over `model` for `workers` workers with per-worker link
    /// latencies (use zeros for latency-free links).
    ///
    /// # Panics
    ///
    /// If `latency.len() != workers` — a caller that slices latencies for a
    /// subset of workers (e.g. a hierarchy shard) must slice them exactly;
    /// a short vector would otherwise silently price the missing links as
    /// latency-free.
    pub fn new(model: NetworkModel, workers: usize, latency: Vec<f64>) -> Self {
        model.validate().expect("invalid network model");
        assert_eq!(
            latency.len(),
            workers,
            "one link latency per worker (got {} for {} workers)",
            latency.len(),
            workers
        );
        assert!(
            latency.iter().all(|l| l.is_finite() && *l >= 0.0),
            "link latencies must be non-negative and finite"
        );
        let channels = if model.is_infinite() {
            0
        } else {
            model.channels().min(workers.max(1))
        };
        NetState {
            model,
            latency,
            worker_bw: Vec::new(),
            channel_free: vec![0.0; channels],
            busy: 0.0,
            waiting_starts: Vec::new(),
            max_queue_depth: 0,
        }
    }

    /// Overrides the multiport model's uniform `worker_bw` with per-worker
    /// inbound caps (one entry per worker). Each transfer to worker `k` then
    /// runs at `min(bandwidths[k], master_bw)`; the channel *count* stays
    /// derived from the model's uniform `worker_bw`, so the uniform case is
    /// bit-identical with or without this call.
    ///
    /// # Panics
    ///
    /// If the model is not [`NetworkModel::BoundedMultiport`], if the length
    /// does not match the worker count, or if any cap is non-positive or
    /// non-finite.
    pub fn with_worker_bandwidths(mut self, bandwidths: Vec<f64>) -> Self {
        assert!(
            matches!(self.model, NetworkModel::BoundedMultiport { .. }),
            "per-worker bandwidths only apply to the bounded-multiport model"
        );
        assert_eq!(
            bandwidths.len(),
            self.latency.len(),
            "one bandwidth per worker (got {} for {} workers)",
            bandwidths.len(),
            self.latency.len()
        );
        assert!(
            bandwidths.iter().all(|b| b.is_finite() && *b > 0.0),
            "worker bandwidths must be positive and finite"
        );
        self.worker_bw = bandwidths;
        self
    }

    /// The model this state prices.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Prices the transfer of `blocks` blocks to worker `k`, requested at
    /// simulated time `now`. Mutates the channel clocks: the returned plan is
    /// committed.
    ///
    /// Zero-block sends (worker retirement handshakes) are free and do not
    /// occupy a channel.
    pub fn send(&mut self, k: ProcId, blocks: u64, now: f64) -> TransferPlan {
        if self.model.is_infinite() || blocks == 0 {
            return TransferPlan {
                start: now,
                end: now,
                arrival: now,
            };
        }
        let rate = if self.worker_bw.is_empty() {
            self.model.transfer_rate().expect("priced model")
        } else {
            // Heterogeneous multiport: each transfer runs at the target
            // worker's own inbound cap, still bounded by the master.
            let master = self.model.master_bw().expect("priced model");
            self.worker_bw[k.idx()].min(master)
        };
        let duration = blocks as f64 / rate;

        // Earliest-free channel, FIFO over requests.
        let (slot, _) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite channel clock"))
            .expect("at least one channel");
        let start = self.channel_free[slot].max(now);
        let end = start + duration;
        self.channel_free[slot] = end;
        self.busy += duration;

        // Queue-depth metric: transfers enqueued but not yet started.
        self.waiting_starts.retain(|&s| s > now);
        if start > now {
            self.waiting_starts.push(start);
        }
        self.max_queue_depth = self.max_queue_depth.max(self.waiting_starts.len());

        // Construction guarantees one entry per worker, so an out-of-range
        // worker id is a hard (index) error, never a silent free link.
        let latency = self.latency[k.idx()];
        TransferPlan {
            start,
            end,
            arrival: end + latency,
        }
    }

    /// Total time the master link spent transferring (summed over channels).
    pub fn master_busy(&self) -> f64 {
        self.busy
    }

    /// Master-link utilization over a run of length `makespan`: busy time
    /// divided by `makespan × channels`. Zero for infinite networks and
    /// empty runs.
    pub fn utilization(&self, makespan: f64) -> f64 {
        if self.channel_free.is_empty() || makespan <= 0.0 {
            return 0.0;
        }
        self.busy / (makespan * self.channel_free.len() as f64)
    }

    /// Largest number of batches ever waiting behind busy channels.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_port(bw: f64) -> NetState {
        NetState::new(NetworkModel::OnePort { master_bw: bw }, 4, vec![0.0; 4])
    }

    #[test]
    fn infinite_transfers_are_free() {
        let mut net = NetState::new(NetworkModel::Infinite, 3, vec![5.0; 3]);
        let plan = net.send(ProcId(0), 1000, 2.5);
        assert_eq!(plan.start, 2.5);
        assert_eq!(plan.arrival, 2.5, "infinite ignores latency");
        assert_eq!(net.master_busy(), 0.0);
        assert_eq!(net.utilization(10.0), 0.0);
        assert_eq!(net.max_queue_depth(), 0);
    }

    #[test]
    fn one_port_serializes_fifo() {
        let mut net = one_port(10.0);
        let a = net.send(ProcId(0), 50, 0.0); // 5 time units
        let b = net.send(ProcId(1), 30, 0.0); // queued behind a
        let c = net.send(ProcId(2), 20, 0.0);
        assert_eq!((a.start, a.end), (0.0, 5.0));
        assert_eq!((b.start, b.end), (5.0, 8.0));
        assert_eq!((c.start, c.end), (8.0, 10.0));
        assert_eq!(net.master_busy(), 10.0);
        assert_eq!(net.max_queue_depth(), 2, "b and c waited");
        assert!((net.utilization(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut net = one_port(10.0);
        let a = net.send(ProcId(0), 10, 0.0);
        assert_eq!(a.end, 1.0);
        let b = net.send(ProcId(1), 10, 5.0); // link idle since t = 1
        assert_eq!((b.start, b.end), (5.0, 6.0));
        assert_eq!(net.max_queue_depth(), 0, "nobody ever waited");
    }

    #[test]
    fn latency_delays_arrival_only() {
        let mut net = NetState::new(NetworkModel::OnePort { master_bw: 10.0 }, 2, vec![0.0, 2.0]);
        let a = net.send(ProcId(1), 10, 0.0);
        assert_eq!(a.end, 1.0);
        assert_eq!(a.arrival, 3.0);
        // The channel frees at `end`, not `arrival`.
        let b = net.send(ProcId(0), 10, 0.0);
        assert_eq!(b.start, 1.0);
        assert_eq!(b.arrival, 2.0);
    }

    #[test]
    fn multiport_runs_channels_in_parallel() {
        let mut net = NetState::new(
            NetworkModel::BoundedMultiport {
                master_bw: 20.0,
                worker_bw: 10.0,
            },
            4,
            vec![0.0; 4],
        );
        // Two channels at rate 10 each.
        let a = net.send(ProcId(0), 10, 0.0);
        let b = net.send(ProcId(1), 10, 0.0);
        let c = net.send(ProcId(2), 10, 0.0);
        assert_eq!((a.start, a.end), (0.0, 1.0));
        assert_eq!((b.start, b.end), (0.0, 1.0), "second channel is free");
        assert_eq!((c.start, c.end), (1.0, 2.0), "third transfer queues");
        assert_eq!(net.max_queue_depth(), 1);
        // Aggregate utilization over both channels.
        assert!((net.utilization(2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_block_sends_are_free() {
        let mut net = one_port(1.0);
        let plan = net.send(ProcId(0), 0, 4.0);
        assert_eq!(plan.arrival, 4.0);
        assert_eq!(net.master_busy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid network model")]
    fn invalid_model_rejected() {
        let _ = NetState::new(NetworkModel::OnePort { master_bw: -1.0 }, 1, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "one link latency per worker")]
    fn short_latency_vector_rejected() {
        // A shard that forgets to slice latencies must fail loudly instead
        // of quietly getting free links.
        let _ = NetState::new(NetworkModel::OnePort { master_bw: 1.0 }, 4, vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "one link latency per worker")]
    fn long_latency_vector_rejected() {
        let _ = NetState::new(NetworkModel::Infinite, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "one bandwidth per worker")]
    fn short_bandwidth_vector_rejected() {
        let model = NetworkModel::BoundedMultiport {
            master_bw: 20.0,
            worker_bw: 10.0,
        };
        let _ = NetState::new(model, 4, vec![0.0; 4]).with_worker_bandwidths(vec![10.0; 3]);
    }

    #[test]
    #[should_panic(expected = "only apply to the bounded-multiport model")]
    fn per_worker_bandwidths_require_multiport() {
        let _ = NetState::new(NetworkModel::OnePort { master_bw: 5.0 }, 2, vec![0.0; 2])
            .with_worker_bandwidths(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_bandwidth_rejected() {
        let model = NetworkModel::BoundedMultiport {
            master_bw: 20.0,
            worker_bw: 10.0,
        };
        let _ = NetState::new(model, 2, vec![0.0; 2]).with_worker_bandwidths(vec![10.0, 0.0]);
    }

    #[test]
    fn per_worker_bandwidths_price_each_link() {
        let model = NetworkModel::BoundedMultiport {
            master_bw: 20.0,
            worker_bw: 10.0,
        };
        let mut net = NetState::new(model, 2, vec![0.0; 2]).with_worker_bandwidths(vec![10.0, 2.0]);
        let fast = net.send(ProcId(0), 10, 0.0);
        let slow = net.send(ProcId(1), 10, 0.0);
        assert_eq!(fast.end, 1.0, "worker 0 keeps the uniform rate");
        assert_eq!(slow.end, 5.0, "worker 1 is capped at 2 blocks/time");
    }

    #[test]
    fn uniform_bandwidth_list_matches_uniform_model() {
        // The per-worker override with every entry equal to the model's
        // uniform cap prices identically to the plain model.
        let model = NetworkModel::BoundedMultiport {
            master_bw: 20.0,
            worker_bw: 10.0,
        };
        let mut plain = NetState::new(model, 3, vec![0.0; 3]);
        let mut listed =
            NetState::new(model, 3, vec![0.0; 3]).with_worker_bandwidths(vec![10.0; 3]);
        for (k, blocks, now) in [(0u32, 10u64, 0.0), (1, 7, 0.2), (2, 3, 0.4), (0, 5, 1.0)] {
            assert_eq!(
                plain.send(ProcId(k), blocks, now),
                listed.send(ProcId(k), blocks, now)
            );
        }
        assert_eq!(plain.master_busy(), listed.master_busy());
    }
}
