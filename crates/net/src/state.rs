//! Mutable per-run network state: channel clocks and link metrics.

use crate::model::NetworkModel;
use hetsched_platform::ProcId;

/// The priced timing of one batch transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferPlan {
    /// When the master's channel starts pushing this batch.
    pub start: f64,
    /// When the last block leaves the master.
    pub end: f64,
    /// When the batch is usable at the worker (`end` + the worker's link
    /// latency).
    pub arrival: f64,
}

/// Simulates the master link for one run: answers "when does this batch
/// arrive at worker `k`?" under the run's [`NetworkModel`], and accumulates
/// the master-busy time and the maximum send-queue depth.
///
/// Transfers are priced in request order (FIFO): each send grabs the
/// earliest-free channel. Because every worker has at most one batch in
/// flight, at most `p` transfers are ever outstanding.
#[derive(Clone, Debug)]
pub struct NetState {
    model: NetworkModel,
    latency: Vec<f64>,
    /// Free time of each concurrent master channel (len = `channels()`,
    /// empty for `Infinite`).
    channel_free: Vec<f64>,
    /// Accumulated master-link busy time (sum of transfer durations).
    busy: f64,
    /// Start times of transfers that were queued behind a busy channel and
    /// have not started yet (pruned lazily).
    waiting_starts: Vec<f64>,
    max_queue_depth: usize,
}

impl NetState {
    /// Network state over `model` with per-worker link latencies (one entry
    /// per worker; use zeros for latency-free links).
    pub fn new(model: NetworkModel, latency: Vec<f64>) -> Self {
        model.validate().expect("invalid network model");
        assert!(
            latency.iter().all(|l| l.is_finite() && *l >= 0.0),
            "link latencies must be non-negative and finite"
        );
        let channels = if model.is_infinite() {
            0
        } else {
            model.channels().min(latency.len().max(1))
        };
        NetState {
            model,
            latency,
            channel_free: vec![0.0; channels],
            busy: 0.0,
            waiting_starts: Vec::new(),
            max_queue_depth: 0,
        }
    }

    /// The model this state prices.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Prices the transfer of `blocks` blocks to worker `k`, requested at
    /// simulated time `now`. Mutates the channel clocks: the returned plan is
    /// committed.
    ///
    /// Zero-block sends (worker retirement handshakes) are free and do not
    /// occupy a channel.
    pub fn send(&mut self, k: ProcId, blocks: u64, now: f64) -> TransferPlan {
        if self.model.is_infinite() || blocks == 0 {
            return TransferPlan {
                start: now,
                end: now,
                arrival: now,
            };
        }
        let rate = self.model.transfer_rate().expect("priced model");
        let duration = blocks as f64 / rate;

        // Earliest-free channel, FIFO over requests.
        let (slot, _) = self
            .channel_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite channel clock"))
            .expect("at least one channel");
        let start = self.channel_free[slot].max(now);
        let end = start + duration;
        self.channel_free[slot] = end;
        self.busy += duration;

        // Queue-depth metric: transfers enqueued but not yet started.
        self.waiting_starts.retain(|&s| s > now);
        if start > now {
            self.waiting_starts.push(start);
        }
        self.max_queue_depth = self.max_queue_depth.max(self.waiting_starts.len());

        let latency = self.latency.get(k.idx()).copied().unwrap_or(0.0);
        TransferPlan {
            start,
            end,
            arrival: end + latency,
        }
    }

    /// Total time the master link spent transferring (summed over channels).
    pub fn master_busy(&self) -> f64 {
        self.busy
    }

    /// Master-link utilization over a run of length `makespan`: busy time
    /// divided by `makespan × channels`. Zero for infinite networks and
    /// empty runs.
    pub fn utilization(&self, makespan: f64) -> f64 {
        if self.channel_free.is_empty() || makespan <= 0.0 {
            return 0.0;
        }
        self.busy / (makespan * self.channel_free.len() as f64)
    }

    /// Largest number of batches ever waiting behind busy channels.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_port(bw: f64) -> NetState {
        NetState::new(NetworkModel::OnePort { master_bw: bw }, vec![0.0; 4])
    }

    #[test]
    fn infinite_transfers_are_free() {
        let mut net = NetState::new(NetworkModel::Infinite, vec![5.0; 3]);
        let plan = net.send(ProcId(0), 1000, 2.5);
        assert_eq!(plan.start, 2.5);
        assert_eq!(plan.arrival, 2.5, "infinite ignores latency");
        assert_eq!(net.master_busy(), 0.0);
        assert_eq!(net.utilization(10.0), 0.0);
        assert_eq!(net.max_queue_depth(), 0);
    }

    #[test]
    fn one_port_serializes_fifo() {
        let mut net = one_port(10.0);
        let a = net.send(ProcId(0), 50, 0.0); // 5 time units
        let b = net.send(ProcId(1), 30, 0.0); // queued behind a
        let c = net.send(ProcId(2), 20, 0.0);
        assert_eq!((a.start, a.end), (0.0, 5.0));
        assert_eq!((b.start, b.end), (5.0, 8.0));
        assert_eq!((c.start, c.end), (8.0, 10.0));
        assert_eq!(net.master_busy(), 10.0);
        assert_eq!(net.max_queue_depth(), 2, "b and c waited");
        assert!((net.utilization(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut net = one_port(10.0);
        let a = net.send(ProcId(0), 10, 0.0);
        assert_eq!(a.end, 1.0);
        let b = net.send(ProcId(1), 10, 5.0); // link idle since t = 1
        assert_eq!((b.start, b.end), (5.0, 6.0));
        assert_eq!(net.max_queue_depth(), 0, "nobody ever waited");
    }

    #[test]
    fn latency_delays_arrival_only() {
        let mut net = NetState::new(NetworkModel::OnePort { master_bw: 10.0 }, vec![0.0, 2.0]);
        let a = net.send(ProcId(1), 10, 0.0);
        assert_eq!(a.end, 1.0);
        assert_eq!(a.arrival, 3.0);
        // The channel frees at `end`, not `arrival`.
        let b = net.send(ProcId(0), 10, 0.0);
        assert_eq!(b.start, 1.0);
        assert_eq!(b.arrival, 2.0);
    }

    #[test]
    fn multiport_runs_channels_in_parallel() {
        let mut net = NetState::new(
            NetworkModel::BoundedMultiport {
                master_bw: 20.0,
                worker_bw: 10.0,
            },
            vec![0.0; 4],
        );
        // Two channels at rate 10 each.
        let a = net.send(ProcId(0), 10, 0.0);
        let b = net.send(ProcId(1), 10, 0.0);
        let c = net.send(ProcId(2), 10, 0.0);
        assert_eq!((a.start, a.end), (0.0, 1.0));
        assert_eq!((b.start, b.end), (0.0, 1.0), "second channel is free");
        assert_eq!((c.start, c.end), (1.0, 2.0), "third transfer queues");
        assert_eq!(net.max_queue_depth(), 1);
        // Aggregate utilization over both channels.
        assert!((net.utilization(2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_block_sends_are_free() {
        let mut net = one_port(1.0);
        let plan = net.send(ProcId(0), 0, 4.0);
        assert_eq!(plan.arrival, 4.0);
        assert_eq!(net.master_busy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid network model")]
    fn invalid_model_rejected() {
        let _ = NetState::new(NetworkModel::OnePort { master_bw: -1.0 }, vec![0.0]);
    }
}
