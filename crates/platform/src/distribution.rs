//! Speed distributions used throughout the paper's evaluation.

use rand::Rng;

/// How processor speeds are drawn.
#[derive(Clone, Debug, PartialEq)]
pub enum SpeedDistribution {
    /// All processors share one speed (the §3.6 homogeneous approximation).
    Constant(f64),
    /// Speeds drawn uniformly at random from `[lo, hi]`.
    UniformRange { lo: f64, hi: f64 },
    /// Speeds drawn uniformly from a finite set of processor classes
    /// (the `set.3` / `set.5` scenarios: a few machine generations).
    DiscreteSet(Vec<f64>),
}

impl SpeedDistribution {
    /// `U[lo, hi]`.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi >= lo, "invalid speed range [{lo}, {hi}]");
        SpeedDistribution::UniformRange { lo, hi }
    }

    /// The paper's headline setting: `U[10, 100]`.
    pub fn paper_default() -> Self {
        Self::uniform(10.0, 100.0)
    }

    /// Fig. 7 parameterization: speeds in `U[100−h, 100+h]` for
    /// heterogeneity level `h ∈ [0, 100)`. `h = 0` degenerates to a
    /// homogeneous platform.
    pub fn heterogeneity(h: f64) -> Self {
        assert!(
            (0.0..100.0).contains(&h),
            "heterogeneity must be in [0, 100)"
        );
        if h == 0.0 {
            SpeedDistribution::Constant(100.0)
        } else {
            Self::uniform(100.0 - h, 100.0 + h)
        }
    }

    /// Uniform choice among a discrete set of class speeds.
    pub fn discrete(speeds: impl Into<Vec<f64>>) -> Self {
        let speeds = speeds.into();
        assert!(!speeds.is_empty(), "discrete set must be non-empty");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        SpeedDistribution::DiscreteSet(speeds)
    }

    /// Draws one speed.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            SpeedDistribution::Constant(s) => *s,
            SpeedDistribution::UniformRange { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
            SpeedDistribution::DiscreteSet(set) => set[rng.gen_range(0..set.len())],
        }
    }

    /// Draws `p` speeds.
    pub fn sample_many<R: Rng + ?Sized>(&self, p: usize, rng: &mut R) -> Vec<f64> {
        (0..p).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    #[test]
    fn uniform_stays_in_range() {
        let d = SpeedDistribution::paper_default();
        let mut rng = rng_for(1, 0);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((10.0..=100.0).contains(&s));
        }
    }

    #[test]
    fn constant_is_constant() {
        let d = SpeedDistribution::Constant(42.0);
        let mut rng = rng_for(2, 0);
        assert!(d.sample_many(50, &mut rng).iter().all(|&s| s == 42.0));
    }

    #[test]
    fn discrete_only_draws_members() {
        let d = SpeedDistribution::discrete([80.0, 100.0, 150.0]);
        let mut rng = rng_for(3, 0);
        for _ in 0..300 {
            let s = d.sample(&mut rng);
            assert!([80.0, 100.0, 150.0].contains(&s));
        }
    }

    #[test]
    fn discrete_draws_every_member_eventually() {
        let d = SpeedDistribution::discrete([1.0, 2.0, 3.0]);
        let mut rng = rng_for(4, 0);
        let draws = d.sample_many(200, &mut rng);
        for class in [1.0, 2.0, 3.0] {
            assert!(draws.contains(&class));
        }
    }

    #[test]
    fn heterogeneity_zero_is_homogeneous() {
        assert_eq!(
            SpeedDistribution::heterogeneity(0.0),
            SpeedDistribution::Constant(100.0)
        );
    }

    #[test]
    fn heterogeneity_range() {
        let d = SpeedDistribution::heterogeneity(40.0);
        let mut rng = rng_for(5, 0);
        for _ in 0..500 {
            let s = d.sample(&mut rng);
            assert!((60.0..=140.0).contains(&s));
        }
    }

    #[test]
    #[should_panic]
    fn invalid_range_panics() {
        let _ = SpeedDistribution::uniform(10.0, 5.0);
    }

    #[test]
    fn uniform_mean_is_near_midpoint() {
        let d = SpeedDistribution::paper_default();
        let mut rng = rng_for(11, 0);
        let samples = d.sample_many(20_000, &mut rng);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 55.0).abs() < 1.0, "mean {mean} far from 55");
    }

    #[test]
    fn discrete_classes_are_roughly_equiprobable() {
        let d = SpeedDistribution::discrete([1.0, 2.0, 3.0]);
        let mut rng = rng_for(12, 0);
        let samples = d.sample_many(9_000, &mut rng);
        for class in [1.0, 2.0, 3.0] {
            let count = samples.iter().filter(|&&s| s == class).count();
            assert!(
                (2_600..=3_400).contains(&count),
                "class {class}: {count}/9000"
            );
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let d = SpeedDistribution::paper_default();
        let a = d.sample_many(20, &mut rng_for(9, 1));
        let b = d.sample_many(20, &mut rng_for(9, 1));
        assert_eq!(a, b);
    }
}
