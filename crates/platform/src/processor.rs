//! Processor identity.

use std::fmt;

/// Index of a processor within a [`Platform`](crate::Platform).
///
/// A thin newtype over `u32` so processor indices cannot be confused with
/// block or task indices in scheduler code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The index as a `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for ProcId {
    #[inline]
    fn from(v: usize) -> Self {
        ProcId(u32::try_from(v).expect("processor index fits in u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_round_trip() {
        let p = ProcId::from(17usize);
        assert_eq!(p.idx(), 17);
        assert_eq!(p, ProcId(17));
    }

    #[test]
    fn display() {
        assert_eq!(ProcId(3).to_string(), "P3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcId(1) < ProcId(2));
    }
}
