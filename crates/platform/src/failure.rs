//! Worker fault injection: fail-stop failures and permanent stragglers.
//!
//! The paper evaluates dynamic strategies on platforms whose speeds may
//! drift (`dyn.*` scenarios), but every worker survives the whole run. This
//! module adds the two classic fault models on top:
//!
//! * **fail-stop**: worker `k` dies permanently at simulated time `t`; the
//!   batch it was computing is lost and its tasks must be re-allocated;
//! * **straggler**: worker `k` runs slower by a constant factor for the
//!   whole run (a permanently degraded node), which stresses the end-game
//!   behaviour of the two-phase strategies without losing any task.
//!
//! A [`FailureModel`] is plain data — it draws no randomness by itself, so a
//! scenario is reproducible by construction. The seeded helper
//! [`FailureModel::random_failures`] derives a scenario from a caller-provided
//! RNG for sweep experiments.

use crate::processor::ProcId;
use rand::Rng;

/// A deterministic fault-injection scenario for one run.
///
/// `FailureModel::none()` is the absence of faults; engines treat it as a
/// guaranteed fast path (bit-for-bit identical results to a fault-unaware
/// run).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailureModel {
    /// `(worker, time)`: the worker permanently fails at simulated `time`.
    failures: Vec<(ProcId, f64)>,
    /// `(worker, factor)`: the worker's speed is divided by `factor ≥ 1`
    /// from the start of the run.
    stragglers: Vec<(ProcId, f64)>,
}

impl FailureModel {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the scenario injects nothing.
    pub fn is_none(&self) -> bool {
        self.failures.is_empty() && self.stragglers.is_empty()
    }

    /// Adds a fail-stop failure of `worker` at simulated `time`.
    pub fn fail_at(mut self, worker: ProcId, time: f64) -> Self {
        assert!(time >= 0.0, "failure time must be non-negative");
        self.failures.push((worker, time));
        self
    }

    /// Adds a permanent slowdown of `worker` by `factor ≥ 1`.
    pub fn slow_down(mut self, worker: ProcId, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be ≥ 1");
        self.stragglers.push((worker, factor));
        self
    }

    /// A seeded scenario failing `count` distinct workers (out of `p`) at
    /// times drawn uniformly from `[0, horizon)`. Deterministic for a given
    /// RNG state.
    pub fn random_failures<R: Rng + ?Sized>(
        p: usize,
        count: usize,
        horizon: f64,
        rng: &mut R,
    ) -> Self {
        assert!(count < p, "at least one worker must survive");
        assert!(horizon > 0.0);
        let mut pool: Vec<usize> = (0..p).collect();
        let mut model = FailureModel::none();
        for _ in 0..count {
            let slot = rng.gen_range(0..pool.len());
            let worker = pool.swap_remove(slot);
            let time = rng.gen_range(0.0..horizon);
            model = model.fail_at(ProcId(worker as u32), time);
        }
        model
    }

    /// All fail-stop entries, in insertion order.
    pub fn failures(&self) -> &[(ProcId, f64)] {
        &self.failures
    }

    /// All straggler entries, in insertion order.
    pub fn stragglers(&self) -> &[(ProcId, f64)] {
        &self.stragglers
    }

    /// Earliest failure time of `worker`, if it fails at all.
    pub fn fail_time(&self, worker: ProcId) -> Option<f64> {
        self.failures
            .iter()
            .filter(|(k, _)| *k == worker)
            .map(|&(_, t)| t)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Combined slowdown factor of `worker` (`1.0` when not a straggler).
    pub fn slowdown(&self, worker: ProcId) -> f64 {
        self.stragglers
            .iter()
            .filter(|(k, _)| *k == worker)
            .map(|&(_, f)| f)
            .product()
    }

    /// Checks the scenario against a platform of `p` workers: every index in
    /// range, and at least one worker survives to finish the run.
    pub fn validate(&self, p: usize) -> Result<(), String> {
        for &(k, t) in &self.failures {
            if k.idx() >= p {
                return Err(format!("failure names worker {} but p = {p}", k.idx()));
            }
            if !t.is_finite() || t < 0.0 {
                return Err(format!(
                    "failure time {t} for worker {} is invalid",
                    k.idx()
                ));
            }
        }
        for &(k, f) in &self.stragglers {
            if k.idx() >= p {
                return Err(format!("straggler names worker {} but p = {p}", k.idx()));
            }
            if !f.is_finite() || f < 1.0 {
                return Err(format!(
                    "straggler factor {f} for worker {} must be ≥ 1",
                    k.idx()
                ));
            }
        }
        let mut failing: Vec<usize> = self.failures.iter().map(|(k, _)| k.idx()).collect();
        failing.sort_unstable();
        failing.dedup();
        if failing.len() >= p {
            return Err("every worker fails: no one left to finish the run".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    #[test]
    fn none_is_none() {
        assert!(FailureModel::none().is_none());
        assert_eq!(FailureModel::none(), FailureModel::default());
    }

    #[test]
    fn builders_accumulate() {
        let m = FailureModel::none()
            .fail_at(ProcId(2), 5.0)
            .fail_at(ProcId(2), 3.0)
            .slow_down(ProcId(1), 4.0)
            .slow_down(ProcId(1), 2.0);
        assert!(!m.is_none());
        assert_eq!(m.fail_time(ProcId(2)), Some(3.0), "earliest failure wins");
        assert_eq!(m.fail_time(ProcId(0)), None);
        assert_eq!(m.slowdown(ProcId(1)), 8.0, "factors compose");
        assert_eq!(m.slowdown(ProcId(0)), 1.0);
    }

    #[test]
    fn validate_rejects_bad_scenarios() {
        assert!(FailureModel::none().validate(4).is_ok());
        let out_of_range = FailureModel::none().fail_at(ProcId(4), 1.0);
        assert!(out_of_range.validate(4).is_err());
        let slow_oob = FailureModel::none().slow_down(ProcId(9), 2.0);
        assert!(slow_oob.validate(4).is_err());
        let all_dead = FailureModel::none()
            .fail_at(ProcId(0), 1.0)
            .fail_at(ProcId(1), 2.0);
        assert!(all_dead.validate(2).is_err());
        assert!(all_dead.validate(3).is_ok());
    }

    #[test]
    fn random_failures_are_deterministic_and_distinct() {
        let a = FailureModel::random_failures(10, 3, 50.0, &mut rng_for(7, 0));
        let b = FailureModel::random_failures(10, 3, 50.0, &mut rng_for(7, 0));
        assert_eq!(a, b, "same seed, same scenario");
        let mut workers: Vec<usize> = a.failures().iter().map(|(k, _)| k.idx()).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3, "failed workers are distinct");
        for &(_, t) in a.failures() {
            assert!((0.0..50.0).contains(&t));
        }
        assert!(a.validate(10).is_ok());
    }

    #[test]
    #[should_panic(expected = "straggler factor")]
    fn slow_down_rejects_speedups() {
        let _ = FailureModel::none().slow_down(ProcId(0), 0.5);
    }
}
