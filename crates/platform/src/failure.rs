//! Worker fault injection: fail-stop failures and permanent stragglers.
//!
//! The paper evaluates dynamic strategies on platforms whose speeds may
//! drift (`dyn.*` scenarios), but every worker survives the whole run. This
//! module adds the two classic fault models on top:
//!
//! * **fail-stop**: worker `k` dies permanently at simulated time `t`; the
//!   batch it was computing is lost and its tasks must be re-allocated;
//! * **straggler**: worker `k` runs slower by a constant factor for the
//!   whole run (a permanently degraded node), which stresses the end-game
//!   behaviour of the two-phase strategies without losing any task.
//!
//! A [`FailureModel`] is plain data — it draws no randomness by itself, so a
//! scenario is reproducible by construction. The seeded helper
//! [`FailureModel::random_failures`] derives a scenario from a caller-provided
//! RNG for sweep experiments.
//!
//! Besides fixed failure times, a scenario may carry *stochastic* fail-stop
//! entries ([`FailureModel::fail_exponential`]): the failure time is drawn
//! from an exponential distribution with a given mean when the model is
//! [resolved](FailureModel::resolve) against a seeded RNG at run start. The
//! engines only ever see resolved (fixed-time) models, so determinism is
//! preserved: same seed, same drawn times, same run.

use crate::processor::ProcId;
use rand::Rng;

/// A deterministic fault-injection scenario for one run.
///
/// `FailureModel::none()` is the absence of faults; engines treat it as a
/// guaranteed fast path (bit-for-bit identical results to a fault-unaware
/// run).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailureModel {
    /// `(worker, time)`: the worker permanently fails at simulated `time`.
    failures: Vec<(ProcId, f64)>,
    /// `(worker, factor)`: the worker's speed is divided by `factor ≥ 1`
    /// from the start of the run.
    stragglers: Vec<(ProcId, f64)>,
    /// `(worker, mean)`: the worker fails at a time drawn from an
    /// exponential distribution with the given mean, once
    /// [resolved](Self::resolve) against a seeded RNG.
    exp_failures: Vec<(ProcId, f64)>,
}

impl FailureModel {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the scenario injects nothing.
    pub fn is_none(&self) -> bool {
        self.failures.is_empty() && self.stragglers.is_empty() && self.exp_failures.is_empty()
    }

    /// Adds a fail-stop failure of `worker` at simulated `time`.
    pub fn fail_at(mut self, worker: ProcId, time: f64) -> Self {
        assert!(time >= 0.0, "failure time must be non-negative");
        self.failures.push((worker, time));
        self
    }

    /// Adds a permanent slowdown of `worker` by `factor ≥ 1`.
    pub fn slow_down(mut self, worker: ProcId, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be ≥ 1");
        self.stragglers.push((worker, factor));
        self
    }

    /// Adds a stochastic fail-stop of `worker`: the failure time is drawn
    /// from an exponential distribution with mean `mean` when the model is
    /// [resolved](Self::resolve).
    pub fn fail_exponential(mut self, worker: ProcId, mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite"
        );
        self.exp_failures.push((worker, mean));
        self
    }

    /// `true` when the scenario carries stochastic entries that still need a
    /// [`resolve`](Self::resolve) pass before an engine can consume it.
    pub fn has_stochastic(&self) -> bool {
        !self.exp_failures.is_empty()
    }

    /// All stochastic `(worker, mean)` entries, in insertion order.
    pub fn exp_failures(&self) -> &[(ProcId, f64)] {
        &self.exp_failures
    }

    /// Draws a fixed failure time for every stochastic entry (inverse-CDF
    /// sampling of the exponential: `t = −mean·ln(1−u)`), returning a model
    /// with only fixed-time entries. Deterministic for a given RNG state;
    /// when there is nothing stochastic the RNG is not touched and the model
    /// is returned unchanged, so fixed-only scenarios stay bit-identical.
    pub fn resolve<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        if self.exp_failures.is_empty() {
            return self.clone();
        }
        let mut resolved = Self {
            failures: self.failures.clone(),
            stragglers: self.stragglers.clone(),
            exp_failures: Vec::new(),
        };
        for &(k, mean) in &self.exp_failures {
            let u: f64 = rng.gen_range(0.0..1.0);
            resolved.failures.push((k, -mean * (1.0 - u).ln()));
        }
        resolved
    }

    /// A seeded scenario failing `count` distinct workers (out of `p`) at
    /// times drawn uniformly from `[0, horizon)`. Deterministic for a given
    /// RNG state.
    pub fn random_failures<R: Rng + ?Sized>(
        p: usize,
        count: usize,
        horizon: f64,
        rng: &mut R,
    ) -> Self {
        assert!(count < p, "at least one worker must survive");
        assert!(horizon > 0.0);
        let mut pool: Vec<usize> = (0..p).collect();
        let mut model = FailureModel::none();
        for _ in 0..count {
            let slot = rng.gen_range(0..pool.len());
            let worker = pool.swap_remove(slot);
            let time = rng.gen_range(0.0..horizon);
            model = model.fail_at(ProcId(worker as u32), time);
        }
        model
    }

    /// All fail-stop entries, in insertion order.
    pub fn failures(&self) -> &[(ProcId, f64)] {
        &self.failures
    }

    /// All straggler entries, in insertion order.
    pub fn stragglers(&self) -> &[(ProcId, f64)] {
        &self.stragglers
    }

    /// Earliest failure time of `worker`, if it fails at all.
    pub fn fail_time(&self, worker: ProcId) -> Option<f64> {
        self.failures
            .iter()
            .filter(|(k, _)| *k == worker)
            .map(|&(_, t)| t)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Combined slowdown factor of `worker` (`1.0` when not a straggler).
    pub fn slowdown(&self, worker: ProcId) -> f64 {
        self.stragglers
            .iter()
            .filter(|(k, _)| *k == worker)
            .map(|&(_, f)| f)
            .product()
    }

    /// Checks the scenario against a platform of `p` workers: every index in
    /// range, and at least one worker survives to finish the run.
    pub fn validate(&self, p: usize) -> Result<(), String> {
        for &(k, t) in &self.failures {
            if k.idx() >= p {
                return Err(format!("failure names worker {} but p = {p}", k.idx()));
            }
            if !t.is_finite() || t < 0.0 {
                return Err(format!(
                    "failure time {t} for worker {} is invalid",
                    k.idx()
                ));
            }
        }
        for &(k, f) in &self.stragglers {
            if k.idx() >= p {
                return Err(format!("straggler names worker {} but p = {p}", k.idx()));
            }
            if !f.is_finite() || f < 1.0 {
                return Err(format!(
                    "straggler factor {f} for worker {} must be ≥ 1",
                    k.idx()
                ));
            }
        }
        for &(k, mean) in &self.exp_failures {
            if k.idx() >= p {
                return Err(format!(
                    "exponential failure names worker {} but p = {p}",
                    k.idx()
                ));
            }
            if !mean.is_finite() || mean <= 0.0 {
                return Err(format!(
                    "exponential failure mean {mean} for worker {} must be positive",
                    k.idx()
                ));
            }
        }
        let mut failing: Vec<usize> = self
            .failures
            .iter()
            .chain(self.exp_failures.iter())
            .map(|(k, _)| k.idx())
            .collect();
        failing.sort_unstable();
        failing.dedup();
        if failing.len() >= p {
            return Err("every worker fails: no one left to finish the run".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    #[test]
    fn none_is_none() {
        assert!(FailureModel::none().is_none());
        assert_eq!(FailureModel::none(), FailureModel::default());
    }

    #[test]
    fn builders_accumulate() {
        let m = FailureModel::none()
            .fail_at(ProcId(2), 5.0)
            .fail_at(ProcId(2), 3.0)
            .slow_down(ProcId(1), 4.0)
            .slow_down(ProcId(1), 2.0);
        assert!(!m.is_none());
        assert_eq!(m.fail_time(ProcId(2)), Some(3.0), "earliest failure wins");
        assert_eq!(m.fail_time(ProcId(0)), None);
        assert_eq!(m.slowdown(ProcId(1)), 8.0, "factors compose");
        assert_eq!(m.slowdown(ProcId(0)), 1.0);
    }

    #[test]
    fn validate_rejects_bad_scenarios() {
        assert!(FailureModel::none().validate(4).is_ok());
        let out_of_range = FailureModel::none().fail_at(ProcId(4), 1.0);
        assert!(out_of_range.validate(4).is_err());
        let slow_oob = FailureModel::none().slow_down(ProcId(9), 2.0);
        assert!(slow_oob.validate(4).is_err());
        let all_dead = FailureModel::none()
            .fail_at(ProcId(0), 1.0)
            .fail_at(ProcId(1), 2.0);
        assert!(all_dead.validate(2).is_err());
        assert!(all_dead.validate(3).is_ok());
    }

    #[test]
    fn random_failures_are_deterministic_and_distinct() {
        let a = FailureModel::random_failures(10, 3, 50.0, &mut rng_for(7, 0));
        let b = FailureModel::random_failures(10, 3, 50.0, &mut rng_for(7, 0));
        assert_eq!(a, b, "same seed, same scenario");
        let mut workers: Vec<usize> = a.failures().iter().map(|(k, _)| k.idx()).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3, "failed workers are distinct");
        for &(_, t) in a.failures() {
            assert!((0.0..50.0).contains(&t));
        }
        assert!(a.validate(10).is_ok());
    }

    #[test]
    #[should_panic(expected = "straggler factor")]
    fn slow_down_rejects_speedups() {
        let _ = FailureModel::none().slow_down(ProcId(0), 0.5);
    }

    #[test]
    fn exponential_entries_resolve_deterministically() {
        let m = FailureModel::none()
            .fail_exponential(ProcId(1), 20.0)
            .fail_exponential(ProcId(3), 5.0);
        assert!(!m.is_none());
        assert!(m.has_stochastic());
        assert_eq!(m.fail_time(ProcId(1)), None, "unresolved until drawn");

        let a = m.resolve(&mut rng_for(9, 0x33));
        let b = m.resolve(&mut rng_for(9, 0x33));
        assert_eq!(a, b, "same seed, same drawn times");
        assert!(!a.has_stochastic());
        assert_eq!(a.failures().len(), 2);
        let t1 = a.fail_time(ProcId(1)).unwrap();
        let t3 = a.fail_time(ProcId(3)).unwrap();
        assert!(t1.is_finite() && t1 >= 0.0);
        assert!(t3.is_finite() && t3 >= 0.0);

        let c = m.resolve(&mut rng_for(10, 0x33));
        assert_ne!(a, c, "different seed, different draw");
    }

    #[test]
    fn resolve_without_stochastic_entries_leaves_rng_untouched() {
        let fixed = FailureModel::none().fail_at(ProcId(0), 4.0);
        let mut rng = rng_for(3, 0x33);
        let resolved = fixed.resolve(&mut rng);
        assert_eq!(resolved, fixed);
        let mut fresh = rng_for(3, 0x33);
        assert_eq!(
            rng.gen_range(0..u64::MAX),
            fresh.gen_range(0..u64::MAX),
            "rng state untouched by a no-op resolve"
        );
    }

    #[test]
    fn validate_covers_exponential_entries() {
        let oob = FailureModel::none().fail_exponential(ProcId(7), 10.0);
        assert!(oob.validate(4).is_err());
        let ok = FailureModel::none().fail_exponential(ProcId(1), 10.0);
        assert!(ok.validate(4).is_ok());
        let all_dead = FailureModel::none()
            .fail_at(ProcId(0), 1.0)
            .fail_exponential(ProcId(1), 10.0);
        assert!(
            all_dead.validate(2).is_err(),
            "exp entries count as failing"
        );
        assert!(all_dead.validate(3).is_ok());
    }

    #[test]
    #[should_panic(expected = "exponential mean")]
    fn fail_exponential_rejects_nonpositive_mean() {
        let _ = FailureModel::none().fail_exponential(ProcId(0), 0.0);
    }
}
