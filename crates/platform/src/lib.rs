//! Heterogeneous platform model.
//!
//! The paper targets a master–worker platform of `p` processors where
//! processor `P_k` has *speed* `s_k`: the number of block tasks it completes
//! per unit time. Strategies are agnostic to the speeds (demand-driven), but
//! the *evaluation* draws speeds from several distributions:
//!
//! * the headline setting `U[10, 100]` (large heterogeneity);
//! * the heterogeneity sweep `U[100−h, 100+h]` (Fig. 7);
//! * the scenario suite `unif.1`, `unif.2`, `set.3`, `set.5`, `dyn.5`,
//!   `dyn.20` (Fig. 8), where the `dyn.*` scenarios perturb a processor's
//!   speed by up to 5 % / 20 % after every task.
//!
//! This crate provides [`Platform`] (the drawn speeds), [`SpeedDistribution`]
//! (how to draw them), [`SpeedModel`]/[`SpeedState`] (fixed or per-task
//! perturbed execution rates), [`scenario::Scenario`] (the Fig. 8 presets)
//! and the communication [`bounds`] used to normalize every result.

pub mod bounds;
pub mod distribution;
pub mod failure;
pub mod platform;
pub mod processor;
pub mod scenario;
pub mod speed;

pub use bounds::{matmul_lower_bound, outer_lower_bound};
pub use distribution::SpeedDistribution;
pub use failure::FailureModel;
pub use platform::Platform;
pub use processor::ProcId;
pub use scenario::Scenario;
pub use speed::{SpeedModel, SpeedState};
