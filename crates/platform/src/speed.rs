//! Execution-rate models: fixed speeds and the paper's `dyn.*` scenarios.

use crate::platform::Platform;
use crate::processor::ProcId;
use rand::Rng;

/// How a processor's effective speed evolves while it computes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeedModel {
    /// Speeds are constant for the whole run (every figure except Fig. 8's
    /// `dyn.*` scenarios).
    Fixed,
    /// After each task, the processor's effective speed is re-drawn as
    /// `base · (1 + U(−pct, pct))`.
    ///
    /// The paper's wording — *"after computing a task, a processor sees its
    /// computing speed randomly changed by up to 5 %"* — is ambiguous between
    /// jitter around the base speed and a compounding random walk. We default
    /// to jitter (`compound = false`): a compounding walk has negative log
    /// drift, so over the ~10⁴ tasks of a Fig. 8 run speeds would collapse
    /// toward zero, which clearly is not the "mildly dynamic" setting the
    /// paper describes. The compounding variant is still available for
    /// ablation.
    Perturbed { pct: f64, compound: bool },
}

impl SpeedModel {
    /// `dyn.5`: ±5 % jitter after every task.
    pub fn dyn5() -> Self {
        SpeedModel::Perturbed {
            pct: 0.05,
            compound: false,
        }
    }

    /// `dyn.20`: ±20 % jitter after every task.
    pub fn dyn20() -> Self {
        SpeedModel::Perturbed {
            pct: 0.20,
            compound: false,
        }
    }
}

/// Mutable per-run speed state: yields the wall-clock duration of each task.
#[derive(Clone, Debug)]
pub struct SpeedState {
    model: SpeedModel,
    base: Vec<f64>,
    current: Vec<f64>,
}

impl SpeedState {
    /// Initializes from a platform's base speeds.
    pub fn new(platform: &Platform, model: SpeedModel) -> Self {
        let base = platform.speeds().to_vec();
        SpeedState {
            model,
            current: base.clone(),
            base,
        }
    }

    /// Current effective speed of `k`.
    #[inline]
    pub fn speed(&self, k: ProcId) -> f64 {
        self.current[k.idx()]
    }

    /// Permanently divides `k`'s speed by `factor ≥ 1` (straggler
    /// injection). Scales both the base and the current speed so that
    /// `Perturbed` models jitter around the degraded base.
    pub fn slow_down(&mut self, k: ProcId, factor: f64) {
        assert!(factor >= 1.0, "straggler factor must be ≥ 1");
        let i = k.idx();
        self.base[i] /= factor;
        self.current[i] /= factor;
    }

    /// Duration of the *next* task on `k`, then applies the post-task speed
    /// change mandated by the model.
    pub fn task_duration<R: Rng + ?Sized>(&mut self, k: ProcId, rng: &mut R) -> f64 {
        let i = k.idx();
        let dur = 1.0 / self.current[i];
        match self.model {
            SpeedModel::Fixed => {}
            SpeedModel::Perturbed { pct, compound } => {
                let factor = 1.0 + rng.gen_range(-pct..=pct);
                let reference = if compound {
                    self.current[i]
                } else {
                    self.base[i]
                };
                // Guard against pathological user-supplied pct ≥ 1.
                self.current[i] = (reference * factor).max(reference * 1e-3);
            }
        }
        dur
    }

    /// Duration of a batch of `count` tasks on `k` (sums per-task durations
    /// so that dynamic models perturb after *each* task, as the paper says).
    pub fn batch_duration<R: Rng + ?Sized>(&mut self, k: ProcId, count: usize, rng: &mut R) -> f64 {
        match self.model {
            // Fast path: constant speed means no per-task RNG draw.
            SpeedModel::Fixed => count as f64 / self.current[k.idx()],
            SpeedModel::Perturbed { .. } => (0..count).map(|_| self.task_duration(k, rng)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    fn platform2() -> Platform {
        Platform::from_speeds(vec![4.0, 8.0])
    }

    #[test]
    fn fixed_durations_are_inverse_speed() {
        let mut st = SpeedState::new(&platform2(), SpeedModel::Fixed);
        let mut rng = rng_for(0, 0);
        assert_eq!(st.task_duration(ProcId(0), &mut rng), 0.25);
        assert_eq!(st.task_duration(ProcId(1), &mut rng), 0.125);
        assert_eq!(st.batch_duration(ProcId(0), 8, &mut rng), 2.0);
    }

    #[test]
    fn perturbed_stays_within_band() {
        let pf = Platform::from_speeds(vec![100.0]);
        let mut st = SpeedState::new(&pf, SpeedModel::dyn20());
        let mut rng = rng_for(1, 0);
        for _ in 0..2000 {
            let _ = st.task_duration(ProcId(0), &mut rng);
            let s = st.speed(ProcId(0));
            assert!(
                (80.0..=120.0).contains(&s),
                "non-compound jitter band, got {s}"
            );
        }
    }

    #[test]
    fn perturbed_actually_varies() {
        let pf = Platform::from_speeds(vec![100.0]);
        let mut st = SpeedState::new(&pf, SpeedModel::dyn5());
        let mut rng = rng_for(2, 0);
        let _ = st.task_duration(ProcId(0), &mut rng);
        let s1 = st.speed(ProcId(0));
        let _ = st.task_duration(ProcId(0), &mut rng);
        let s2 = st.speed(ProcId(0));
        assert!(s1 != 100.0 || s2 != 100.0);
    }

    #[test]
    fn compound_walks_away_from_base() {
        let pf = Platform::from_speeds(vec![100.0]);
        let mut st = SpeedState::new(
            &pf,
            SpeedModel::Perturbed {
                pct: 0.20,
                compound: true,
            },
        );
        let mut rng = rng_for(3, 0);
        for _ in 0..5000 {
            let _ = st.task_duration(ProcId(0), &mut rng);
        }
        let s = st.speed(ProcId(0));
        // A 5000-step compounding walk essentially never stays in the
        // one-step band — that is exactly why it is not the default.
        assert!(
            !(80.0..=120.0).contains(&s),
            "compound walk stayed put: {s}"
        );
        assert!(s > 0.0);
    }

    #[test]
    fn slow_down_scales_base_and_current() {
        let mut st = SpeedState::new(&platform2(), SpeedModel::Fixed);
        st.slow_down(ProcId(1), 4.0);
        assert_eq!(st.speed(ProcId(1)), 2.0);
        assert_eq!(st.speed(ProcId(0)), 4.0, "other workers untouched");
        let mut rng = rng_for(9, 0);
        assert_eq!(st.task_duration(ProcId(1), &mut rng), 0.5);

        // Perturbed models jitter around the *degraded* base.
        let pf = Platform::from_speeds(vec![100.0]);
        let mut st = SpeedState::new(&pf, SpeedModel::dyn20());
        st.slow_down(ProcId(0), 2.0);
        let mut rng = rng_for(10, 0);
        for _ in 0..500 {
            let _ = st.task_duration(ProcId(0), &mut rng);
            let s = st.speed(ProcId(0));
            assert!((40.0..=60.0).contains(&s), "jitter band around 50, got {s}");
        }
    }

    #[test]
    fn batch_duration_positive_and_additive() {
        let pf = Platform::from_speeds(vec![50.0, 60.0]);
        let mut st = SpeedState::new(&pf, SpeedModel::dyn5());
        let mut rng = rng_for(4, 0);
        let d = st.batch_duration(ProcId(1), 100, &mut rng);
        // 100 tasks at ~60 tasks/time ± 5 %.
        assert!(d > 100.0 / 63.5 && d < 100.0 / 56.5, "got {d}");
    }
}
