//! The drawn platform: a vector of processor speeds.

use crate::distribution::SpeedDistribution;
use crate::processor::ProcId;
use rand::Rng;

/// An immutable heterogeneous platform: `p` processors with fixed base
/// speeds `s_k > 0` (tasks per unit time).
///
/// # Examples
///
/// ```
/// use hetsched_platform::{outer_lower_bound, Platform, ProcId};
///
/// let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
/// assert_eq!(pf.relative_speed(ProcId(2)), 0.6);
/// // The communication lower bound every result is normalized by:
/// let lb = outer_lower_bound(100, &pf);
/// assert!(lb > 2.0 * 100.0); // more than one processor ⇒ replication
/// ```
///
/// Relative speeds `rs_k = s_k / Σ_i s_i` drive both the analysis and the
/// lower bounds. Dynamic speed variation (the `dyn.*` scenarios) is layered
/// on top by [`SpeedState`](crate::speed::SpeedState); the `Platform` always
/// stores the *base* speeds.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    speeds: Vec<f64>,
    total: f64,
    /// Per-worker link latency (time from the last block leaving the master
    /// to the batch being usable at the worker). All zeros by default; only
    /// priced network models (`hetsched-net`) read it.
    link_latency: Vec<f64>,
    /// Per-worker inbound bandwidth caps (blocks per unit time). Empty by
    /// default, meaning the network model's uniform `worker_bw` applies;
    /// only the bounded-multiport model reads it.
    link_bandwidth: Vec<f64>,
}

impl Platform {
    /// Builds a platform from explicit speeds.
    pub fn from_speeds(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "platform needs at least one processor");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive and finite"
        );
        let total = speeds.iter().sum();
        let link_latency = vec![0.0; speeds.len()];
        Platform {
            speeds,
            total,
            link_latency,
            link_bandwidth: Vec::new(),
        }
    }

    /// Sets per-worker link latencies (must match the processor count).
    pub fn with_link_latencies(mut self, latencies: Vec<f64>) -> Self {
        assert_eq!(
            latencies.len(),
            self.speeds.len(),
            "one latency per processor"
        );
        assert!(
            latencies.iter().all(|&l| l.is_finite() && l >= 0.0),
            "latencies must be non-negative and finite"
        );
        self.link_latency = latencies;
        self
    }

    /// Sets the same link latency on every worker.
    pub fn with_uniform_link_latency(self, latency: f64) -> Self {
        let p = self.speeds.len();
        self.with_link_latencies(vec![latency; p])
    }

    /// Link latency of processor `k`.
    #[inline]
    pub fn link_latency(&self, k: ProcId) -> f64 {
        self.link_latency[k.idx()]
    }

    /// All link latencies.
    #[inline]
    pub fn link_latencies(&self) -> &[f64] {
        &self.link_latency
    }

    /// Sets per-worker inbound bandwidth caps (must match the processor
    /// count; only the bounded-multiport network model reads them).
    pub fn with_link_bandwidths(mut self, bandwidths: Vec<f64>) -> Self {
        assert_eq!(
            bandwidths.len(),
            self.speeds.len(),
            "one bandwidth per processor"
        );
        assert!(
            bandwidths.iter().all(|&b| b.is_finite() && b > 0.0),
            "bandwidths must be positive and finite"
        );
        self.link_bandwidth = bandwidths;
        self
    }

    /// Per-worker inbound bandwidth caps, if set (`None` means the network
    /// model's uniform `worker_bw` applies to every worker).
    #[inline]
    pub fn link_bandwidths(&self) -> Option<&[f64]> {
        if self.link_bandwidth.is_empty() {
            None
        } else {
            Some(&self.link_bandwidth)
        }
    }

    /// Draws `p` speeds from `dist`.
    pub fn sample<R: Rng + ?Sized>(p: usize, dist: &SpeedDistribution, rng: &mut R) -> Self {
        Self::from_speeds(dist.sample_many(p, rng))
    }

    /// A homogeneous platform of `p` unit-speed processors (used by the
    /// §3.6 speed-agnostic β approximation).
    pub fn homogeneous(p: usize) -> Self {
        Self::from_speeds(vec![1.0; p])
    }

    /// Number of processors.
    #[inline]
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// True if the platform has no processors (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Speed of processor `k`.
    #[inline]
    pub fn speed(&self, k: ProcId) -> f64 {
        self.speeds[k.idx()]
    }

    /// All speeds.
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// `Σ_i s_i`.
    #[inline]
    pub fn total_speed(&self) -> f64 {
        self.total
    }

    /// `rs_k = s_k / Σ_i s_i`.
    #[inline]
    pub fn relative_speed(&self, k: ProcId) -> f64 {
        self.speeds[k.idx()] / self.total
    }

    /// All relative speeds (sums to 1).
    pub fn relative_speeds(&self) -> Vec<f64> {
        self.speeds.iter().map(|s| s / self.total).collect()
    }

    /// `α_k = (Σ_{i≠k} s_i) / s_k`, the exponent in the paper's Lemma 1/7.
    #[inline]
    pub fn alpha(&self, k: ProcId) -> f64 {
        (self.total - self.speeds[k.idx()]) / self.speeds[k.idx()]
    }

    /// `Σ_k rs_k^e` — the power sums appearing in every analytic formula.
    pub fn rs_power_sum(&self, e: f64) -> f64 {
        self.speeds.iter().map(|s| (s / self.total).powf(e)).sum()
    }

    /// Iterates processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.speeds.len() as u32).map(ProcId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    #[test]
    fn relative_speeds_sum_to_one() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let rs = pf.relative_speeds();
        assert!((rs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((rs[0] - 0.1).abs() < 1e-12);
        assert!((rs[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn alpha_definition() {
        let pf = Platform::from_speeds(vec![2.0, 6.0]);
        // α_0 = 6/2 = 3, α_1 = 2/6.
        assert!((pf.alpha(ProcId(0)) - 3.0).abs() < 1e-12);
        assert!((pf.alpha(ProcId(1)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_relates_to_relative_speed() {
        // α_k = 1/rs_k − 1 by definition.
        let pf = Platform::sample(17, &SpeedDistribution::paper_default(), &mut rng_for(5, 5));
        for k in pf.procs() {
            let lhs = pf.alpha(k);
            let rhs = 1.0 / pf.relative_speed(k) - 1.0;
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn power_sum_exponents() {
        let pf = Platform::homogeneous(4);
        // Homogeneous p=4: Σ rs^e = 4 · (1/4)^e.
        assert!((pf.rs_power_sum(0.5) - 4.0 * 0.25f64.sqrt()).abs() < 1e-12);
        assert!((pf.rs_power_sum(1.0) - 1.0).abs() < 1e-12);
        assert!((pf.rs_power_sum(1.5) - 4.0 * 0.25f64.powf(1.5)).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_platform() {
        let pf = Platform::homogeneous(8);
        assert_eq!(pf.len(), 8);
        assert_eq!(pf.total_speed(), 8.0);
        for k in pf.procs() {
            assert_eq!(pf.relative_speed(k), 1.0 / 8.0);
        }
    }

    #[test]
    fn link_bandwidths_default_to_uniform() {
        let pf = Platform::from_speeds(vec![1.0, 2.0]);
        assert_eq!(pf.link_bandwidths(), None);
        let pf = pf.with_link_bandwidths(vec![5.0, 10.0]);
        assert_eq!(pf.link_bandwidths(), Some(&[5.0, 10.0][..]));
    }

    #[test]
    #[should_panic(expected = "one bandwidth per processor")]
    fn mismatched_link_bandwidths_rejected() {
        let _ = Platform::from_speeds(vec![1.0, 2.0]).with_link_bandwidths(vec![5.0]);
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let _ = Platform::from_speeds(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn empty_platform_rejected() {
        let _ = Platform::from_speeds(vec![]);
    }

    #[test]
    fn sample_matches_distribution_support() {
        let pf = Platform::sample(100, &SpeedDistribution::paper_default(), &mut rng_for(0, 0));
        assert_eq!(pf.len(), 100);
        assert!(pf.speeds().iter().all(|&s| (10.0..=100.0).contains(&s)));
    }
}
