//! The Fig. 8 heterogeneity scenarios.

use crate::distribution::SpeedDistribution;
use crate::speed::SpeedModel;

/// Named heterogeneity scenarios from §3.5 / Fig. 8 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Speeds `U[80, 120]`.
    Unif1,
    /// Speeds `U[50, 150]`.
    Unif2,
    /// Three processor classes: speeds drawn from `{80, 100, 150}`.
    Set3,
    /// Five processor classes: speeds drawn from `{40, 80, 100, 150, 200}`.
    Set5,
    /// Speeds `U[80, 120]`, re-jittered by ±5 % after every task.
    Dyn5,
    /// Speeds `U[80, 120]`, re-jittered by ±20 % after every task.
    Dyn20,
}

impl Scenario {
    /// All six scenarios, in the paper's plotting order.
    pub const ALL: [Scenario; 6] = [
        Scenario::Unif1,
        Scenario::Unif2,
        Scenario::Set3,
        Scenario::Set5,
        Scenario::Dyn5,
        Scenario::Dyn20,
    ];

    /// The paper's label for the scenario.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Unif1 => "unif.1",
            Scenario::Unif2 => "unif.2",
            Scenario::Set3 => "set.3",
            Scenario::Set5 => "set.5",
            Scenario::Dyn5 => "dyn.5",
            Scenario::Dyn20 => "dyn.20",
        }
    }

    /// Base-speed distribution of the scenario.
    pub fn distribution(self) -> SpeedDistribution {
        match self {
            Scenario::Unif1 | Scenario::Dyn5 | Scenario::Dyn20 => {
                SpeedDistribution::uniform(80.0, 120.0)
            }
            Scenario::Unif2 => SpeedDistribution::uniform(50.0, 150.0),
            Scenario::Set3 => SpeedDistribution::discrete([80.0, 100.0, 150.0]),
            Scenario::Set5 => SpeedDistribution::discrete([40.0, 80.0, 100.0, 150.0, 200.0]),
        }
    }

    /// Run-time speed model of the scenario.
    pub fn speed_model(self) -> SpeedModel {
        match self {
            Scenario::Dyn5 => SpeedModel::dyn5(),
            Scenario::Dyn20 => SpeedModel::dyn20(),
            _ => SpeedModel::Fixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["unif.1", "unif.2", "set.3", "set.5", "dyn.5", "dyn.20"]
        );
    }

    #[test]
    fn dyn_scenarios_share_unif1_base() {
        assert_eq!(
            Scenario::Dyn5.distribution(),
            Scenario::Unif1.distribution()
        );
        assert_eq!(
            Scenario::Dyn20.distribution(),
            Scenario::Unif1.distribution()
        );
    }

    #[test]
    fn speed_models() {
        assert_eq!(Scenario::Unif2.speed_model(), SpeedModel::Fixed);
        assert_eq!(
            Scenario::Dyn5.speed_model(),
            SpeedModel::Perturbed {
                pct: 0.05,
                compound: false
            }
        );
        assert_eq!(
            Scenario::Dyn20.speed_model(),
            SpeedModel::Perturbed {
                pct: 0.20,
                compound: false
            }
        );
    }

    #[test]
    fn set_scenarios_have_expected_classes() {
        match Scenario::Set5.distribution() {
            SpeedDistribution::DiscreteSet(v) => {
                assert_eq!(v, vec![40.0, 80.0, 100.0, 150.0, 200.0])
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
