//! Communication lower bounds used to normalize every reported volume.
//!
//! Both bounds assume a perfectly load-balanced partition of the iteration
//! space proportional to relative speeds (an optimistic, generally
//! unreachable baseline — the best known static algorithm for the outer
//! product is a 7/4-approximation of it).

use crate::platform::Platform;

/// Outer product, `n` blocks per vector: each processor optimally computes a
/// square of area `n²·rs_k`, receiving its half-perimeter
/// `2·n·√rs_k` blocks, hence
///
/// ```text
/// LB_outer = 2 n Σ_k √(rs_k)
/// ```
pub fn outer_lower_bound(n: usize, platform: &Platform) -> f64 {
    2.0 * n as f64 * platform.rs_power_sum(0.5)
}

/// Matrix multiplication, `n` blocks per dimension: each processor optimally
/// computes a cube of volume `n³·rs_k` with edge `n·rs_k^{1/3}`, receiving
/// one `n²·rs_k^{2/3}` square face of each of `A`, `B`, `C`, hence
///
/// ```text
/// LB_mm = 3 n² Σ_k rs_k^{2/3}
/// ```
pub fn matmul_lower_bound(n: usize, platform: &Platform) -> f64 {
    3.0 * (n * n) as f64 * platform.rs_power_sum(2.0 / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_single_processor() {
        // One processor: rs = 1, LB = 2n — it must receive both vectors.
        let pf = Platform::from_speeds(vec![5.0]);
        assert!((outer_lower_bound(100, &pf) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn matmul_single_processor() {
        // One processor: LB = 3n² — all of A, B, C exactly once.
        let pf = Platform::from_speeds(vec![5.0]);
        assert!((matmul_lower_bound(40, &pf) - 4800.0).abs() < 1e-9);
    }

    #[test]
    fn outer_homogeneous_scaling() {
        // p homogeneous procs: LB = 2n·√p.
        let pf = Platform::homogeneous(16);
        assert!((outer_lower_bound(10, &pf) - 2.0 * 10.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn matmul_homogeneous_scaling() {
        // p homogeneous procs: LB = 3n²·p^{1/3}.
        let pf = Platform::homogeneous(27);
        assert!((matmul_lower_bound(10, &pf) - 3.0 * 100.0 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_grow_with_processor_count() {
        // More processors ⇒ more replication is unavoidable.
        let small = Platform::homogeneous(4);
        let large = Platform::homogeneous(64);
        assert!(outer_lower_bound(100, &large) > outer_lower_bound(100, &small));
        assert!(matmul_lower_bound(100, &large) > matmul_lower_bound(100, &small));
    }

    #[test]
    fn heterogeneous_bound_below_homogeneous_same_p() {
        // Σ √rs is maximized by equal speeds (concavity), so a heterogeneous
        // platform with the same p has a *smaller* bound.
        let het = Platform::from_speeds(vec![10.0, 20.0, 70.0, 100.0]);
        let hom = Platform::homogeneous(4);
        assert!(outer_lower_bound(50, &het) < outer_lower_bound(50, &hom));
        assert!(matmul_lower_bound(50, &het) < matmul_lower_bound(50, &hom));
    }
}
