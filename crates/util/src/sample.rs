//! [`SwapList`]: a set of `u32` indices supporting O(1) uniform random
//! removal and O(1) removal by value.
//!
//! The schedulers need two operations constantly:
//!
//! 1. *"give me a uniformly random element that is still in the set"* —
//!    e.g. a random unprocessed task (`RandomOuter`, phase 2 of the 2-phase
//!    strategies) or a random block the worker does not own yet
//!    (`DynamicOuter`);
//! 2. *"this element was consumed elsewhere, drop it"* — e.g. a task got
//!    processed by a data-aware allocation and must leave the residual pool.
//!
//! Rejection sampling over a bitset degenerates when the set is nearly empty
//! (exactly the end-game regime the paper's two-phase strategies are about),
//! so we keep a dense `Vec` of members plus a position index and use
//! swap-removal for both operations.

use rand::Rng;

/// Dense index set over `0..universe` with O(1) random draw and O(1)
/// removal by value.
///
/// # Examples
///
/// ```
/// use hetsched_util::SwapList;
/// use hetsched_util::rng::rng_for;
///
/// let mut remaining = SwapList::full(100);
/// remaining.remove(42);                 // consumed elsewhere
/// let mut rng = rng_for(1, 0);
/// let task = remaining.draw(&mut rng).unwrap();
/// assert_ne!(task, 42);
/// assert_eq!(remaining.len(), 98);
/// ```
#[derive(Clone, Debug)]
pub struct SwapList {
    /// Members, in arbitrary order.
    items: Vec<u32>,
    /// `pos[v]` = index of `v` in `items`, or `NOT_PRESENT`.
    pos: Vec<u32>,
}

const NOT_PRESENT: u32 = u32::MAX;

impl SwapList {
    /// Creates the full set `{0, 1, …, universe-1}`.
    pub fn full(universe: usize) -> Self {
        assert!(
            universe < NOT_PRESENT as usize,
            "universe too large for u32"
        );
        SwapList {
            items: (0..universe as u32).collect(),
            pos: (0..universe as u32).collect(),
        }
    }

    /// Creates the empty set over `0..universe`.
    pub fn empty(universe: usize) -> Self {
        assert!(
            universe < NOT_PRESENT as usize,
            "universe too large for u32"
        );
        SwapList {
            items: Vec::new(),
            pos: vec![NOT_PRESENT; universe],
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if `v` is in the set.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != NOT_PRESENT
    }

    /// Inserts `v`; returns `true` if it was absent.
    pub fn insert(&mut self, v: u32) -> bool {
        if self.contains(v) {
            return false;
        }
        self.pos[v as usize] = self.items.len() as u32;
        self.items.push(v);
        true
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: u32) -> bool {
        let p = self.pos[v as usize];
        if p == NOT_PRESENT {
            return false;
        }
        let last = *self.items.last().expect("non-empty when pos is valid");
        self.items.swap_remove(p as usize);
        if last != v {
            self.pos[last as usize] = p;
        }
        self.pos[v as usize] = NOT_PRESENT;
        true
    }

    /// Removes and returns a uniformly random member, or `None` if empty.
    pub fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u32> {
        if self.items.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.items.len());
        let v = self.items[idx];
        self.items.swap_remove(idx);
        if let Some(&moved) = self.items.get(idx) {
            self.pos[moved as usize] = idx as u32;
        }
        self.pos[v as usize] = NOT_PRESENT;
        Some(v)
    }

    /// Returns (without removing) a uniformly random member.
    pub fn peek_random<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items[rng.gen_range(0..self.items.len())])
        }
    }

    /// Iterates over members in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_contains_everything() {
        let s = SwapList::full(10);
        assert_eq!(s.len(), 10);
        assert!((0..10).all(|v| s.contains(v)));
    }

    #[test]
    fn remove_by_value() {
        let mut s = SwapList::full(5);
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 4);
        let mut rest: Vec<u32> = s.iter().collect();
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 1, 3, 4]);
    }

    #[test]
    fn draw_exhausts_all_members_exactly_once() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = SwapList::full(100);
        let mut seen = [false; 100];
        while let Some(v) = s.draw(&mut rng) {
            assert!(!seen[v as usize], "drew {} twice", v);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(s.is_empty());
    }

    #[test]
    fn insert_after_remove() {
        let mut s = SwapList::empty(4);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(s.insert(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn interleaved_draw_and_remove_preserve_consistency() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = SwapList::full(50);
        // Remove evens by value, draw the rest randomly.
        for v in (0..50).step_by(2) {
            assert!(s.remove(v));
        }
        let mut drawn: Vec<u32> = Vec::new();
        while let Some(v) = s.draw(&mut rng) {
            drawn.push(v);
        }
        drawn.sort_unstable();
        let odds: Vec<u32> = (1..50).step_by(2).collect();
        assert_eq!(drawn, odds);
    }

    #[test]
    fn draw_is_roughly_uniform() {
        // First draw from {0..10} repeated many times: each value should
        // appear with frequency ≈ 1/10.
        let mut counts = [0usize; 10];
        for seed in 0..4000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = SwapList::full(10);
            counts[s.draw(&mut rng).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 400.0).abs() < 120.0,
                "first-draw frequency far from uniform: {:?}",
                counts
            );
        }
    }
}
