//! Shared infrastructure for the `hetsched` workspace.
//!
//! This crate deliberately has no dependency on the rest of the workspace and
//! provides the small, hot data structures the simulators are built from:
//!
//! * [`bitset::FixedBitSet`] — fixed-capacity bitset backed by `u64` words;
//! * [`grid::BitGrid`] / [`grid::BitCube`] — 2-D/3-D bitsets used to track
//!   processed tasks and per-worker block ownership;
//! * [`sample::SwapList`] — index set with O(1) uniform random removal and
//!   O(1) removal by value, used to sample "a task that is still unprocessed"
//!   or "a block this worker does not know yet" without rejection loops;
//! * [`float::OrderedF64`] — totally ordered finite `f64` for event queues;
//! * [`stats::OnlineStats`] — Welford accumulator for trial aggregation;
//! * [`rng`] — SplitMix64 seed derivation so every (experiment, trial)
//!   pair gets an independent, reproducible stream;
//! * [`csv`] — minimal CSV emission for the figure-regeneration binaries.

pub mod bitset;
pub mod csv;
pub mod float;
pub mod grid;
pub mod owned;
pub mod rng;
pub mod sample;
pub mod stats;

pub use bitset::FixedBitSet;
pub use float::OrderedF64;
pub use grid::{BitCube, BitGrid};
pub use owned::OwnedSet;
pub use sample::SwapList;
pub use stats::OnlineStats;
