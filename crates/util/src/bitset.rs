//! A fixed-capacity bitset backed by `u64` words.
//!
//! The simulators track task completion and per-worker block ownership with
//! bitsets whose capacity is known up front (`n`, `n²` or `n³` bits), so a
//! fixed-size structure with no growth logic is both simpler and faster than
//! a general-purpose one.

/// Fixed-capacity bitset. Bits are indexed from `0` to `len() - 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

const WORD_BITS: usize = 64;

impl FixedBitSet {
    /// Creates a bitset with `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
            ones: 0,
        }
    }

    /// Number of bits in the set (the fixed capacity, not the popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the capacity is zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Number of clear bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    #[inline]
    fn index(&self, bit: usize) -> (usize, u64) {
        debug_assert!(bit < self.len, "bit {} out of range {}", bit, self.len);
        (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
    }

    /// Returns the value of `bit`.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        let (w, m) = self.index(bit);
        self.words[w] & m != 0
    }

    /// Sets `bit`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, m) = self.index(bit);
        let was_clear = self.words[w] & m == 0;
        self.words[w] |= m;
        self.ones += was_clear as usize;
        was_clear
    }

    /// Clears `bit`; returns `true` if it was previously set.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        let (w, m) = self.index(bit);
        let was_set = self.words[w] & m != 0;
        self.words[w] &= !m;
        self.ones -= was_set as usize;
        was_set
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Sets every bit.
    pub fn fill(&mut self) {
        self.words.fill(!0);
        self.trim_tail();
        self.ones = self.len;
    }

    /// Zeroes the bits past `len` in the last word so popcounts stay honest.
    fn trim_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Index of the first clear bit, if any.
    pub fn first_zero(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != !0u64 {
                let bit = i * WORD_BITS + (!w).trailing_zeros() as usize;
                if bit < self.len {
                    return Some(bit);
                }
            }
        }
        None
    }
}

/// Iterator over set bits of a [`FixedBitSet`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bs = FixedBitSet::new(130);
        assert_eq!(bs.len(), 130);
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.count_zeros(), 130);
        assert!((0..130).all(|i| !bs.contains(i)));
    }

    #[test]
    fn insert_and_contains() {
        let mut bs = FixedBitSet::new(100);
        assert!(bs.insert(0));
        assert!(bs.insert(63));
        assert!(bs.insert(64));
        assert!(bs.insert(99));
        assert!(!bs.insert(63), "double insert reports already-set");
        assert_eq!(bs.count_ones(), 4);
        assert!(bs.contains(0) && bs.contains(63) && bs.contains(64) && bs.contains(99));
        assert!(!bs.contains(1));
    }

    #[test]
    fn remove_round_trip() {
        let mut bs = FixedBitSet::new(70);
        bs.insert(65);
        assert!(bs.remove(65));
        assert!(!bs.remove(65));
        assert_eq!(bs.count_ones(), 0);
        assert!(!bs.contains(65));
    }

    #[test]
    fn iter_ones_matches_inserts() {
        let mut bs = FixedBitSet::new(200);
        let bits = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &b in &bits {
            bs.insert(b);
        }
        let seen: Vec<usize> = bs.iter_ones().collect();
        assert_eq!(seen, bits);
    }

    #[test]
    fn fill_and_clear() {
        let mut bs = FixedBitSet::new(67);
        bs.fill();
        assert_eq!(bs.count_ones(), 67);
        assert!(bs.contains(66));
        assert_eq!(bs.first_zero(), None);
        bs.clear();
        assert_eq!(bs.count_ones(), 0);
        assert_eq!(bs.first_zero(), Some(0));
    }

    #[test]
    fn first_zero_skips_full_words() {
        let mut bs = FixedBitSet::new(130);
        for i in 0..128 {
            bs.insert(i);
        }
        assert_eq!(bs.first_zero(), Some(128));
        bs.insert(128);
        bs.insert(129);
        assert_eq!(bs.first_zero(), None);
    }

    #[test]
    fn exact_word_boundary() {
        // len = 64: the tail-trimming logic must not touch a full word.
        let mut bs = FixedBitSet::new(64);
        bs.fill();
        assert_eq!(bs.count_ones(), 64);
        assert_eq!(bs.first_zero(), None);
        assert!(bs.contains(63));
        assert_eq!(bs.iter_ones().count(), 64);
    }

    #[test]
    fn single_bit_set() {
        let mut bs = FixedBitSet::new(1);
        assert_eq!(bs.first_zero(), Some(0));
        bs.insert(0);
        assert_eq!(bs.count_ones(), 1);
        assert_eq!(bs.first_zero(), None);
    }

    #[test]
    fn empty_bitset() {
        let bs = FixedBitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.iter_ones().count(), 0);
        assert_eq!(bs.first_zero(), None);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_range_panics_in_debug() {
        let bs = FixedBitSet::new(10);
        let _ = bs.contains(10);
    }
}
