//! Minimal CSV emission (RFC 4180 quoting) for the figure binaries.
//!
//! The approved dependency list has no CSV crate; the figure regeneration
//! binaries only *write* simple numeric tables, so a ~60-line writer is all
//! we need.

use std::fmt::Write as _;
use std::io::{self, Write};

/// Streaming CSV writer over any `io::Write`.
pub struct CsvWriter<W: Write> {
    out: W,
    row: String,
    first_in_row: bool,
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a sink.
    pub fn new(out: W) -> Self {
        CsvWriter {
            out,
            row: String::new(),
            first_in_row: true,
        }
    }

    /// Appends one field (quoted if needed) to the current row.
    pub fn field(&mut self, value: &str) -> &mut Self {
        if !self.first_in_row {
            self.row.push(',');
        }
        self.first_in_row = false;
        if value.contains(['"', ',', '\n', '\r']) {
            self.row.push('"');
            for ch in value.chars() {
                if ch == '"' {
                    self.row.push('"');
                }
                self.row.push(ch);
            }
            self.row.push('"');
        } else {
            self.row.push_str(value);
        }
        self
    }

    /// Appends a float field formatted with enough digits to round-trip
    /// typical simulation values.
    pub fn float(&mut self, value: f64) -> &mut Self {
        let mut s = String::new();
        write!(s, "{value:.6}").expect("infallible");
        self.field(&s)
    }

    /// Appends an integer field.
    pub fn int(&mut self, value: i64) -> &mut Self {
        let mut s = String::new();
        write!(s, "{value}").expect("infallible");
        self.field(&s)
    }

    /// Terminates the current row.
    pub fn end_row(&mut self) -> io::Result<()> {
        self.row.push('\n');
        self.out.write_all(self.row.as_bytes())?;
        self.row.clear();
        self.first_in_row = true;
        Ok(())
    }

    /// Writes a full row of string fields.
    pub fn row(&mut self, fields: &[&str]) -> io::Result<()> {
        for f in fields {
            self.field(f);
        }
        self.end_row()
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Renders rows of `(label, values)` to a CSV string. Convenience for tests
/// and small tables.
pub fn to_string(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut buf = Vec::new();
    {
        let mut w = CsvWriter::new(&mut buf);
        w.row(header).expect("vec write");
        for r in rows {
            let fields: Vec<&str> = r.iter().map(|s| s.as_str()).collect();
            w.row(&fields).expect("vec write");
        }
    }
    String::from_utf8(buf).expect("csv is utf8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields() {
        let s = to_string(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn quoting() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf);
            w.field("he,llo").field("say \"hi\"").field("line\nbreak");
            w.end_row().unwrap();
        }
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "\"he,llo\",\"say \"\"hi\"\"\",\"line\nbreak\"\n"
        );
    }

    #[test]
    fn float_and_int_formatting() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf);
            w.float(1.5).int(-3);
            w.end_row().unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "1.500000,-3\n");
    }

    #[test]
    fn multiple_rows_reset_state() {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf);
            w.row(&["x"]).unwrap();
            w.row(&["y", "z"]).unwrap();
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "x\ny,z\n");
    }
}
