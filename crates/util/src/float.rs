//! Totally ordered finite floats for event-queue keys.

use std::cmp::Ordering;

/// A finite `f64` with a total order.
///
/// The simulation event queue needs `Ord` keys; simulated times are always
/// finite, so instead of dragging `f64: PartialOrd` unwraps through the
/// engine we wrap once here. Construction asserts finiteness in debug
/// builds (a NaN time is always a bug upstream).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a finite value.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(v.is_finite(), "OrderedF64 requires a finite value, got {v}");
        OrderedF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite values: partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("finite by invariant")
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrderedF64::new(v)
    }
}

impl From<OrderedF64> for f64 {
    #[inline]
    fn from(v: OrderedF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_f64() {
        let a = OrderedF64::new(1.0);
        let b = OrderedF64::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a, OrderedF64::new(1.0));
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sort_works() {
        let mut v = vec![
            OrderedF64::new(3.5),
            OrderedF64::new(-1.0),
            OrderedF64::new(0.0),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(raw, vec![-1.0, 0.0, 3.5]);
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(OrderedF64::new(0.0), OrderedF64::new(-0.0));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_panics_in_debug() {
        let _ = OrderedF64::new(f64::NAN);
    }
}
