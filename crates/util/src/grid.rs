//! 2-D and 3-D bit grids over [`FixedBitSet`].
//!
//! `BitGrid` tracks outer-product task completion (`n × n`) and per-worker
//! block ownership for matrix blocks (`A[i,k]`, `B[k,j]`, `C[i,j]`).
//! `BitCube` tracks matmul task completion (`n × n × n`).

use crate::bitset::FixedBitSet;

/// A 2-D grid of bits with row-major linearization.
#[derive(Clone, Debug)]
pub struct BitGrid {
    bits: FixedBitSet,
    rows: usize,
    cols: usize,
}

impl BitGrid {
    /// Creates a `rows × cols` grid, all clear.
    pub fn new(rows: usize, cols: usize) -> Self {
        BitGrid {
            bits: FixedBitSet::new(rows * cols),
            rows,
            cols,
        }
    }

    /// Square `n × n` grid.
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Linear index of `(r, c)`.
    #[inline]
    pub fn linear(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Inverse of [`linear`](Self::linear).
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.cols, idx % self.cols)
    }

    #[inline]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        self.bits.contains(self.linear(r, c))
    }

    /// Sets `(r, c)`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, r: usize, c: usize) -> bool {
        let idx = self.linear(r, c);
        self.bits.insert(idx)
    }

    /// Clears `(r, c)`; returns `true` if it was previously set. Used when a
    /// worker failure returns an already-allocated task to the pool.
    #[inline]
    pub fn remove(&mut self, r: usize, c: usize) -> bool {
        let idx = self.linear(r, c);
        self.bits.remove(idx)
    }

    #[inline]
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    #[inline]
    pub fn total(&self) -> usize {
        self.rows * self.cols
    }
}

/// A 3-D cuboid of bits with `(i, j, k)`-major linearization (`i` slowest,
/// `k` fastest — lexicographic, which the sorted strategies rely on).
#[derive(Clone, Debug)]
pub struct BitCube {
    bits: FixedBitSet,
    ni: usize,
    nj: usize,
    nk: usize,
}

impl BitCube {
    /// Creates an `n × n × n` cube, all clear.
    pub fn new(n: usize) -> Self {
        Self::cuboid(n, n, n)
    }

    /// Creates an `ni × nj × nk` cuboid, all clear — a rectangular shard of
    /// the matmul task cube.
    pub fn cuboid(ni: usize, nj: usize, nk: usize) -> Self {
        BitCube {
            bits: FixedBitSet::new(ni * nj * nk),
            ni,
            nj,
            nk,
        }
    }

    /// Extent along `i` (for a cube, the side length `n`).
    #[inline]
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Extent along `j`.
    #[inline]
    pub fn nj(&self) -> usize {
        self.nj
    }

    /// Extent along `k`.
    #[inline]
    pub fn nk(&self) -> usize {
        self.nk
    }

    /// Linear index of `(i, j, k)`.
    #[inline]
    pub fn linear(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.ni && j < self.nj && k < self.nk);
        (i * self.nj + j) * self.nk + k
    }

    /// Inverse of [`linear`](Self::linear).
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let k = idx % self.nk;
        let rest = idx / self.nk;
        (rest / self.nj, rest % self.nj, k)
    }

    #[inline]
    pub fn contains(&self, i: usize, j: usize, k: usize) -> bool {
        self.bits.contains(self.linear(i, j, k))
    }

    /// Sets `(i, j, k)`; returns `true` if it was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize, j: usize, k: usize) -> bool {
        let idx = self.linear(i, j, k);
        self.bits.insert(idx)
    }

    /// Clears `(i, j, k)`; returns `true` if it was previously set. Used when
    /// a worker failure returns an already-allocated task to the pool.
    #[inline]
    pub fn remove(&mut self, i: usize, j: usize, k: usize) -> bool {
        let idx = self.linear(i, j, k);
        self.bits.remove(idx)
    }

    #[inline]
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    #[inline]
    pub fn total(&self) -> usize {
        self.ni * self.nj * self.nk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_linear_coords_round_trip() {
        let g = BitGrid::new(7, 11);
        for r in 0..7 {
            for c in 0..11 {
                assert_eq!(g.coords(g.linear(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn grid_insert_contains() {
        let mut g = BitGrid::square(5);
        assert!(g.insert(2, 3));
        assert!(!g.insert(2, 3));
        assert!(g.contains(2, 3));
        assert!(!g.contains(3, 2), "not symmetric");
        assert_eq!(g.count_ones(), 1);
        assert_eq!(g.total(), 25);
    }

    #[test]
    fn grid_remove_reverts_insert() {
        let mut g = BitGrid::square(4);
        assert!(!g.remove(1, 1), "removing a clear bit is a no-op");
        assert!(g.insert(1, 1));
        assert!(g.remove(1, 1));
        assert!(!g.contains(1, 1));
        assert_eq!(g.count_ones(), 0);
    }

    #[test]
    fn cube_remove_reverts_insert() {
        let mut c = BitCube::new(3);
        assert!(!c.remove(0, 1, 2));
        assert!(c.insert(0, 1, 2));
        assert!(c.remove(0, 1, 2));
        assert!(!c.contains(0, 1, 2));
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn cube_linear_coords_round_trip() {
        let c = BitCube::new(6);
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    assert_eq!(c.coords(c.linear(i, j, k)), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn cube_insert_contains() {
        let mut c = BitCube::new(4);
        assert!(c.insert(1, 2, 3));
        assert!(!c.insert(1, 2, 3));
        assert!(c.contains(1, 2, 3));
        assert!(!c.contains(3, 2, 1));
        assert_eq!(c.count_ones(), 1);
        assert_eq!(c.total(), 64);
    }

    #[test]
    fn cuboid_linear_coords_round_trip() {
        let c = BitCube::cuboid(3, 5, 7);
        assert_eq!(c.total(), 105);
        assert_eq!((c.ni(), c.nj(), c.nk()), (3, 5, 7));
        for i in 0..3 {
            for j in 0..5 {
                for k in 0..7 {
                    assert_eq!(c.coords(c.linear(i, j, k)), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn cuboid_linearization_is_lexicographic() {
        let c = BitCube::cuboid(2, 3, 4);
        let mut prev = None;
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let idx = c.linear(i, j, k);
                    if let Some(p) = prev {
                        assert_eq!(idx, p + 1);
                    }
                    prev = Some(idx);
                }
            }
        }
    }

    #[test]
    fn cube_linearization_is_lexicographic() {
        // Sorted strategies rely on the linear order being lexicographic in
        // (i, j, k).
        let c = BitCube::new(3);
        let mut prev = None;
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    let idx = c.linear(i, j, k);
                    if let Some(p) = prev {
                        assert_eq!(idx, p + 1);
                    }
                    prev = Some(idx);
                }
            }
        }
    }
}
