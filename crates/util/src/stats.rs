//! Online statistics (Welford) for aggregating simulation trials.

/// Streaming mean / variance / extrema accumulator.
///
/// Used to aggregate the normalized communication volume over the 10–50
/// trials each figure point averages, without storing the samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    ///
    /// NaN samples are rejected: one NaN would silently poison the mean,
    /// variance and extrema of the whole accumulation. Debug builds panic
    /// (the caller has a bug upstream — a division by a zero lower bound,
    /// usually); release builds skip the sample, so `count()` tells the
    /// truth about how many values actually entered the statistics.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "OnlineStats::push(NaN): upstream bug");
        if x.is_nan() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Convenience: accumulate a slice.
pub fn summarize(samples: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in samples {
        s.push(x);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn mean_and_variance_known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0));
        // Unbiased variance of this classic dataset is 32/7.
        assert!(close(s.variance(), 32.0 / 7.0));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = OnlineStats::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert!(e.min().is_nan());

        let s = summarize(&[3.25]);
        assert!(close(s.mean(), 3.25));
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = summarize(&data);
        let mut left = summarize(&data[..37]);
        let right = summarize(&data[37..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(close(left.mean(), whole.mean()));
        assert!(close(left.variance(), whole.variance()));
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "OnlineStats::push(NaN)"))]
    fn nan_panics_in_debug_builds() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        // Release builds fall through to here: NaN must have been skipped,
        // not absorbed.
        assert_eq!(s.count(), 0);
        s.push(1.5);
        assert_eq!(s.count(), 1);
        assert!(close(s.mean(), 1.5));
        assert!(!s.std_dev().is_nan());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = summarize(&[1.0, 2.0, 3.0]);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&OnlineStats::new());
        assert_eq!((a.mean(), a.variance(), a.count()), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 3);
        assert!(close(e.mean(), 2.0));
    }
}
