//! [`OwnedSet`]: which indices of a dimension an agent holds, with an O(1)
//! sampler over the indices it does *not* hold.
//!
//! Both kernels' data-aware strategies repeatedly "choose an index not in
//! the worker's set, uniformly at random, and add it" — this is that
//! structure. It combines a membership bitset, a dense list of members (for
//! iterating the known row/column when allocating tasks) and a [`SwapList`]
//! of non-members (for the uniform draw).

use crate::bitset::FixedBitSet;
use crate::sample::SwapList;
use rand::Rng;

/// A growing set of owned indices over `0..n`.
#[derive(Clone, Debug)]
pub struct OwnedSet {
    owned: FixedBitSet,
    owned_list: Vec<u32>,
    unknown: SwapList,
}

impl OwnedSet {
    /// Empty set over `0..n`.
    pub fn new(n: usize) -> Self {
        OwnedSet {
            owned: FixedBitSet::new(n),
            owned_list: Vec::new(),
            unknown: SwapList::full(n),
        }
    }

    /// True if `i` is owned.
    #[inline]
    pub fn owns(&self, i: usize) -> bool {
        self.owned.contains(i)
    }

    /// Number of owned indices.
    #[inline]
    pub fn count(&self) -> usize {
        self.owned_list.len()
    }

    /// Number of not-owned indices.
    #[inline]
    pub fn unknown_count(&self) -> usize {
        self.unknown.len()
    }

    /// Owned indices, in acquisition order (the newest is last).
    #[inline]
    pub fn owned_list(&self) -> &[u32] {
        &self.owned_list
    }

    /// Adds `i`; returns `true` if it was not owned before.
    pub fn acquire(&mut self, i: usize) -> bool {
        if self.owned.insert(i) {
            self.owned_list.push(i as u32);
            self.unknown.remove(i as u32);
            true
        } else {
            false
        }
    }

    /// Draws a uniformly random not-owned index and acquires it.
    pub fn acquire_random<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<usize> {
        let i = self.unknown.draw(rng)? as usize;
        let fresh = self.owned.insert(i);
        debug_assert!(fresh);
        self.owned_list.push(i as u32);
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_for;

    #[test]
    fn acquire_tracks_ownership() {
        let mut v = OwnedSet::new(10);
        assert!(!v.owns(4));
        assert!(v.acquire(4));
        assert!(!v.acquire(4), "second acquire is free");
        assert!(v.owns(4));
        assert_eq!(v.count(), 1);
        assert_eq!(v.unknown_count(), 9);
        assert_eq!(v.owned_list(), &[4]);
    }

    #[test]
    fn acquire_random_never_repeats() {
        let mut v = OwnedSet::new(20);
        let mut rng = rng_for(0, 0);
        let mut seen = std::collections::HashSet::new();
        while let Some(i) = v.acquire_random(&mut rng) {
            assert!(seen.insert(i), "index {i} acquired twice");
        }
        assert_eq!(seen.len(), 20);
        assert_eq!(v.count(), 20);
        assert_eq!(v.unknown_count(), 0);
    }

    #[test]
    fn acquire_random_skips_explicitly_acquired() {
        let mut v = OwnedSet::new(5);
        let mut rng = rng_for(1, 0);
        v.acquire(2);
        let mut drawn = Vec::new();
        while let Some(i) = v.acquire_random(&mut rng) {
            drawn.push(i);
        }
        drawn.sort_unstable();
        assert_eq!(drawn, vec![0, 1, 3, 4]);
    }

    #[test]
    fn newest_member_is_last_in_list() {
        let mut v = OwnedSet::new(6);
        let mut rng = rng_for(2, 0);
        v.acquire(3);
        let i = v.acquire_random(&mut rng).unwrap();
        assert_eq!(*v.owned_list().last().unwrap() as usize, i);
    }
}
