//! Deterministic seed derivation.
//!
//! Every experiment takes a single master `u64` seed; each trial, each
//! processor-speed draw, and each strategy's internal RNG derive their own
//! independent stream from it. SplitMix64 is the standard mixer for this:
//! consecutive inputs produce statistically independent outputs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: one round of mixing.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed for stream `stream` of master `seed`.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

/// A reproducible RNG for (master seed, stream id).
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_eq!(splitmix64(0), splitmix64(0));
    }

    #[test]
    fn distinct_streams_differ() {
        let a = derive_seed(99, 0);
        let b = derive_seed(99, 1);
        let c = derive_seed(100, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn rng_for_reproducible() {
        let mut r1 = rng_for(7, 3);
        let mut r2 = rng_for(7, 3);
        for _ in 0..10 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0x1234_5678);
        let y = splitmix64(0x1234_5679);
        let flipped = (x ^ y).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
