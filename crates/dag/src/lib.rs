//! Dependency-aware dynamic scheduling — the paper's §5 future work,
//! built out.
//!
//! The paper closes with: *"it would be very useful to extend the analysis
//! to applications involving both data and precedence dependencies.
//! Extending this work to regular dense linear algebra kernels such as
//! Cholesky or QR factorizations would be a promising first step."* This
//! crate is that first step on the systems side:
//!
//! * [`graph::TaskGraph`] — a versioned-data task DAG: each task reads a
//!   set of tile versions, writes one tile (bumping its version), and
//!   carries a flop weight. Upward ranks (critical-path lengths) are
//!   precomputed for priority policies.
//! * [`cholesky`] / [`qr`] — generators for the tiled right-looking
//!   Cholesky factorization (POTRF/TRSM/SYRK/GEMM) and the tiled QR
//!   factorization (GEQRT/ORMQR/TSQRT/TSMQR).
//! * [`engine`] — a demand-driven DAG simulator in the same spirit as
//!   `hetsched-sim`: workers request on completion, communication is
//!   counted (one block per input tile version the worker does not hold)
//!   but never delays computation (the paper's overlap assumption), and
//!   workers *park* when no task is ready instead of retiring.
//! * [`policy`] — allocation policies for the ready pool:
//!   [`policy::Policy::Random`] (the baseline),
//!   [`policy::Policy::DataAware`] (minimize blocks to ship — the paper's
//!   locality idea transplanted to DAGs), and
//!   [`policy::Policy::DataAwareCp`] (same, tie-broken by critical-path
//!   rank, HEFT-style).
//!
//! The headline finding mirrors the paper's: data-aware allocation cuts
//! communication roughly in half with no makespan penalty (the Cholesky
//! ready-pool is wide enough that affinity does not starve the critical
//! path); the critical-path tie-break additionally trims communication at
//! large worker counts. Measured in `hetsched-core`'s `extD` experiment.

pub mod cholesky;
pub mod engine;
pub mod graph;
pub mod policy;
pub mod qr;

pub use cholesky::cholesky_graph;
pub use engine::{simulate, DagReport};
pub use graph::{TaskGraph, TaskId, TaskNode, TileId};
pub use policy::Policy;
pub use qr::qr_graph;
