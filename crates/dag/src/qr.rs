//! Tiled QR factorization DAG (flat-tree / sequential-elimination variant).
//!
//! For a square matrix of `t × t` tiles, step `k` eliminates the tiles
//! below the diagonal of panel `k`:
//!
//! ```text
//! GEQRT(k):      A[k][k] ← QR(A[k][k])                       (V, R in place)
//! ORMQR(k,j):    A[k][j] ← Qᵀ(k,k)·A[k][j]                    (j > k)
//! TSQRT(i,k):    [R; A[i][k]] ← QR of stacked tiles           (i > k)
//! TSMQR(i,j,k):  update A[k][j], A[i][j] with Q(i,k)          (i > k, j > k)
//! ```
//!
//! The TSQRT chain is sequential in `i` (each folds into the same `R` in
//! `A[k][k]`), and `TSMQR(i,j,k)` updates the running row tile `A[k][j]`
//! as well as `A[i][j]` — a two-tile write, captured by the builder's
//! `task_multi`, whose shared version chain serializes the updates over
//! `i` exactly like the real kernel. Weights in `b³`-flop units: GEQRT `4/3`, ORMQR `2`, TSQRT `2`,
//! TSMQR `4` (the standard tiled-QR flop ratios; their relative ordering
//! is what matters for scheduling).

use crate::graph::{GraphBuilder, TaskGraph, TileId};

/// Weight of GEQRT in `b³`-flop units.
pub const W_GEQRT: f64 = 4.0 / 3.0;
/// Weight of ORMQR.
pub const W_ORMQR: f64 = 2.0;
/// Weight of TSQRT.
pub const W_TSQRT: f64 = 2.0;
/// Weight of TSMQR.
pub const W_TSMQR: f64 = 4.0;

/// Linear id of tile `(r, c)` in the full square.
pub fn tile_id(t: usize, r: usize, c: usize) -> TileId {
    debug_assert!(r < t && c < t);
    (r * t + c) as TileId
}

/// Builds the tiled QR DAG for `t × t` tiles.
pub fn qr_graph(t: usize) -> TaskGraph {
    assert!(t >= 1, "need at least one tile");
    let mut b = GraphBuilder::new(t * t);
    for k in 0..t {
        b.task("GEQRT", &[], tile_id(t, k, k), true, W_GEQRT);
        for j in k + 1..t {
            b.task(
                "ORMQR",
                &[tile_id(t, k, k)],
                tile_id(t, k, j),
                true,
                W_ORMQR,
            );
        }
        for i in k + 1..t {
            // Folds A[i][k] into the panel's R: reads/writes both tiles;
            // model as writing the diagonal tile (the R carrier) while
            // reading A[i][k]'s current version, then writing A[i][k]'s V.
            b.task(
                "TSQRT",
                &[tile_id(t, i, k)],
                tile_id(t, k, k),
                true,
                W_TSQRT,
            );
            for j in k + 1..t {
                // One task updating both the running row tile A[k][j] and
                // the eliminated tile A[i][j], reading the reflectors in
                // A[i][k]. The shared A[k][j] version chain serializes the
                // updates over i, exactly like the real kernel.
                b.task_multi(
                    "TSMQR",
                    &[tile_id(t, i, k)],
                    &[tile_id(t, k, j), tile_id(t, i, j)],
                    true,
                    W_TSMQR,
                );
            }
        }
    }
    b.build()
}

/// Task count for the generator above.
pub fn task_count(t: usize) -> usize {
    let mut n = 0;
    for k in 0..t {
        n += 1; // GEQRT
        n += t - k - 1; // ORMQR
        n += t - k - 1; // TSQRT
        n += (t - k - 1) * (t - k - 1); // TSMQR
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_match() {
        for t in 1..=6 {
            assert_eq!(qr_graph(t).len(), task_count(t), "t = {t}");
        }
    }

    #[test]
    fn single_tile_is_one_geqrt() {
        let g = qr_graph(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.task(0).kind, "GEQRT");
    }

    #[test]
    fn kind_census() {
        let t = 4;
        let g = qr_graph(t);
        let count = |k: &str| g.tasks().iter().filter(|n| n.kind == k).count();
        assert_eq!(count("GEQRT"), t);
        assert_eq!(count("ORMQR"), t * (t - 1) / 2);
        assert_eq!(count("TSQRT"), t * (t - 1) / 2);
    }

    #[test]
    fn first_geqrt_is_the_only_source() {
        let g = qr_graph(4);
        let indeg = g.indegrees();
        let sources: Vec<usize> = (0..g.len()).filter(|&i| indeg[i] == 0).collect();
        assert_eq!(sources, vec![0]);
    }

    #[test]
    fn qr_has_longer_critical_path_than_cholesky() {
        // Same tile count; QR's serial TSQRT chain makes it strictly more
        // sequential — the scheduling problem the generators exist to pose.
        for t in 2..=6 {
            let qr = qr_graph(t);
            let ch = crate::cholesky::cholesky_graph(t);
            assert!(
                qr.critical_path() > ch.critical_path(),
                "t = {t}: QR CP {} vs Cholesky CP {}",
                qr.critical_path(),
                ch.critical_path()
            );
        }
    }

    #[test]
    fn tsqrt_chain_is_serialized() {
        // All TSQRT(·, 0) tasks write tile (0,0): versions must chain.
        let t = 4;
        let g = qr_graph(t);
        let tsqrts: Vec<u32> = g
            .tasks()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == "TSQRT" && n.primary_write() == tile_id(t, 0, 0))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(tsqrts.len(), t - 1);
        for w in tsqrts.windows(2) {
            assert!(
                g.successors(w[0]).contains(&w[1]),
                "TSQRT chain broken between {} and {}",
                w[0],
                w[1]
            );
        }
    }
}
