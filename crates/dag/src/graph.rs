//! Versioned-data task graphs.
//!
//! A task reads a set of *tile versions* and writes one tile, bumping its
//! version. Dependencies are exactly "my inputs' producing tasks":
//! read-after-write through the version chain, plus write-after-write via
//! reading the previous version of the written tile. This models dense
//! factorizations faithfully: immutable versions (e.g. a factored diagonal
//! block) can be cached by many workers at once, while a tile being
//! updated has a single current owner.

/// Index of a tile (data block).
pub type TileId = u32;
/// Index of a task.
pub type TaskId = u32;

/// A specific state of a tile: produced by the `version`-th write.
/// `version == 0` is the initial (master-resident) state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TileVersion {
    pub tile: TileId,
    pub version: u32,
}

/// One task of the DAG.
#[derive(Clone, Debug)]
pub struct TaskNode {
    /// Human-readable kind tag (`"POTRF"`, `"GEMM"`, …) for reports.
    pub kind: &'static str,
    /// Tile versions this task reads (written tiles' previous versions are
    /// included here when the update is read-modify-write).
    pub reads: Vec<TileVersion>,
    /// The tile versions this task produces (most kernels write one tile;
    /// tiled-QR's TSMQR updates two).
    pub writes: Vec<TileVersion>,
    /// Computation weight (normalized flops; execution time is
    /// `weight / speed`).
    pub weight: f64,
}

impl TaskNode {
    /// The primary written tile (first write).
    pub fn primary_write(&self) -> TileId {
        self.writes[0].tile
    }
}

/// An immutable task DAG with version bookkeeping and precomputed
/// dependency structure.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    /// Number of tiles.
    tiles: usize,
    /// `producer[(tile, version)]` — which task produced each non-initial
    /// version, addressed via a dense map built at construction.
    successors: Vec<Vec<TaskId>>,
    predecessors_count: Vec<u32>,
    /// Upward rank: longest weight-sum path from the task to any sink,
    /// inclusive of the task itself (critical-path priority).
    ranks: Vec<f64>,
}

/// Incremental builder used by the kernel generators.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    tasks: Vec<TaskNode>,
    /// Current version per tile.
    version: Vec<u32>,
    /// Producer of the *current* version per tile (None = initial data).
    producer: Vec<Option<TaskId>>,
}

impl GraphBuilder {
    /// Builder over `tiles` tiles, all at version 0 (initial data on the
    /// master).
    pub fn new(tiles: usize) -> Self {
        GraphBuilder {
            tasks: Vec::new(),
            version: vec![0; tiles],
            producer: vec![None; tiles],
        }
    }

    /// Current version of `tile`.
    pub fn current(&self, tile: TileId) -> TileVersion {
        TileVersion {
            tile,
            version: self.version[tile as usize],
        }
    }

    /// Adds a task reading the *current* versions of `reads` and updating
    /// the single tile `writes` (whose current version is implicitly read
    /// too when `read_modify_write` is set). Returns the task id.
    pub fn task(
        &mut self,
        kind: &'static str,
        reads: &[TileId],
        writes: TileId,
        read_modify_write: bool,
        weight: f64,
    ) -> TaskId {
        self.task_multi(kind, reads, &[writes], read_modify_write, weight)
    }

    /// Adds a task updating several tiles at once (e.g. tiled-QR's TSMQR,
    /// which rewrites both the running row tile and the eliminated tile).
    pub fn task_multi(
        &mut self,
        kind: &'static str,
        reads: &[TileId],
        writes: &[TileId],
        read_modify_write: bool,
        weight: f64,
    ) -> TaskId {
        assert!(!writes.is_empty(), "a task must write something");
        let id = self.tasks.len() as TaskId;
        let mut read_versions: Vec<TileVersion> = reads.iter().map(|&t| self.current(t)).collect();
        if read_modify_write {
            for &w in writes {
                read_versions.push(self.current(w));
            }
        }
        let mut write_versions = Vec::with_capacity(writes.len());
        for &w in writes {
            let out_version = self.version[w as usize] + 1;
            self.version[w as usize] = out_version;
            self.producer[w as usize] = Some(id);
            write_versions.push(TileVersion {
                tile: w,
                version: out_version,
            });
        }
        self.tasks.push(TaskNode {
            kind,
            reads: read_versions,
            writes: write_versions,
            weight,
        });
        id
    }

    /// Finalizes into a [`TaskGraph`].
    pub fn build(self) -> TaskGraph {
        TaskGraph::from_tasks(self.tasks, self.version.len())
    }
}

impl TaskGraph {
    /// Builds the dependency structure from raw tasks.
    pub fn from_tasks(tasks: Vec<TaskNode>, tiles: usize) -> Self {
        let n = tasks.len();
        // Map (tile, version) → producing task.
        let mut producer = std::collections::HashMap::new();
        for (id, t) in tasks.iter().enumerate() {
            for w in &t.writes {
                producer.insert((w.tile, w.version), id as TaskId);
            }
        }
        let mut successors = vec![Vec::new(); n];
        let mut preds = vec![0u32; n];
        for (id, t) in tasks.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for r in &t.reads {
                if r.version > 0 {
                    let p = *producer
                        .get(&(r.tile, r.version))
                        .expect("read of a version no task produces");
                    // A task may read several outputs of one predecessor
                    // (e.g. TSMQR after TSMQR): one edge is enough.
                    if seen.insert(p) {
                        successors[p as usize].push(id as TaskId);
                        preds[id] += 1;
                    }
                }
            }
        }
        // Upward ranks by reverse topological sweep (tasks are emitted in
        // a topological order by the builder; verify and sweep backwards).
        let mut ranks = vec![0.0f64; n];
        for id in (0..n).rev() {
            let best_succ = successors[id]
                .iter()
                .map(|&s| ranks[s as usize])
                .fold(0.0, f64::max);
            ranks[id] = tasks[id].weight + best_succ;
            debug_assert!(
                successors[id].iter().all(|&s| s as usize > id),
                "builder must emit topologically"
            );
        }
        TaskGraph {
            tasks,
            tiles,
            successors,
            predecessors_count: preds,
            ranks,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// The task nodes.
    pub fn tasks(&self) -> &[TaskNode] {
        &self.tasks
    }

    /// Task `id`.
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.tasks[id as usize]
    }

    /// Tasks that consume `id`'s output.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id as usize]
    }

    /// In-degree of each task (cloned; the engine consumes it).
    pub fn indegrees(&self) -> Vec<u32> {
        self.predecessors_count.clone()
    }

    /// Upward rank (critical-path length through the task).
    pub fn rank(&self, id: TaskId) -> f64 {
        self.ranks[id as usize]
    }

    /// Length of the critical path (max rank over sources).
    pub fn critical_path(&self) -> f64 {
        self.ranks.iter().cloned().fold(0.0, f64::max)
    }

    /// Total computation weight.
    pub fn total_weight(&self) -> f64 {
        self.tasks.iter().map(|t| t.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain: t0 writes tile 0, t1 reads it and writes tile 1, t2 reads
    /// both outputs and writes tile 1 again.
    fn small() -> TaskGraph {
        let mut b = GraphBuilder::new(2);
        b.task("A", &[], 0, false, 1.0);
        b.task("B", &[0], 1, false, 2.0);
        b.task("C", &[0], 1, true, 3.0);
        b.build()
    }

    #[test]
    fn versions_chain_dependencies() {
        let g = small();
        assert_eq!(g.len(), 3);
        assert_eq!(g.indegrees(), vec![0, 1, 2]);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[2]);
        assert!(g.successors(2).is_empty());
    }

    #[test]
    fn ranks_are_longest_paths() {
        let g = small();
        // rank(C) = 3, rank(B) = 2 + 3 = 5, rank(A) = 1 + 5 = 6.
        assert_eq!(g.rank(2), 3.0);
        assert_eq!(g.rank(1), 5.0);
        assert_eq!(g.rank(0), 6.0);
        assert_eq!(g.critical_path(), 6.0);
        assert_eq!(g.total_weight(), 6.0);
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = GraphBuilder::new(3);
        b.task("X", &[], 0, false, 1.0);
        b.task("Y", &[], 1, false, 1.0);
        b.task("Z", &[], 2, false, 1.0);
        let g = b.build();
        assert_eq!(g.indegrees(), vec![0, 0, 0]);
        assert_eq!(g.critical_path(), 1.0);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn read_modify_write_serializes_updates() {
        let mut b = GraphBuilder::new(1);
        b.task("U1", &[], 0, true, 1.0);
        b.task("U2", &[], 0, true, 1.0);
        b.task("U3", &[], 0, true, 1.0);
        let g = b.build();
        // Update chain: each depends on the previous version.
        assert_eq!(g.indegrees(), vec![0, 1, 1]);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.critical_path(), 3.0);
    }

    #[test]
    fn initial_versions_have_no_producer_edges() {
        let mut b = GraphBuilder::new(2);
        // Reads tile 1 at version 0 (initial): no dependency.
        b.task("R", &[1], 0, false, 1.0);
        let g = b.build();
        assert_eq!(g.indegrees(), vec![0]);
    }
}
