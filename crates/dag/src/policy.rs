//! Ready-pool allocation policies.

use crate::graph::{TaskGraph, TaskId};
use hetsched_platform::ProcId;
use rand::rngs::StdRng;
use rand::Rng;

/// How the master picks among *ready* tasks when a worker requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Uniformly random ready task — the DAG analogue of
    /// `RandomOuter`/`RandomMatrix`.
    Random,
    /// The ready task needing the fewest blocks shipped to this worker
    /// (random tie-break) — the paper's data-affinity idea under
    /// precedence constraints.
    DataAware,
    /// Same, but ties (and near-ties) break by *descending upward rank*
    /// (critical-path priority, as in HEFT): protects the makespan when
    /// the DAG narrows and data affinity alone would starve the critical
    /// path.
    DataAwareCp,
    /// Pure critical-path priority, ignoring data locality (random
    /// tie-break) — isolates the rank heuristic's effect.
    CriticalPath,
}

impl Policy {
    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Random => "RandomDag",
            Policy::DataAware => "DataAwareDag",
            Policy::DataAwareCp => "DataAwareCpDag",
            Policy::CriticalPath => "CriticalPathDag",
        }
    }

    /// Picks a task from `ready` for worker `w`. `missing` computes the
    /// number of blocks the worker would need shipped for a task.
    pub(crate) fn pick(
        &self,
        ready: &[TaskId],
        w: ProcId,
        graph: &TaskGraph,
        missing: &dyn Fn(ProcId, TaskId) -> u32,
        rng: &mut StdRng,
    ) -> TaskId {
        debug_assert!(!ready.is_empty());
        match self {
            Policy::Random => ready[rng.gen_range(0..ready.len())],
            Policy::DataAware => pick_min(ready, rng, |t| missing(w, t) as f64, |_| 0.0),
            Policy::DataAwareCp => {
                pick_min(ready, rng, |t| missing(w, t) as f64, |t| -graph.rank(t))
            }
            Policy::CriticalPath => pick_min(ready, rng, |t| -graph.rank(t), |_| 0.0),
        }
    }
}

/// Picks the task minimizing `(primary, secondary)` lexicographically,
/// breaking exact ties uniformly at random (reservoir sampling).
fn pick_min(
    ready: &[TaskId],
    rng: &mut StdRng,
    primary: impl Fn(TaskId) -> f64,
    secondary: impl Fn(TaskId) -> f64,
) -> TaskId {
    let mut best = ready[0];
    let mut best_key = (primary(best), secondary(best));
    let mut ties = 1u32;
    for &t in &ready[1..] {
        let key = (primary(t), secondary(t));
        if key < best_key {
            best = t;
            best_key = key;
            ties = 1;
        } else if key == best_key {
            ties += 1;
            if rng.gen_range(0..ties) == 0 {
                best = t;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use hetsched_util::rng::rng_for;

    fn two_task_graph() -> TaskGraph {
        let mut b = GraphBuilder::new(3);
        b.task("A", &[], 0, false, 1.0); // rank 1
        b.task("B", &[], 1, false, 1.0); // feeds C: rank 3
        b.task("C", &[1], 2, false, 2.0);
        b.build()
    }

    #[test]
    fn critical_path_prefers_high_rank() {
        let g = two_task_graph();
        let mut rng = rng_for(0, 0);
        let missing = |_: ProcId, _: TaskId| 0u32;
        let picked = Policy::CriticalPath.pick(&[0, 1], ProcId(0), &g, &missing, &mut rng);
        assert_eq!(picked, 1, "task B (rank 3) beats A (rank 1)");
    }

    #[test]
    fn data_aware_prefers_fewer_missing_blocks() {
        let g = two_task_graph();
        let mut rng = rng_for(1, 0);
        let missing = |_: ProcId, t: TaskId| if t == 0 { 0 } else { 3 };
        let picked = Policy::DataAware.pick(&[0, 1], ProcId(0), &g, &missing, &mut rng);
        assert_eq!(picked, 0);
    }

    #[test]
    fn data_aware_cp_breaks_ties_by_rank() {
        let g = two_task_graph();
        let mut rng = rng_for(2, 0);
        let missing = |_: ProcId, _: TaskId| 1u32; // tie on blocks
        let picked = Policy::DataAwareCp.pick(&[0, 1], ProcId(0), &g, &missing, &mut rng);
        assert_eq!(picked, 1, "tie on data → rank decides");
    }

    #[test]
    fn random_tie_break_is_uniformish() {
        let g = two_task_graph();
        let missing = |_: ProcId, _: TaskId| 0u32;
        let mut firsts = 0;
        for seed in 0..200 {
            let mut rng = rng_for(seed, 9);
            if Policy::DataAware.pick(&[0, 1], ProcId(0), &g, &missing, &mut rng) == 0 {
                firsts += 1;
            }
        }
        assert!(
            (50..150).contains(&firsts),
            "tie-break skewed: {firsts}/200"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::Random.label(), "RandomDag");
        assert_eq!(Policy::DataAwareCp.label(), "DataAwareCpDag");
    }
}
