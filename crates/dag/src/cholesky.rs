//! Tiled right-looking Cholesky factorization DAG.
//!
//! For a symmetric positive-definite matrix of `t × t` tiles (lower
//! triangle stored), step `k` of the factorization is
//!
//! ```text
//! POTRF(k):        A[k][k] ← chol(A[k][k])
//! TRSM(i,k):       A[i][k] ← A[i][k]·A[k][k]⁻ᵀ          (i > k)
//! SYRK(i,k):       A[i][i] ← A[i][i] − A[i][k]·A[i][k]ᵀ  (i > k)
//! GEMM(i,j,k):     A[i][j] ← A[i][j] − A[i][k]·A[j][k]ᵀ  (i > j > k)
//! ```
//!
//! Dependencies follow automatically from the versioned-data builder: each
//! update reads its operands' current versions and bumps its output tile.
//! Task weights are the classic flop ratios for `b × b` tiles:
//! POTRF `1/3`, TRSM `1`, SYRK `1`, GEMM `2` (in units of `b³` flops).

use crate::graph::{GraphBuilder, TaskGraph, TileId};

/// Weight of POTRF in `b³`-flop units.
pub const W_POTRF: f64 = 1.0 / 3.0;
/// Weight of TRSM.
pub const W_TRSM: f64 = 1.0;
/// Weight of SYRK.
pub const W_SYRK: f64 = 1.0;
/// Weight of GEMM.
pub const W_GEMM: f64 = 2.0;

/// Linear id of lower-triangle tile `(r, c)`, `r ≥ c`.
pub fn tile_id(r: usize, c: usize) -> TileId {
    debug_assert!(r >= c);
    (r * (r + 1) / 2 + c) as TileId
}

/// Number of lower-triangle tiles for `t` tile-rows.
pub fn tile_count(t: usize) -> usize {
    t * (t + 1) / 2
}

/// Builds the Cholesky DAG for `t × t` tiles.
///
/// # Examples
///
/// ```
/// use hetsched_dag::{cholesky_graph, simulate, Policy};
/// use hetsched_platform::Platform;
/// use hetsched_util::rng::rng_for;
///
/// let graph = cholesky_graph(8);
/// assert_eq!(graph.len(), 8 + 2 * 28 + 56); // POTRF + TRSM/SYRK + GEMM
/// let platform = Platform::homogeneous(4);
/// let report = simulate(&graph, &platform, Policy::DataAware, &mut rng_for(0, 0));
/// assert_eq!(report.tasks_per_worker.iter().sum::<u64>() as usize, graph.len());
/// ```
pub fn cholesky_graph(t: usize) -> TaskGraph {
    assert!(t >= 1, "need at least one tile");
    let mut b = GraphBuilder::new(tile_count(t));
    for k in 0..t {
        b.task("POTRF", &[], tile_id(k, k), true, W_POTRF);
        for i in k + 1..t {
            b.task("TRSM", &[tile_id(k, k)], tile_id(i, k), true, W_TRSM);
        }
        for i in k + 1..t {
            b.task("SYRK", &[tile_id(i, k)], tile_id(i, i), true, W_SYRK);
            for j in k + 1..i {
                b.task(
                    "GEMM",
                    &[tile_id(i, k), tile_id(j, k)],
                    tile_id(i, j),
                    true,
                    W_GEMM,
                );
            }
        }
    }
    b.build()
}

/// Closed-form task count: `t` POTRFs, `t(t−1)/2` TRSMs and SYRKs each,
/// `t(t−1)(t−2)/6` GEMMs.
pub fn task_count(t: usize) -> usize {
    let gemms = if t >= 3 { t * (t - 1) * (t - 2) / 6 } else { 0 };
    t + t * (t - 1) + gemms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_ids_are_dense_and_unique() {
        let t = 6;
        let mut seen = vec![false; tile_count(t)];
        for r in 0..t {
            for c in 0..=r {
                let id = tile_id(r, c) as usize;
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn task_counts_match_closed_form() {
        for t in 1..=8 {
            let g = cholesky_graph(t);
            assert_eq!(g.len(), task_count(t), "t = {t}");
        }
        // t=4: 4 + 12 + 4 = 20.
        assert_eq!(task_count(4), 20);
    }

    #[test]
    fn single_tile_is_one_potrf() {
        let g = cholesky_graph(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.task(0).kind, "POTRF");
        assert_eq!(g.indegrees(), vec![0]);
    }

    #[test]
    fn kind_census() {
        let t = 5;
        let g = cholesky_graph(t);
        let count = |k: &str| g.tasks().iter().filter(|n| n.kind == k).count();
        assert_eq!(count("POTRF"), t);
        assert_eq!(count("TRSM"), t * (t - 1) / 2);
        assert_eq!(count("SYRK"), t * (t - 1) / 2);
        assert_eq!(count("GEMM"), t * (t - 1) * (t - 2) / 6);
    }

    #[test]
    fn first_potrf_is_the_only_source() {
        let g = cholesky_graph(5);
        let indeg = g.indegrees();
        let sources: Vec<usize> = (0..g.len()).filter(|&i| indeg[i] == 0).collect();
        assert_eq!(sources, vec![0]);
        assert_eq!(g.task(0).kind, "POTRF");
    }

    #[test]
    fn critical_path_formula() {
        // With weights (1/3, 1, 1, 2) the longest chain hugs the last
        // row: POTRF(0) → TRSM(t−1,0) → GEMM(t−1,1,0) → TRSM(t−1,1) → …
        // (each middle step costs W_TRSM + W_GEMM = 3, beating the
        // SYRK+POTRF+TRSM alternative at 7/3), closing with
        // TRSM + SYRK + POTRF: CP(t) = 1/3 + 3(t−2) + 7/3 for t ≥ 2.
        assert!((cholesky_graph(1).critical_path() - W_POTRF).abs() < 1e-9);
        for t in 2..=10 {
            let g = cholesky_graph(t);
            let expect = W_POTRF + 3.0 * (t as f64 - 2.0) + 7.0 / 3.0;
            assert!(
                (g.critical_path() - expect).abs() < 1e-9,
                "t = {t}: {} vs {expect}",
                g.critical_path()
            );
        }
    }

    #[test]
    fn total_weight_formula() {
        let t = 6;
        let g = cholesky_graph(t);
        let tf = t as f64;
        let expect = tf * W_POTRF
            + tf * (tf - 1.0) / 2.0 * (W_TRSM + W_SYRK)
            + tf * (tf - 1.0) * (tf - 2.0) / 6.0 * W_GEMM;
        assert!((g.total_weight() - expect).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_sane_spot_checks() {
        // t = 3: task order is
        // 0 POTRF(0); 1 TRSM(1,0); 2 TRSM(2,0); 3 SYRK(1,0); 4 GEMM...
        let g = cholesky_graph(3);
        assert_eq!(g.task(0).kind, "POTRF");
        assert_eq!(g.task(1).kind, "TRSM");
        // TRSM(1,0) depends only on POTRF(0) (tile (1,0) is initial).
        assert_eq!(g.indegrees()[1], 1);
        // The final POTRF(2) reads A[2][2] after two SYRK updates.
        let last_potrf = g
            .tasks()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == "POTRF")
            .map(|(i, _)| i)
            .next_back()
            .unwrap();
        assert_eq!(g.task(last_potrf as u32).primary_write(), tile_id(2, 2));
        assert_eq!(g.task(last_potrf as u32).writes[0].version, 3); // 2 SYRKs + POTRF
    }
}
