//! Demand-driven DAG simulation.
//!
//! Same modelling stance as `hetsched-sim`: time advances with
//! computation only (communication is counted, assumed overlapped), and
//! workers are demand driven. Two differences precedence forces:
//!
//! * a worker with nothing *ready* parks instead of retiring, and is
//!   woken by the next task completion;
//! * successors become ready at their predecessors' *completion* times,
//!   so allocation cannot run ahead of the critical path.
//!
//! Data movement: each task read of a tile version the worker has not
//! cached costs one block (version 0 = initial data from the master).
//! Produced versions are cached on the producing worker; old cached
//! versions are kept (memory is not modelled), matching a runtime that
//! retains read copies.

use crate::graph::{TaskGraph, TaskId};
use crate::policy::Policy;
use hetsched_platform::{Platform, ProcId};
use hetsched_util::OrderedF64;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Outcome of a DAG simulation.
#[derive(Clone, Debug)]
pub struct DagReport {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Total blocks shipped (any source → worker).
    pub total_blocks: u64,
    /// Tasks executed per worker.
    pub tasks_per_worker: Vec<u64>,
    /// Blocks received per worker.
    pub blocks_per_worker: Vec<u64>,
    /// Busy (computing) time per worker.
    pub busy_per_worker: Vec<f64>,
}

impl DagReport {
    /// Average blocks shipped per task.
    pub fn comm_per_task(&self) -> f64 {
        let tasks: u64 = self.tasks_per_worker.iter().sum();
        self.total_blocks as f64 / tasks as f64
    }

    /// Makespan normalized by the work/critical-path lower bound.
    pub fn makespan_ratio(&self, graph: &TaskGraph, platform: &Platform) -> f64 {
        let s_max = platform.speeds().iter().cloned().fold(f64::MIN, f64::max);
        let bound =
            (graph.total_weight() / platform.total_speed()).max(graph.critical_path() / s_max);
        self.makespan / bound
    }
}

/// Per-worker version cache, keyed `tile << 32 | version`.
fn key(tile: u32, version: u32) -> u64 {
    ((tile as u64) << 32) | version as u64
}

/// Simulates `graph` on `platform` under `policy`.
pub fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    policy: Policy,
    rng: &mut StdRng,
) -> DagReport {
    let p = platform.len();
    let n = graph.len();
    let mut indeg = graph.indegrees();
    let mut ready: Vec<TaskId> = (0..n as TaskId)
        .filter(|&t| indeg[t as usize] == 0)
        .collect();
    let mut caches: Vec<HashSet<u64>> = (0..p).map(|_| HashSet::new()).collect();

    let mut report = DagReport {
        makespan: 0.0,
        total_blocks: 0,
        tasks_per_worker: vec![0; p],
        blocks_per_worker: vec![0; p],
        busy_per_worker: vec![0.0; p],
    };

    let mut idle: Vec<ProcId> = platform.procs().collect();
    idle.shuffle(rng);
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u64, ProcId, TaskId)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut completed = 0usize;

    // Dispatches as many (idle worker, ready task) pairs as possible.
    let mut dispatch = |now: f64,
                        idle: &mut Vec<ProcId>,
                        ready: &mut Vec<TaskId>,
                        caches: &mut Vec<HashSet<u64>>,
                        heap: &mut BinaryHeap<Reverse<(OrderedF64, u64, ProcId, TaskId)>>,
                        report: &mut DagReport,
                        rng: &mut StdRng| {
        while !idle.is_empty() && !ready.is_empty() {
            let w = idle.pop().expect("non-empty");
            let missing = |w: ProcId, t: TaskId| {
                graph
                    .task(t)
                    .reads
                    .iter()
                    .filter(|r| !caches[w.idx()].contains(&key(r.tile, r.version)))
                    .count() as u32
            };
            let t = policy.pick(ready, w, graph, &missing, rng);
            let pos = ready
                .iter()
                .position(|&x| x == t)
                .expect("picked from ready");
            ready.swap_remove(pos);

            // Ship missing inputs.
            let node = graph.task(t);
            let mut blocks = 0u64;
            for r in &node.reads {
                if caches[w.idx()].insert(key(r.tile, r.version)) {
                    blocks += 1;
                }
            }
            // Cache the produced versions locally.
            for wv in &node.writes {
                caches[w.idx()].insert(key(wv.tile, wv.version));
            }
            let dur = node.weight / platform.speed(w);
            report.total_blocks += blocks;
            report.blocks_per_worker[w.idx()] += blocks;
            report.tasks_per_worker[w.idx()] += 1;
            report.busy_per_worker[w.idx()] += dur;
            heap.push(Reverse((OrderedF64::new(now + dur), seq, w, t)));
            seq += 1;
        }
    };

    dispatch(
        0.0,
        &mut idle,
        &mut ready,
        &mut caches,
        &mut heap,
        &mut report,
        rng,
    );
    while let Some(Reverse((finish, _, w, t))) = heap.pop() {
        let now = finish.get();
        report.makespan = report.makespan.max(now);
        completed += 1;
        for &s in graph.successors(t) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                ready.push(s);
            }
        }
        idle.push(w);
        dispatch(
            now,
            &mut idle,
            &mut ready,
            &mut caches,
            &mut heap,
            &mut report,
            rng,
        );
    }

    assert_eq!(completed, n, "DAG deadlocked or has unreachable tasks");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::cholesky_graph;
    use crate::qr::qr_graph;
    use hetsched_util::rng::rng_for;

    fn hom(p: usize) -> Platform {
        Platform::homogeneous(p)
    }

    #[test]
    fn all_tasks_complete_for_every_policy() {
        let g = cholesky_graph(8);
        for policy in [
            Policy::Random,
            Policy::DataAware,
            Policy::DataAwareCp,
            Policy::CriticalPath,
        ] {
            let r = simulate(&g, &hom(5), policy, &mut rng_for(0, 0));
            let total: u64 = r.tasks_per_worker.iter().sum();
            assert_eq!(total as usize, g.len(), "{policy:?}");
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn makespan_respects_lower_bounds() {
        let g = cholesky_graph(10);
        let pf = hom(8);
        for policy in [Policy::Random, Policy::DataAwareCp] {
            let r = simulate(&g, &pf, policy, &mut rng_for(1, 0));
            let work_bound = g.total_weight() / pf.total_speed();
            let cp_bound = g.critical_path() / 1.0;
            assert!(r.makespan >= work_bound - 1e-9);
            assert!(r.makespan >= cp_bound - 1e-9, "{policy:?}");
            // And stays within a small factor of the max of both.
            assert!(r.makespan <= 3.0 * work_bound.max(cp_bound), "{policy:?}");
        }
    }

    #[test]
    fn single_worker_runs_serially() {
        let g = cholesky_graph(5);
        let pf = hom(1);
        let r = simulate(&g, &pf, Policy::Random, &mut rng_for(2, 0));
        assert!((r.makespan - g.total_weight()).abs() < 1e-9);
        // A single worker eventually caches every version exactly once:
        // blocks = number of distinct (tile, version 0) initial reads.
        assert!(r.total_blocks > 0);
    }

    #[test]
    fn data_aware_ships_fewer_blocks_than_random() {
        let g = cholesky_graph(12);
        let pf = hom(8);
        let random = simulate(&g, &pf, Policy::Random, &mut rng_for(3, 0));
        let aware = simulate(&g, &pf, Policy::DataAware, &mut rng_for(3, 0));
        assert!(
            (aware.total_blocks as f64) < 0.8 * random.total_blocks as f64,
            "aware {} vs random {}",
            aware.total_blocks,
            random.total_blocks
        );
    }

    #[test]
    fn cp_tiebreak_does_not_hurt_comm_and_helps_makespan() {
        let g = cholesky_graph(14);
        let pf = hom(10);
        let mut aware_mk = 0.0;
        let mut cp_mk = 0.0;
        let mut aware_blocks = 0u64;
        let mut cp_blocks = 0u64;
        for s in 0..5u64 {
            let a = simulate(&g, &pf, Policy::DataAware, &mut rng_for(4, s));
            let c = simulate(&g, &pf, Policy::DataAwareCp, &mut rng_for(4, s));
            aware_mk += a.makespan;
            cp_mk += c.makespan;
            aware_blocks += a.total_blocks;
            cp_blocks += c.total_blocks;
        }
        assert!(
            cp_mk <= aware_mk * 1.02,
            "cp tie-break hurt makespan: {cp_mk} vs {aware_mk}"
        );
        assert!(
            cp_blocks as f64 <= aware_blocks as f64 * 1.3,
            "cp tie-break blew up comm: {cp_blocks} vs {aware_blocks}"
        );
    }

    #[test]
    fn heterogeneous_speeds_shift_task_shares() {
        let g = cholesky_graph(16);
        let pf = Platform::from_speeds(vec![1.0, 1.0, 4.0]);
        let r = simulate(&g, &pf, Policy::DataAwareCp, &mut rng_for(5, 0));
        let fast = r.tasks_per_worker[2];
        let slow = r.tasks_per_worker[0];
        assert!(fast > 2 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn qr_simulates_under_every_policy() {
        let t = 8;
        let qr = qr_graph(t);
        let pf = hom(16);
        for policy in [Policy::Random, Policy::DataAware, Policy::DataAwareCp] {
            let r = simulate(&qr, &pf, policy, &mut rng_for(6, 0));
            let total: u64 = r.tasks_per_worker.iter().sum();
            assert_eq!(total as usize, qr.len(), "{policy:?}");
            // Achieved speedup obeys both the work and parallelism bounds.
            let speedup = qr.total_weight() / r.makespan;
            assert!(speedup > 1.5, "{policy:?}: no parallelism ({speedup})");
            assert!(speedup <= pf.total_speed() + 1e-9);
            assert!(speedup <= qr.total_weight() / qr.critical_path() + 1e-9);
        }
    }

    #[test]
    fn qr_data_aware_cuts_comm_like_cholesky() {
        let qr = qr_graph(10);
        let pf = hom(8);
        let random = simulate(&qr, &pf, Policy::Random, &mut rng_for(9, 0));
        let aware = simulate(&qr, &pf, Policy::DataAware, &mut rng_for(9, 0));
        assert!(
            (aware.total_blocks as f64) < 0.8 * random.total_blocks as f64,
            "aware {} vs random {}",
            aware.total_blocks,
            random.total_blocks
        );
    }

    #[test]
    fn single_task_graphs_complete() {
        for g in [cholesky_graph(1), qr_graph(1)] {
            let r = simulate(&g, &hom(3), Policy::DataAwareCp, &mut rng_for(10, 0));
            assert_eq!(r.tasks_per_worker.iter().sum::<u64>(), 1);
            // One task reads one initial tile (read-modify-write of the
            // diagonal): exactly one block crosses the wire.
            assert_eq!(r.total_blocks, 1);
        }
    }

    #[test]
    fn more_workers_than_parallelism_still_terminates() {
        // 64 workers for a 3-tile Cholesky (6 tasks, CP-dominated): most
        // workers park forever; the engine must still drain cleanly.
        let g = cholesky_graph(3);
        let r = simulate(&g, &hom(64), Policy::Random, &mut rng_for(11, 0));
        assert_eq!(r.tasks_per_worker.iter().sum::<u64>() as usize, g.len());
        assert!((r.makespan - g.critical_path()).abs() < g.total_weight());
    }

    #[test]
    fn reports_are_deterministic() {
        let g = cholesky_graph(9);
        let pf = hom(4);
        let a = simulate(&g, &pf, Policy::Random, &mut rng_for(7, 0));
        let b = simulate(&g, &pf, Policy::Random, &mut rng_for(7, 0));
        assert_eq!(a.total_blocks, b.total_blocks);
        assert_eq!(a.tasks_per_worker, b.tasks_per_worker);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn makespan_ratio_accessor() {
        let g = cholesky_graph(6);
        let pf = hom(4);
        let r = simulate(&g, &pf, Policy::DataAwareCp, &mut rng_for(8, 0));
        let ratio = r.makespan_ratio(&g, &pf);
        assert!(ratio >= 1.0 - 1e-9);
        assert!(ratio < 3.0);
    }
}
