//! Regenerates the data behind every figure of the paper.
//!
//! ```text
//! figures [--quick] [--trials T] [--seed S] [--threads N] [--csv DIR] [all | fig1 fig2 …]
//! ```
//!
//! Prints each figure as an aligned table and, with `--csv DIR`, writes
//! long-form CSV (`figure,series,x,mean,std_dev`) to `DIR/<id>.csv` plus a
//! `DIR/<id>.manifest.json` sidecar recording the seed, options, and build
//! that produced it. Figure 3 of the paper is a schematic with no data; it
//! is intentionally absent.

use hetsched_core::extensions::{self, ALL_EXTENSIONS};
use hetsched_core::figure_manifest_json;
use hetsched_core::figures::{by_id, FigOpts, ALL_FIGURES};
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FigOpts::paper();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                let q = FigOpts::quick();
                opts.quick = true;
                opts.trials = q.trials;
                opts.hetero_trials = q.hetero_trials;
            }
            "--trials" => {
                let t = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--trials needs a number"));
                if t == 0 {
                    usage("--trials: need at least 1 trial, got 0");
                }
                opts.trials = t;
                opts.hetero_trials = opts.hetero_trials.max(t);
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
                if t == 0 {
                    usage("--threads: need at least 1 thread, got 0");
                }
                opts.threads = Some(t);
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--csv" => {
                csv_dir = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--csv needs a directory"))
                        .clone(),
                );
            }
            "all" => {
                ids.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
                ids.extend(ALL_EXTENSIONS.iter().map(|s| s.to_string()));
            }
            other if other.starts_with("fig") || other.starts_with("ext") => {
                ids.push(other.to_string())
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    for id in &ids {
        let start = Instant::now();
        let Some(fig) = by_id(id, &opts).or_else(|| extensions::by_id(id, &opts)) else {
            eprintln!("unknown figure id: {id} (fig3 is a schematic, no data)");
            continue;
        };
        println!("{}", fig.to_table());
        eprintln!("[{} regenerated in {:.1?}]", id, start.elapsed());
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(fig.to_csv().as_bytes()).expect("write csv");
            let manifest_path = format!("{dir}/{id}.manifest.json");
            std::fs::write(&manifest_path, figure_manifest_json(id, &opts) + "\n")
                .expect("write manifest sidecar");
            eprintln!("[wrote {path} (+ manifest sidecar)]");
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: figures [--quick] [--trials T] [--seed S] [--threads N] [--csv DIR] \
         [all | fig1 fig2 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 extA extB extC extD extF extG]"
    );
    std::process::exit(2)
}
