//! Machine-readable performance baseline for the simulator.
//!
//! ```text
//! bench-json [--paper] [--threads N] [--out FILE] [all | fig1 extF …]
//! ```
//!
//! Runs every requested figure/extension once at the chosen scale, times
//! each, measures the raw engine throughput (requests per second on the
//! paper's hottest loop), and writes a `BENCH_<date>.json` snapshot so the
//! repository records a perf trajectory across commits. No external
//! dependencies: the JSON is assembled by hand, the date computed from the
//! Unix clock.

use hetsched_core::extensions::{self, ALL_EXTENSIONS};
use hetsched_core::figures::{by_id, FigOpts, ALL_FIGURES};
use hetsched_core::{manifest_json, run_once, ExperimentConfig, Kernel, Strategy, Topology};
use hetsched_outer::RandomOuter;
use hetsched_platform::{FailureModel, Platform, ProcId, SpeedDistribution, SpeedModel};
use hetsched_serve::{burst_jobs, simulate_admission, BatchJob, Policy};
use hetsched_sim::{NullSink, ProbeConfig, Recorder, TraceEvent};
use hetsched_util::rng::rng_for;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Chunk size the streaming measurements use (events per flush).
const STREAM_CHUNK: usize = 1024;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FigOpts::quick();
    let mut scale = "quick";
    let mut out_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => {
                let threads = opts.threads;
                opts = FigOpts::paper();
                opts.threads = threads;
                scale = "paper";
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
                if t == 0 {
                    usage("--threads: need at least 1 thread, got 0");
                }
                opts.threads = Some(t);
            }
            "--out" => {
                out_path = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--out needs a file path"))
                        .clone(),
                );
            }
            "all" => {
                ids.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
                ids.extend(ALL_EXTENSIONS.iter().map(|s| s.to_string()));
            }
            other if other.starts_with("fig") || other.starts_with("ext") => {
                ids.push(other.to_string())
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
        ids.extend(ALL_EXTENSIONS.iter().map(|s| s.to_string()));
    }

    let date = today_utc();
    let store = store_bench();
    let (events_per_sec, probed_per_sec, buffered_per_sec) = engine_throughputs();
    let mem = trace_memory();
    let (ledger_cfg, ledger_seed, ledger) = ledger_aggregates();
    let fig5_sweep = fig5_threads_sweep(&opts);
    let hierarchy = hierarchy_sweep(scale);
    let (burst, admission) = batch_admission();

    let mut timings = Vec::new();
    for id in &ids {
        let start = Instant::now();
        let fig = by_id(id, &opts).or_else(|| extensions::by_id(id, &opts));
        let secs = start.elapsed().as_secs_f64();
        match fig {
            Some(_) => {
                eprintln!("[{id} {scale}: {secs:.3}s]");
                timings.push((id.clone(), secs));
            }
            None => eprintln!("[skipping unknown id {id}]"),
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"date\": \"{date}\",\n"));
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        opts.threads.map_or("null".to_string(), |t| t.to_string())
    ));
    json.push_str(&format!(
        "  \"engine_requests_per_sec\": {events_per_sec:.0},\n"
    ));
    json.push_str(&format!(
        "  \"engine_requests_per_sec_probed\": {probed_per_sec:.0},\n"
    ));
    json.push_str(&format!(
        "  \"probe_overhead_pct\": {:.1},\n",
        100.0 * (1.0 - probed_per_sec / events_per_sec)
    ));
    json.push_str(&format!(
        "  \"engine_requests_per_sec_probed_buffered\": {buffered_per_sec:.0},\n"
    ));
    json.push_str(&format!(
        "  \"buffered_probe_overhead_pct\": {:.1},\n",
        100.0 * (1.0 - buffered_per_sec / events_per_sec)
    ));
    json.push_str(&format!(
        "  \"trace_memory\": {{ \"events\": {}, \"buffered_peak_bytes\": {}, \"streamed_peak_bytes\": {}, \"stream_chunk_events\": {} }},\n",
        mem.events, mem.buffered_peak_bytes, mem.streamed_peak_bytes, STREAM_CHUNK
    ));
    json.push_str(&format!(
        "  \"store_ingest\": {{ \"rows\": {}, \"rows_per_sec\": {:.0}, \"disk_bytes\": {}, \"jsonl_bytes\": {}, \"jsonl_over_disk\": {:.2} }},\n",
        store.rows,
        store.rows as f64 / store.ingest_sec,
        store.disk_bytes,
        store.jsonl_bytes,
        store.jsonl_bytes as f64 / store.disk_bytes as f64,
    ));
    json.push_str(&format!(
        "  \"store_query\": {{ \"rows\": {}, \"group_by_sec\": {:.4}, \"filter_sec\": {:.4} }},\n",
        store.rows, store.group_by_sec, store.filter_sec,
    ));
    json.push_str(&format!(
        "  \"store_query_mt\": {{ \"rows\": {}, \"group_by_sec\": {{ {} }}, \"speedup\": {:.2} }},\n",
        store.rows,
        store
            .mt_query_sec
            .iter()
            .map(|(t, s)| format!("\"{t}\": {s:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
        store.mt_query_sec[0].1 / store.mt_query_sec.last().expect("mt sweep").1,
    ));
    json.push_str(&format!(
        "  \"store_compact\": {{ \"segments_before\": {}, \"segments_after\": {}, \"compact_sec\": {:.4}, \"group_by_sec_by_segments\": {{ \"{}\": {:.4}, \"{}\": {:.4}, \"{}\": {:.4} }} }},\n",
        store.segments_before,
        store.segments_after,
        store.compact_sec,
        store.frag_segments,
        store.frag_group_by_sec,
        store.segments_before,
        store.group_by_sec,
        store.segments_after,
        store.compacted_group_by_sec,
    ));
    json.push_str("  \"fig5_threads_sweep_sec\": {\n");
    for (i, (threads, secs)) in fig5_sweep.iter().enumerate() {
        let comma = if i + 1 == fig5_sweep.len() { "" } else { "," };
        json.push_str(&format!("    \"{threads}\": {secs:.4}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"hierarchy_sweep\": [\n");
    for (i, r) in hierarchy.iter().enumerate() {
        let comma = if i + 1 == hierarchy.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"p\": {}, \"n\": {}, \"submasters\": {}, \"flat_makespan\": {:.4}, \"tree_makespan\": {:.4}, \"tree_over_flat\": {:.4}, \"flat_blocks\": {}, \"tree_blocks\": {}, \"tier_blocks\": {}, \"flat_sec\": {:.3}, \"tree_sec\": {:.3}, \"tree_threads\": {}, \"tree_mt_makespan\": {:.4}, \"tree_mt_sec\": {:.3} }}{comma}\n",
            r.p,
            r.n,
            r.submasters,
            r.flat_makespan,
            r.tree_makespan,
            r.tree_makespan / r.flat_makespan,
            r.flat_blocks,
            r.tree_blocks,
            r.tier_blocks,
            r.flat_sec,
            r.tree_sec,
            r.tree_threads,
            r.tree_mt_makespan,
            r.tree_mt_sec,
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"batch_jobs\": [\n");
    for (i, j) in burst.iter().enumerate() {
        let comma = if i + 1 == burst.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"group\": \"{}\", \"predicted\": {:.4}, \"service_time\": {:.4} }}{comma}\n",
            j.name, j.group, j.predicted, j.service_time,
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"batch_admission\": [\n");
    for (i, r) in admission.iter().enumerate() {
        let comma = if i + 1 == admission.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"slots\": {}, \"makespan\": {:.4}, \"mean_wait\": {:.4}, \"mean_flow\": {:.4}, \"order\": {:?} }}{comma}\n",
            r.policy, r.slots, r.makespan, r.mean_wait, r.mean_flow, r.order,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ledger\": {{ \"total_blocks\": {}, \"total_transfer_wait\": {:.4}, \"wasted_blocks\": {}, \"lost_tasks\": {}, \"reshipped_blocks\": {} }},\n",
        ledger.0, ledger.1, ledger.2, ledger.3, ledger.4
    ));
    json.push_str(&format!(
        "  \"manifest\": {},\n",
        manifest_json(
            &ledger_cfg,
            ledger_seed,
            opts.threads.unwrap_or(1),
            &[("role", "\"ledger-aggregate run\"".to_string())],
        )
    ));
    json.push_str("  \"timings_sec\": {\n");
    for (i, (id, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        json.push_str(&format!("    \"{id}\": {secs:.4}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    let path = out_path.unwrap_or_else(|| format!("BENCH_{date}.json"));
    std::fs::write(&path, &json).unwrap_or_else(|e| usage(&format!("write {path}: {e}")));
    println!("{json}");
    eprintln!("[wrote {path}]");
}

/// Engine throughput, three ways on the same hot loop: `RandomOuter`
/// issues exactly one task per request, so a run at `n = 100` is 10 000
/// full engine round-trips (event pop, scheduler call, ledger update,
/// event push). Returns requests per second for
///
/// 1. the unobserved engine (the `None` recorder branch),
/// 2. the observability path: a streaming recorder with an
///    every-64-allocations probe cadence flushing [`STREAM_CHUNK`]-event
///    chunks into a [`NullSink`] — the `--trace-buffer` machinery minus
///    serialization cost, and the recommended way to trace long runs, and
/// 3. the fully buffered recorder at the same cadence (whole trace held
///    in memory until the end).
///
/// Each variant is timed as the minimum over `ROUNDS` interleaved,
/// individually-timed runs. Scheduler preemption, frequency dips and
/// allocator slow paths only ever add time, so the per-variant minimum is
/// a robust estimator of the true cost on a shared machine, and the
/// round-robin interleaving exposes every variant to the same slow spells
/// instead of biasing whichever ran last.
fn engine_throughputs() -> (f64, f64, f64) {
    const ROUNDS: usize = 200;
    let p = 100;
    let n = 100;
    let pf = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
    let run_plain = || {
        let (r, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            RandomOuter::new(n, p),
            &mut rng_for(2, 0),
        );
        std::hint::black_box(r.makespan);
    };
    let run_streamed = || {
        let mut rec = Recorder::streaming(ProbeConfig::by_events(64), NullSink, STREAM_CHUNK);
        let (r, _) = hetsched_sim::run_configured_recorded(
            &pf,
            SpeedModel::Fixed,
            RandomOuter::new(n, p),
            &FailureModel::none(),
            hetsched_sim::NetworkModel::Infinite,
            &mut rng_for(2, 0),
            &mut rec,
        );
        std::hint::black_box((r.makespan, rec.flushed_events()));
    };
    let run_buffered = || {
        let mut rec = Recorder::new(ProbeConfig::by_events(64));
        let (r, _) = hetsched_sim::run_configured_recorded(
            &pf,
            SpeedModel::Fixed,
            RandomOuter::new(n, p),
            &FailureModel::none(),
            hetsched_sim::NetworkModel::Infinite,
            &mut rng_for(2, 0),
            &mut rec,
        );
        std::hint::black_box((r.makespan, rec.trace().len()));
    };
    let variants: [&dyn Fn(); 3] = [&run_plain, &run_streamed, &run_buffered];
    let mut best = [f64::INFINITY; 3];
    // Warm-up round keeps the first measurements honest.
    for run in &variants {
        run();
    }
    for _ in 0..ROUNDS {
        for (i, run) in variants.iter().enumerate() {
            let start = Instant::now();
            run();
            let dt = start.elapsed().as_secs_f64();
            if dt < best[i] {
                best[i] = dt;
            }
        }
    }
    let reqs = (n * n) as f64;
    (reqs / best[0], reqs / best[1], reqs / best[2])
}

struct StoreBench {
    rows: usize,
    ingest_sec: f64,
    disk_bytes: u64,
    jsonl_bytes: u64,
    group_by_sec: f64,
    filter_sec: f64,
    /// Parallel group-by sweep: (threads, best-of-3 seconds). Output is
    /// asserted byte-identical to the serial scan at every entry.
    mt_query_sec: Vec<(usize, f64)>,
    /// Fragmented (50-segment) vs compacted layout of the same rows.
    segments_before: usize,
    segments_after: usize,
    compact_sec: f64,
    compacted_group_by_sec: f64,
    /// Heavy-fragmentation point: the same rows split into ~1 000 tiny
    /// segments (what a long `serve --store` campaign accretes), with
    /// the best-of-3 group-by latency over that layout.
    frag_segments: usize,
    frag_group_by_sec: f64,
}

/// Warehouse throughput on a synthetic million-row probe campaign:
/// 50 runs × 1 000 samples × 20 workers, ingested one batch per run the
/// way `simulate --store` appends, then scanned two ways — a full
/// group-by over every row and a pruned point lookup that zone maps and
/// chunk dictionaries should keep from touching most segments. The
/// `jsonl_bytes` column is what the same campaign would occupy as sparse
/// JSONL (one object per row, defaulted fields omitted), the format the
/// store replaces.
fn store_bench() -> StoreBench {
    use hetsched_store::{build_query, run_query, run_query_with, Row, Store, COLUMNS};
    const RUNS: usize = 50;
    const SAMPLES: usize = 1_000;
    const WORKERS: usize = 20;

    let dir = std::env::temp_dir().join(format!("hetsched-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("open bench store");

    // Deterministic synthetic probe series: shapes and magnitudes of a
    // real campaign without paying for 50 actual simulations. A closure
    // so the fragmentation sweep below can rebuild identical rows.
    let gen_runs = || {
        let mut runs: Vec<Vec<Row>> = Vec::with_capacity(RUNS);
        for run in 0..RUNS {
            let mut rows = Vec::with_capacity(SAMPLES * WORKERS);
            let run_id = format!("run-{run}");
            let config = format!(
                "{:016x}",
                0x9E3779B97F4A7C15u64.wrapping_mul(run as u64 + 1)
            );
            for s in 0..SAMPLES {
                for w in 0..WORKERS {
                    let mut r = Row::new("synthetic", &run_id, "probe", &config);
                    r.strategy = "DynamicOuter2Phases".to_string();
                    r.metric = "sample".to_string();
                    r.seed = run as u64;
                    r.worker = w as i64;
                    r.t = s as f64 * 0.25;
                    r.events = (s * 131) as u64;
                    r.remaining = (SAMPLES - s) as u64 * 17;
                    r.blocks = ((s * 7 + w * 3) % 97) as u64;
                    r.tasks = ((s * 11 + w) % 89) as u64;
                    r.useful = ((s + w) % 100) as f64 / 100.0;
                    r.link_busy = (s % 50) as f64 / 50.0;
                    r.queue_depth = ((s + w * 5) % 13) as u64;
                    r.beta = 3.0;
                    rows.push(r);
                }
            }
            runs.push(rows);
        }
        runs
    };
    let runs = gen_runs();
    let rows_total: usize = runs.iter().map(Vec::len).sum();

    // Sparse-JSONL equivalent: bytes the same rows would take one JSON
    // object per line, defaulted fields (empty strings, NaN) left out.
    let jsonl_bytes: u64 = runs
        .iter()
        .flatten()
        .map(|row| {
            let mut len = 2u64; // "{" + "}"
            let mut first = true;
            for (i, (name, _)) in COLUMNS.iter().enumerate() {
                let v = row.get(i);
                let rendered = v.render_json();
                if rendered == "null" || rendered == "\"\"" {
                    continue;
                }
                if !first {
                    len += 1; // ","
                }
                first = false;
                len += name.len() as u64 + 3 + rendered.len() as u64; // "name":value
            }
            len + 1 // "\n"
        })
        .sum();

    let start = Instant::now();
    for rows in runs {
        let mut batch = store.batch();
        batch.push_all(rows);
        batch.commit().expect("commit bench batch");
    }
    let ingest_sec = start.elapsed().as_secs_f64();

    let disk_bytes: u64 = store
        .segment_paths()
        .expect("list segments")
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();

    // Best-of-3, same rationale as `engine_throughputs`: noise only adds.
    let group_by = build_query(
        None,
        Some("kind=probe"),
        Some("run"),
        Some("count,mean(useful),max(blocks)"),
        None,
    )
    .expect("group-by query");
    let filter = build_query(
        Some("t,blocks,tasks"),
        Some("run=run-25,worker=7,blocks>90"),
        None,
        None,
        None,
    )
    .expect("filter query");
    let mut group_by_sec = f64::INFINITY;
    let mut filter_sec = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let res = run_query_with(&store, &group_by, Some(1)).expect("run group-by");
        group_by_sec = group_by_sec.min(start.elapsed().as_secs_f64());
        assert_eq!(res.rows.len(), RUNS, "one group per run");
        std::hint::black_box(&res);
        let start = Instant::now();
        let res = run_query(&store, &filter).expect("run filter");
        filter_sec = filter_sec.min(start.elapsed().as_secs_f64());
        assert!(!res.rows.is_empty(), "point lookup finds its run");
        std::hint::black_box(&res);
    }

    // Parallel scan sweep over the same group-by. The serial CSV is the
    // golden: the partial-state merge is (segment, chunk)-ordered, so
    // every thread count must reproduce it byte for byte.
    let golden = run_query_with(&store, &group_by, Some(1))
        .expect("serial group-by")
        .to_csv();
    let mut mt_query_sec = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let res = run_query_with(&store, &group_by, Some(threads)).expect("mt group-by");
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(
                res.to_csv(),
                golden,
                "group-by output must be byte-identical at {threads} thread(s)"
            );
            std::hint::black_box(&res);
        }
        mt_query_sec.push((threads, best));
    }

    // Compaction: 50 one-run segments merge into ⌈rows/64Ki⌉ full-chunk
    // segments. Equivalence is asserted with association-free aggregates
    // (count/min/max/percentile are exact whatever the chunk boundaries;
    // mean re-associates its sum when chunk cuts move, so it is compared
    // by the timing queries only).
    let exact = build_query(
        None,
        Some("kind=probe"),
        Some("run"),
        Some("count,min(useful),p95(useful),max(blocks)"),
        None,
    )
    .expect("exact query");
    let exact_golden = run_query(&store, &exact)
        .expect("exact pre-compact")
        .to_csv();
    let segments_before = store.segment_paths().expect("list segments").len();
    let start = Instant::now();
    let report = store
        .compact(hetsched_store::CHUNK_ROWS)
        .expect("compact bench store");
    let compact_sec = start.elapsed().as_secs_f64();
    assert_eq!(report.segments_before, segments_before);
    assert_eq!(
        run_query(&store, &exact)
            .expect("exact post-compact")
            .to_csv(),
        exact_golden,
        "compaction must not change query results"
    );
    let mut compacted_group_by_sec = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let res = run_query_with(&store, &group_by, Some(1)).expect("compacted group-by");
        compacted_group_by_sec = compacted_group_by_sec.min(start.elapsed().as_secs_f64());
        assert_eq!(res.rows.len(), RUNS, "one group per run after compaction");
        std::hint::black_box(&res);
    }

    // Fragmentation sweep, heavy end: the same million rows committed
    // 1 000 rows at a time — the layout a long-lived `serve --store`
    // campaign accretes (one tiny segment per job) — makes the same
    // group-by pay ~1 000 footer reads and sub-chunk column decodes.
    let frag_dir =
        std::env::temp_dir().join(format!("hetsched-bench-store-frag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&frag_dir);
    let frag_store = Store::open(&frag_dir).expect("open frag store");
    for rows in gen_runs() {
        for slice in rows.chunks(1_000) {
            let mut batch = frag_store.batch();
            batch.push_all(slice.to_vec());
            batch.commit().expect("commit frag batch");
        }
    }
    let frag_segments = frag_store
        .segment_paths()
        .expect("list frag segments")
        .len();
    let mut frag_group_by_sec = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let res = run_query_with(&frag_store, &group_by, Some(1)).expect("frag group-by");
        frag_group_by_sec = frag_group_by_sec.min(start.elapsed().as_secs_f64());
        // Not a byte assert: the mean's sum re-associates over the
        // different chunk boundaries. Same groups is the invariant here.
        assert_eq!(res.rows.len(), RUNS, "one group per run at any layout");
        std::hint::black_box(&res);
    }
    let _ = std::fs::remove_dir_all(&frag_dir);

    let speedup = mt_query_sec[0].1 / mt_query_sec.last().expect("sweep").1;
    eprintln!(
        "[store: {rows_total} rows ingested in {ingest_sec:.2}s ({:.0} rows/s), \
         {disk_bytes} B on disk vs {jsonl_bytes} B as JSONL ({:.2}x), \
         group-by {group_by_sec:.3}s, filter {filter_sec:.3}s]",
        rows_total as f64 / ingest_sec,
        jsonl_bytes as f64 / disk_bytes as f64,
    );
    eprintln!(
        "[store mt: group-by {} — {speedup:.2}x at {} threads, byte-identical output; \
         compact {segments_before}->{} segments in {compact_sec:.3}s, \
         group-by {frag_group_by_sec:.3}s at {frag_segments} segs / \
         {group_by_sec:.3}s at {segments_before} / \
         {compacted_group_by_sec:.3}s compacted]",
        mt_query_sec
            .iter()
            .map(|(t, s)| format!("{t}t {s:.3}s"))
            .collect::<Vec<_>>()
            .join(" / "),
        mt_query_sec.last().expect("sweep").0,
        report.segments_after,
    );
    let _ = std::fs::remove_dir_all(&dir);
    StoreBench {
        rows: rows_total,
        ingest_sec,
        disk_bytes,
        jsonl_bytes,
        group_by_sec,
        filter_sec,
        mt_query_sec,
        segments_before,
        segments_after: report.segments_after,
        compact_sec,
        compacted_group_by_sec,
        frag_segments,
        frag_group_by_sec,
    }
}

struct TraceMemory {
    events: usize,
    buffered_peak_bytes: usize,
    streamed_peak_bytes: usize,
}

/// Peak trace memory on the hot loop, buffered vs streamed: the buffered
/// recorder holds every event until the end; the streaming recorder never
/// buffers more than a chunk. Probe storage (columnar, identical in both
/// modes) is included in both numbers.
fn trace_memory() -> TraceMemory {
    let p = 100;
    let n = 100;
    let pf = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
    let ev = std::mem::size_of::<TraceEvent>();
    let mut buffered = Recorder::new(ProbeConfig::by_events(64));
    let _ = hetsched_sim::run_configured_recorded(
        &pf,
        SpeedModel::Fixed,
        RandomOuter::new(n, p),
        &FailureModel::none(),
        hetsched_sim::NetworkModel::Infinite,
        &mut rng_for(2, 0),
        &mut buffered,
    );
    let events = buffered.trace().events().len();
    let buffered_peak_bytes =
        buffered.peak_buffered_events() * ev + buffered.probes().approx_bytes();
    let mut streamed = Recorder::streaming(ProbeConfig::by_events(64), NullSink, STREAM_CHUNK);
    let _ = hetsched_sim::run_configured_recorded(
        &pf,
        SpeedModel::Fixed,
        RandomOuter::new(n, p),
        &FailureModel::none(),
        hetsched_sim::NetworkModel::Infinite,
        &mut rng_for(2, 0),
        &mut streamed,
    );
    assert!(streamed.peak_buffered_events() <= STREAM_CHUNK);
    let streamed_peak_bytes =
        streamed.peak_buffered_events() * ev + streamed.probes().approx_bytes();
    TraceMemory {
        events,
        buffered_peak_bytes,
        streamed_peak_bytes,
    }
}

/// Wall time of the fig5 sweep at 1, 2 and 4 worker threads — the snapshot
/// row behind the parallel-speedup claim (results are bit-identical across
/// thread counts, only the wall time moves).
fn fig5_threads_sweep(opts: &FigOpts) -> Vec<(usize, f64)> {
    [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut o = *opts;
            o.threads = Some(threads);
            let start = Instant::now();
            let fig = by_id("fig5", &o);
            let secs = start.elapsed().as_secs_f64();
            std::hint::black_box(&fig);
            eprintln!("[fig5 --threads {threads}: {secs:.3}s]");
            (threads, secs)
        })
        .collect()
}

struct HierarchyRow {
    p: usize,
    n: usize,
    submasters: usize,
    flat_makespan: f64,
    tree_makespan: f64,
    flat_blocks: u64,
    tree_blocks: u64,
    tier_blocks: u64,
    flat_sec: f64,
    tree_sec: f64,
    /// Shard threads of the multi-threaded tree run (`tree_mt_*` columns).
    tree_threads: usize,
    tree_mt_makespan: f64,
    tree_mt_sec: f64,
}

/// Hierarchy-vs-flat makespan sweep over the worker count: the same
/// DynamicOuter workload under the same one-port pricing, dispatched once
/// through the flat single master and once through a `√p`-sub-master tree.
///
/// The master link bandwidth is held constant across rows (a hardware
/// property, not a function of fleet size), so the flat master saturates
/// as `p` grows while the tree multiplies the serving bandwidth by the
/// sub-master count at the price of the root → sub-master input shipment
/// and of shard-confined (less flexible) dynamic balancing. The
/// `tree_over_flat` mean-makespan ratio locates the crossover. Problem
/// size scales with the fleet (`n² ≈ 16·p` tasks, ~16 per worker); quick
/// scale stops at p = 10⁴, `--paper` adds the p = 10⁵ row. Each row is a
/// 5-trial mean — single runs at this scale are tail-noise dominated.
fn hierarchy_sweep(scale: &str) -> Vec<HierarchyRow> {
    let ps: &[usize] = if scale == "paper" {
        &[30, 100, 1000, 10_000, 100_000]
    } else {
        &[30, 100, 1000, 10_000]
    };
    const MASTER_BW: f64 = 20_000.0;
    const SEED: u64 = 0xBEEF;
    const TRIALS: usize = 5;
    ps.iter()
        .map(|&p| {
            let n = ((16.0 * p as f64).sqrt().ceil()) as usize;
            let submasters = (p as f64).sqrt().round().max(2.0) as usize;
            let flat_cfg = ExperimentConfig {
                kernel: Kernel::Outer { n },
                strategy: Strategy::Dynamic,
                processors: p,
                network: hetsched_sim::NetworkModel::OnePort {
                    master_bw: MASTER_BW,
                },
                ..Default::default()
            };
            let tree_cfg = ExperimentConfig {
                topology: Topology::Tree { submasters },
                ..flat_cfg.clone()
            };
            let start = Instant::now();
            let flat = hetsched_core::run_trials(&flat_cfg, TRIALS, SEED);
            let flat_sec = start.elapsed().as_secs_f64();
            let start = Instant::now();
            let tree = hetsched_core::run_trials(&tree_cfg, TRIALS, SEED);
            let tree_sec = start.elapsed().as_secs_f64();
            // The same tree workload with the shards fanned across threads
            // (serial trial sweep, so the two thread pools do not stack).
            // Results are bit-identical to the serial tree run; only the
            // wall time moves — that delta is what this column records.
            const TREE_THREADS: usize = 2;
            let tree_mt_cfg = ExperimentConfig {
                tree_threads: Some(TREE_THREADS),
                ..tree_cfg.clone()
            };
            let start = Instant::now();
            let tree_mt =
                hetsched_core::run_trials_with_threads(&tree_mt_cfg, TRIALS, SEED, Some(1));
            let tree_mt_sec = start.elapsed().as_secs_f64();
            assert_eq!(
                tree_mt.makespan.mean().to_bits(),
                tree.makespan.mean().to_bits(),
                "threaded tree run must be bit-identical"
            );
            // Tier volume is deterministic given the platform draw; one
            // run of the first trial's seed recovers it for the record.
            let tier = run_once(&tree_cfg, hetsched_core::runner::trial_seed(SEED, 0)).tier_blocks;
            eprintln!(
                "[hierarchy p={p} n={n} k={submasters}: flat {:.2} vs tree {:.2} \
                 ({:.3}s + {:.3}s + {:.3}s @{TREE_THREADS}t)]",
                flat.makespan.mean(),
                tree.makespan.mean(),
                flat_sec,
                tree_sec,
                tree_mt_sec
            );
            HierarchyRow {
                p,
                n,
                submasters,
                flat_makespan: flat.makespan.mean(),
                tree_makespan: tree.makespan.mean(),
                flat_blocks: flat.total_blocks.mean().round() as u64,
                tree_blocks: tree.total_blocks.mean().round() as u64,
                tier_blocks: tier,
                flat_sec,
                tree_sec,
                tree_threads: TREE_THREADS,
                tree_mt_makespan: tree_mt.makespan.mean(),
                tree_mt_sec,
            }
        })
        .collect()
}

struct AdmissionRow {
    policy: &'static str,
    slots: usize,
    makespan: f64,
    mean_wait: f64,
    mean_flow: f64,
    order: Vec<usize>,
}

/// Batch-admission sweep: the serve daemon's 8-job heterogeneous burst
/// (mixed sizes and strategies over one `set.5` platform behind a
/// one-port master link) list-scheduled in virtual time under each
/// admission policy at two pool widths. Policies only reorder a fixed
/// amount of work, so the makespan column barely moves while the mean
/// wait and flow columns separate shortest-predicted-first from FIFO —
/// the per-job service times come from the simulator, so the per-job
/// data-aware scheduling result feeds the batch-level comparison.
fn batch_admission() -> (Vec<BatchJob>, Vec<AdmissionRow>) {
    const SEED: u64 = 7;
    let jobs = burst_jobs(SEED);
    let mut rows = Vec::new();
    for policy in [Policy::Fifo, Policy::Spf, Policy::Fair] {
        for slots in [2usize, 4] {
            let out = simulate_admission(&jobs, slots, policy);
            eprintln!(
                "[admission {} slots={slots}: makespan {:.2}, mean wait {:.2}, mean flow {:.2}]",
                policy.name(),
                out.makespan,
                out.mean_wait,
                out.mean_flow
            );
            rows.push(AdmissionRow {
                policy: policy.name(),
                slots,
                makespan: out.makespan,
                mean_wait: out.mean_wait,
                mean_flow: out.mean_flow,
                order: out.order,
            });
        }
    }
    (jobs, rows)
}

/// One fixed, deterministic networked run with an injected failure, so the
/// snapshot records the ledger aggregates the observability layer
/// reconciles against: `(total_blocks, total_transfer_wait, wasted_blocks,
/// lost_tasks, reshipped_blocks)`.
fn ledger_aggregates() -> (ExperimentConfig, u64, (u64, f64, u64, u64, u64)) {
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n: 60 },
        strategy: Strategy::Dynamic,
        processors: 10,
        failures: FailureModel::none().fail_at(ProcId(3), 8.0),
        network: hetsched_sim::NetworkModel::OnePort { master_bw: 50.0 },
        ..Default::default()
    };
    let seed = 0xBE;
    let r = run_once(&cfg, seed);
    (
        cfg,
        seed,
        (
            r.total_blocks,
            r.transfer_wait_per_proc.iter().sum(),
            r.wasted_blocks,
            r.lost_tasks,
            r.reshipped_blocks,
        ),
    )
}

/// Civil date (UTC) from the Unix clock — days-to-date per the standard
/// civil-calendar algorithm, no chrono dependency.
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench-json [--paper] [--threads N] [--out FILE] [all | fig1 fig2 … extA …]");
    std::process::exit(2)
}
