//! One Criterion benchmark per figure of the paper: each iteration
//! regenerates the figure's full data set in quick mode (same code path as
//! the paper-scale `figures` binary, reduced sizes).
//!
//! Fig. 3 is a schematic in the paper (no data), so it has no bench.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsched_core::extensions::{self, ALL_EXTENSIONS};
use hetsched_core::figures::{by_id, FigOpts, ALL_FIGURES};
use std::hint::black_box;

fn bench_every_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    let opts = FigOpts::quick();
    for id in ALL_FIGURES {
        group.bench_function(id, |b| {
            b.iter(|| {
                let fig = by_id(id, &opts).expect("known figure id");
                black_box(fig.series.len())
            })
        });
    }
    group.finish();
}

fn bench_every_extension(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions_quick");
    group.sample_size(10);
    let opts = FigOpts::quick();
    for id in ALL_EXTENSIONS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let fig = extensions::by_id(id, &opts).expect("known extension id");
                black_box(fig.series.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_every_figure, bench_every_extension);
criterion_main!(benches);
