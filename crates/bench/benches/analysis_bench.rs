//! Criterion benchmarks for the analytic model: β optimization must be
//! cheap enough to run inside a scheduler's startup path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_analysis::ode::rk4;
use hetsched_analysis::{MatmulAnalysis, OuterAnalysis};
use hetsched_platform::{Platform, SpeedDistribution};
use hetsched_util::rng::rng_for;
use std::hint::black_box;

fn bench_beta_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("beta_optimization");
    for p in [20usize, 100, 1000] {
        let pf = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
        group.bench_with_input(BenchmarkId::new("outer", p), &pf, |b, pf| {
            let model = OuterAnalysis::new(pf, 100);
            b.iter(|| black_box(model.optimal_beta()))
        });
        group.bench_with_input(BenchmarkId::new("matmul", p), &pf, |b, pf| {
            let model = MatmulAnalysis::new(pf, 100);
            b.iter(|| black_box(model.optimal_beta()))
        });
    }
    group.finish();
}

fn bench_ratio_evaluation(c: &mut Criterion) {
    let pf = Platform::sample(100, &SpeedDistribution::paper_default(), &mut rng_for(2, 0));
    let model = OuterAnalysis::new(&pf, 100);
    c.bench_function("outer_ratio_single_eval", |b| {
        b.iter(|| black_box(model.ratio(black_box(4.17))))
    });
}

fn bench_ode_integration(c: &mut Criterion) {
    // The RK4 cross-check used by the test suite.
    c.bench_function("rk4_g_ode_2000_steps", |b| {
        let alpha = 19.0;
        b.iter(|| {
            black_box(rk4(
                |x, g| -2.0 * x * alpha / (1.0 - x * x) * g,
                0.0,
                1.0,
                black_box(0.4),
                2000,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_beta_optimization,
    bench_ratio_evaluation,
    bench_ode_integration
);
criterion_main!(benches);
