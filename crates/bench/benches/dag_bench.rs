//! Criterion benchmarks for the DAG extension: graph generation and
//! policy-driven simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_dag::{cholesky_graph, qr_graph, simulate, Policy};
use hetsched_platform::{Platform, SpeedDistribution};
use hetsched_util::rng::rng_for;
use std::hint::black_box;

fn bench_graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_generation");
    for t in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("cholesky", t), &t, |b, &t| {
            b.iter(|| black_box(cholesky_graph(t).len()))
        });
    }
    group.bench_function(BenchmarkId::new("qr", 24), |b| {
        b.iter(|| black_box(qr_graph(24).len()))
    });
    group.finish();
}

fn bench_simulation_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_simulation");
    group.sample_size(10);
    let graph = cholesky_graph(24);
    let pf = Platform::sample(16, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
    for policy in [Policy::Random, Policy::DataAware, Policy::DataAwareCp] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let r = simulate(&graph, &pf, policy, &mut rng_for(2, 0));
                black_box(r.total_blocks)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_generation, bench_simulation_policies);
criterion_main!(benches);
