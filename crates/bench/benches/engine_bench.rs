//! Criterion benchmarks for the simulation engine's hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_outer::RandomOuter;
use hetsched_platform::{Platform, SpeedDistribution, SpeedModel};
use hetsched_util::rng::rng_for;
use hetsched_util::{FixedBitSet, SwapList};
use rand::Rng;
use std::hint::black_box;

fn bench_engine_request_throughput(c: &mut Criterion) {
    // RandomOuter issues one task per request, so a full run at n = 100 is
    // 10 000 engine round-trips: queue pop, scheduler call, ledger update,
    // queue push.
    let mut group = c.benchmark_group("engine_requests");
    group.sample_size(20);
    for p in [10usize, 100, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let pf = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
            b.iter(|| {
                let (r, _) = hetsched_sim::run(
                    &pf,
                    SpeedModel::Fixed,
                    RandomOuter::new(100, p),
                    &mut rng_for(2, 0),
                );
                black_box(r.makespan)
            })
        });
    }
    group.finish();
}

fn bench_dynamic_speed_overhead(c: &mut Criterion) {
    // The dyn.* scenarios draw one RNG sample per task; measure the cost
    // against fixed speeds.
    let mut group = c.benchmark_group("speed_models");
    group.sample_size(20);
    let pf = Platform::sample(
        20,
        &SpeedDistribution::uniform(80.0, 120.0),
        &mut rng_for(3, 0),
    );
    for (label, model) in [("fixed", SpeedModel::Fixed), ("dyn20", SpeedModel::dyn20())] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (r, _) =
                    hetsched_sim::run(&pf, model, RandomOuter::new(60, 20), &mut rng_for(4, 0));
                black_box(r.makespan)
            })
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("swaplist_draw_drain_10k", |b| {
        b.iter(|| {
            let mut rng = rng_for(5, 0);
            let mut s = SwapList::full(10_000);
            let mut acc = 0u64;
            while let Some(v) = s.draw(&mut rng) {
                acc = acc.wrapping_add(v as u64);
            }
            black_box(acc)
        })
    });
    c.bench_function("bitset_insert_iter_100k", |b| {
        b.iter(|| {
            let mut rng = rng_for(6, 0);
            let mut bs = FixedBitSet::new(100_000);
            for _ in 0..50_000 {
                bs.insert(rng.gen_range(0..100_000));
            }
            black_box(bs.iter_ones().count())
        })
    });
}

criterion_group!(
    benches,
    bench_engine_request_throughput,
    bench_dynamic_speed_overhead,
    bench_primitives
);
criterion_main!(benches);
