//! Criterion benchmarks for the simulation engine's hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_outer::RandomOuter;
use hetsched_platform::{Platform, SpeedDistribution, SpeedModel};
use hetsched_util::rng::rng_for;
use hetsched_util::{FixedBitSet, SwapList};
use rand::Rng;
use std::hint::black_box;

fn bench_engine_request_throughput(c: &mut Criterion) {
    // RandomOuter issues one task per request, so a full run at n = 100 is
    // 10 000 engine round-trips: queue pop, scheduler call, ledger update,
    // queue push.
    let mut group = c.benchmark_group("engine_requests");
    group.sample_size(20);
    for p in [10usize, 100, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let pf = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
            b.iter(|| {
                let (r, _) = hetsched_sim::run(
                    &pf,
                    SpeedModel::Fixed,
                    RandomOuter::new(100, p),
                    &mut rng_for(2, 0),
                );
                black_box(r.makespan)
            })
        });
    }
    group.finish();
}

fn bench_dynamic_speed_overhead(c: &mut Criterion) {
    // The dyn.* scenarios draw one RNG sample per task; measure the cost
    // against fixed speeds.
    let mut group = c.benchmark_group("speed_models");
    group.sample_size(20);
    let pf = Platform::sample(
        20,
        &SpeedDistribution::uniform(80.0, 120.0),
        &mut rng_for(3, 0),
    );
    for (label, model) in [("fixed", SpeedModel::Fixed), ("dyn20", SpeedModel::dyn20())] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let (r, _) =
                    hetsched_sim::run(&pf, model, RandomOuter::new(60, 20), &mut rng_for(4, 0));
                black_box(r.makespan)
            })
        });
    }
    group.finish();
}

fn bench_event_queues(c: &mut Criterion) {
    // The event queue never holds more than ~p+1 entries; compare the flat
    // min-scan queue against the binary heap on a realistic churn pattern
    // (push/pop interleave with coarse time ties, as the engine produces).
    // The heap (the engine's EventQueue) wins beyond p ≈ 50, which is why
    // FlatScanQueue is the comparator and not the default.
    use hetsched_platform::ProcId;
    use hetsched_sim::{EventQueue, FlatScanQueue};

    fn churn(pushes: &[(f64, u32)], live: usize) -> f64 {
        let mut q = FlatScanQueue::new();
        let mut acc = 0.0;
        for (i, &(t, k)) in pushes.iter().enumerate() {
            q.push(t, ProcId(k));
            if i >= live {
                let (t, _) = q.pop().unwrap();
                acc += t;
            }
        }
        acc
    }
    fn churn_heap(pushes: &[(f64, u32)], live: usize) -> f64 {
        let mut q = EventQueue::new();
        let mut acc = 0.0;
        for (i, &(t, k)) in pushes.iter().enumerate() {
            q.push(t, ProcId(k));
            if i >= live {
                let (t, _) = q.pop().unwrap();
                acc += t;
            }
        }
        acc
    }

    let mut group = c.benchmark_group("event_queue");
    for p in [10usize, 100, 300] {
        // Deterministic workload: monotone-ish times with frequent ties.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let pushes: Vec<(f64, u32)> = (0..20_000)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (
                    (i / 8) as f64 + (state % 16) as f64 / 16.0,
                    (state % p as u64) as u32,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("flat", p), &p, |b, &p| {
            b.iter(|| black_box(churn(&pushes, p)))
        });
        group.bench_with_input(BenchmarkId::new("heap", p), &p, |b, &p| {
            b.iter(|| black_box(churn_heap(&pushes, p)))
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("swaplist_draw_drain_10k", |b| {
        b.iter(|| {
            let mut rng = rng_for(5, 0);
            let mut s = SwapList::full(10_000);
            let mut acc = 0u64;
            while let Some(v) = s.draw(&mut rng) {
                acc = acc.wrapping_add(v as u64);
            }
            black_box(acc)
        })
    });
    c.bench_function("bitset_insert_iter_100k", |b| {
        b.iter(|| {
            let mut rng = rng_for(6, 0);
            let mut bs = FixedBitSet::new(100_000);
            for _ in 0..50_000 {
                bs.insert(rng.gen_range(0..100_000));
            }
            black_box(bs.iter_ones().count())
        })
    });
}

criterion_group!(
    benches,
    bench_engine_request_throughput,
    bench_dynamic_speed_overhead,
    bench_event_queues,
    bench_primitives
);
criterion_main!(benches);
