//! Criterion benchmarks for the four outer-product strategies: one full
//! scheduling run (simulation) per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_outer::{DynamicOuter, DynamicOuter2Phases, RandomOuter, SortedOuter};
use hetsched_platform::{Platform, SpeedDistribution, SpeedModel};
use hetsched_util::rng::rng_for;
use std::hint::black_box;

fn platform(p: usize) -> Platform {
    Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0))
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("outer_full_run");
    group.sample_size(20);
    let n = 100;
    let p = 20;
    let pf = platform(p);

    group.bench_function(BenchmarkId::new("RandomOuter", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                RandomOuter::new(n, p),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.bench_function(BenchmarkId::new("SortedOuter", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                SortedOuter::new(n, p),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.bench_function(BenchmarkId::new("DynamicOuter", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicOuter::new(n, p),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.bench_function(BenchmarkId::new("DynamicOuter2Phases", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicOuter2Phases::with_beta(n, p, 4.17),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Throughput of the two-phase scheduler as the task grid grows.
    let mut group = c.benchmark_group("outer_two_phase_scaling");
    group.sample_size(10);
    for n in [100usize, 300, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let pf = platform(50);
            b.iter(|| {
                let (r, _) = hetsched_sim::run(
                    &pf,
                    SpeedModel::Fixed,
                    DynamicOuter2Phases::with_beta(n, 50, 5.0),
                    &mut rng_for(3, 0),
                );
                black_box(r.total_blocks)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_scaling);
criterion_main!(benches);
