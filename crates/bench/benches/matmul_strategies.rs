//! Criterion benchmarks for the four matrix-multiplication strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_matmul::{DynamicMatrix, DynamicMatrix2Phases, RandomMatrix, SortedMatrix};
use hetsched_platform::{Platform, SpeedDistribution, SpeedModel};
use hetsched_util::rng::rng_for;
use std::hint::black_box;

fn platform(p: usize) -> Platform {
    Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0))
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_full_run");
    group.sample_size(10);
    let n = 40; // the paper's Fig. 9 size: 64 000 tasks
    let p = 50;
    let pf = platform(p);

    group.bench_function(BenchmarkId::new("RandomMatrix", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                RandomMatrix::new(n, p),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.bench_function(BenchmarkId::new("SortedMatrix", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                SortedMatrix::new(n, p),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.bench_function(BenchmarkId::new("DynamicMatrix", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicMatrix::new(n, p),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.bench_function(BenchmarkId::new("DynamicMatrix2Phases", n), |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicMatrix2Phases::with_beta(n, p, 2.95),
                &mut rng_for(2, 0),
            );
            black_box(r.total_blocks)
        })
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Fig. 10 scale: one million tasks.
    let mut group = c.benchmark_group("matmul_two_phase_scaling");
    group.sample_size(10);
    for n in [40usize, 64, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let pf = platform(100);
            b.iter(|| {
                let (r, _) = hetsched_sim::run(
                    &pf,
                    SpeedModel::Fixed,
                    DynamicMatrix2Phases::with_beta(n, 100, 3.0),
                    &mut rng_for(3, 0),
                );
                black_box(r.total_blocks)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_scaling);
criterion_main!(benches);
