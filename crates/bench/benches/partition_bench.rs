//! Criterion benchmarks for the static column-partition machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched_partition::{optimal_column_partition, GridPartition, StaticOuter};
use hetsched_platform::{Platform, SpeedDistribution, SpeedModel};
use hetsched_util::rng::rng_for;
use std::hint::black_box;

fn areas(p: usize) -> Vec<f64> {
    let pf = Platform::sample(p, &SpeedDistribution::paper_default(), &mut rng_for(1, 0));
    pf.relative_speeds()
}

fn bench_partition_dp(c: &mut Criterion) {
    // The DP is O(p²); confirm it stays in scheduler-startup territory.
    let mut group = c.benchmark_group("column_partition_dp");
    for p in [20usize, 100, 1000] {
        let a = areas(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &a, |b, a| {
            b.iter(|| black_box(optimal_column_partition(a)))
        });
    }
    group.finish();
}

fn bench_grid_discretization(c: &mut Criterion) {
    let a = areas(100);
    let part = optimal_column_partition(&a);
    c.bench_function("grid_discretization_p100_n1000", |b| {
        b.iter(|| black_box(GridPartition::from_continuous(&part, 1000)))
    });
}

fn bench_static_full_run(c: &mut Criterion) {
    let pf = Platform::sample(20, &SpeedDistribution::paper_default(), &mut rng_for(2, 0));
    c.bench_function("static_outer_full_run_n100", |b| {
        b.iter(|| {
            let (r, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                StaticOuter::new(100, &pf),
                &mut rng_for(3, 0),
            );
            black_box(r.total_blocks)
        })
    });
}

criterion_group!(
    benches,
    bench_partition_dp,
    bench_grid_discretization,
    bench_static_full_run
);
criterion_main!(benches);
