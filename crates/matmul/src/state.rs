//! Global task state for the matrix multiplication.

use hetsched_util::{BitCube, SwapList};
use rand::rngs::StdRng;

/// The `ni × nj × nk` task cuboid (an `n × n × n` cube for a flat run):
/// which tasks have been allocated, plus an O(1) uniform sampler over the
/// unprocessed residue.
#[derive(Clone, Debug)]
pub struct MatmulState {
    processed: BitCube,
    remaining: SwapList,
    /// Tasks returned to the pool by a worker failure. Also present in
    /// `remaining`; kept separately so the dynamic strategies can offer
    /// them to workers that already hold their blocks.
    orphans: Vec<u32>,
}

impl MatmulState {
    /// Fresh state with all `n³` tasks unprocessed.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one block per dimension");
        Self::rect(n, n, n)
    }

    /// Fresh state over an `ni × nj × nk` cuboid — a hierarchy shard of the
    /// full task cube. Zero-extent shards are allowed (no tasks).
    pub fn rect(ni: usize, nj: usize, nk: usize) -> Self {
        MatmulState {
            processed: BitCube::cuboid(ni, nj, nk),
            remaining: SwapList::full(ni * nj * nk),
            orphans: Vec::new(),
        }
    }

    /// Blocks along `i` (for a cube, the side length `n`).
    #[inline]
    pub fn ni(&self) -> usize {
        self.processed.ni()
    }

    /// Blocks along `j`.
    #[inline]
    pub fn nj(&self) -> usize {
        self.processed.nj()
    }

    /// Blocks along `k`.
    #[inline]
    pub fn nk(&self) -> usize {
        self.processed.nk()
    }

    /// Total number of tasks (`ni·nj·nk`).
    #[inline]
    pub fn total(&self) -> usize {
        self.processed.total()
    }

    /// Tasks not yet allocated.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining.len()
    }

    /// Linear task id of `T(i,j,k)`.
    #[inline]
    pub fn task_id(&self, i: usize, j: usize, k: usize) -> u32 {
        self.processed.linear(i, j, k) as u32
    }

    /// Inverse of [`task_id`](Self::task_id).
    #[inline]
    pub fn coords(&self, id: u32) -> (usize, usize, usize) {
        self.processed.coords(id as usize)
    }

    /// True if `T(i,j,k)` has been allocated.
    #[inline]
    pub fn is_processed(&self, i: usize, j: usize, k: usize) -> bool {
        self.processed.contains(i, j, k)
    }

    /// Marks `T(i,j,k)` allocated; returns `true` if it was unprocessed.
    pub fn mark_processed(&mut self, i: usize, j: usize, k: usize) -> bool {
        if self.processed.insert(i, j, k) {
            let id = self.task_id(i, j, k);
            let removed = self.remaining.remove(id);
            debug_assert!(removed);
            if !self.orphans.is_empty() {
                if let Some(pos) = self.orphans.iter().position(|&o| o == id) {
                    self.orphans.swap_remove(pos);
                }
            }
            true
        } else {
            false
        }
    }

    /// Returns a lost task to the pool after a worker failure. Returns
    /// `false` if the task was never allocated (already unprocessed).
    pub fn reinsert(&mut self, id: u32) -> bool {
        let (i, j, k) = self.coords(id);
        if self.processed.remove(i, j, k) {
            let inserted = self.remaining.insert(id);
            debug_assert!(inserted);
            self.orphans.push(id);
            true
        } else {
            false
        }
    }

    /// True if any failure-reinserted task is still unallocated.
    #[inline]
    pub fn has_orphans(&self) -> bool {
        !self.orphans.is_empty()
    }

    /// The failure-reinserted tasks still unallocated.
    #[inline]
    pub fn orphans(&self) -> &[u32] {
        &self.orphans
    }

    /// A uniformly random unprocessed task, or `None` when done.
    pub fn random_unprocessed(&self, rng: &mut StdRng) -> Option<(usize, usize, usize)> {
        self.remaining.peek_random(rng).map(|id| self.coords(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    #[test]
    fn fresh_state_counts() {
        let s = MatmulState::new(5);
        assert_eq!(s.total(), 125);
        assert_eq!(s.remaining(), 125);
        assert!(!s.is_processed(1, 2, 3));
    }

    #[test]
    fn mark_processed_updates_both_views() {
        let mut s = MatmulState::new(4);
        assert!(s.mark_processed(1, 2, 3));
        assert!(!s.mark_processed(1, 2, 3));
        assert!(s.is_processed(1, 2, 3));
        assert_eq!(s.remaining(), 63);
    }

    #[test]
    fn reinsert_returns_task_to_pool() {
        let mut s = MatmulState::new(3);
        s.mark_processed(1, 0, 2);
        let id = s.task_id(1, 0, 2);
        assert!(s.reinsert(id));
        assert!(!s.reinsert(id), "already back in the pool");
        assert!(!s.is_processed(1, 0, 2));
        assert_eq!(s.remaining(), 27);
        assert_eq!(s.orphans(), &[id]);
        // Re-allocation strips the orphan marker.
        assert!(s.mark_processed(1, 0, 2));
        assert!(!s.has_orphans());
    }

    #[test]
    fn task_id_round_trip() {
        let s = MatmulState::new(4);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert_eq!(s.coords(s.task_id(i, j, k)), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn random_unprocessed_respects_processing() {
        let mut s = MatmulState::new(3);
        let mut rng = rng_for(0, 0);
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    if (i, j, k) != (2, 1, 0) {
                        s.mark_processed(i, j, k);
                    }
                }
            }
        }
        for _ in 0..10 {
            assert_eq!(s.random_unprocessed(&mut rng), Some((2, 1, 0)));
        }
        s.mark_processed(2, 1, 0);
        assert_eq!(s.random_unprocessed(&mut rng), None);
    }
}
