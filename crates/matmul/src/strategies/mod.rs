//! The four matrix-multiplication scheduling strategies.
//!
//! As in the outer-product crate, the two primitive steps are factored out
//! so `DynamicMatrix2Phases` composes them directly:
//!
//! * `random_step` — allocate one uniformly random unprocessed task and
//!   ship its missing `A`/`B`/`C` blocks;
//! * `dynamic_step` — extend the worker's index sets `I`, `J`, `K` by one
//!   random new index each, ship the new boundary blocks (`3(2y+1)` of them
//!   when starting from a `y³` brick), allocate every unprocessed task of
//!   the three new slabs, and repeat if that enabled nothing.

mod dynamic;
mod random;
mod sorted;
mod two_phase;

pub use dynamic::DynamicMatrix;
pub use random::RandomMatrix;
pub use sorted::SortedMatrix;
pub use two_phase::DynamicMatrix2Phases;

use crate::cube::WorkerCube;
use crate::state::MatmulState;
use hetsched_sim::Allocation;
use rand::rngs::StdRng;

/// One step of the basic randomized strategy.
pub(crate) fn random_step(
    state: &mut MatmulState,
    worker: &mut WorkerCube,
    rng: &mut StdRng,
    out: &mut Vec<u32>,
) -> Allocation {
    let Some((i, j, k)) = state.random_unprocessed(rng) else {
        return Allocation::DONE;
    };
    let fresh = state.mark_processed(i, j, k);
    debug_assert!(fresh);
    out.push(state.task_id(i, j, k));
    let blocks = worker.acquire_task_blocks(i, j, k);
    Allocation { tasks: 1, blocks }
}

/// One step of the data-aware strategy (Algorithm 3).
///
/// Ordering matters for exact counting. Each matrix's new blocks are the
/// new row crossed with the *old* perpendicular set plus the new column
/// crossed with the *updated* parallel set, which enumerates the boundary
/// of the grown brick exactly once:
///
/// * extend `I` by `i` → ship `A[i, K_old]`, `C[i, J_old]`;
/// * extend `J` by `j` → ship `C[I_new, j]`, `B[K_old, j]`;
/// * extend `K` by `k` → ship `A[I_new, k]`, `B[k, J_new]`.
///
/// Tasks are then the three slabs `{i}×J×K`, `I∖{i}×{j}×K`,
/// `I∖{i}×J∖{j}×{k}` of the grown brick — `3y²+3y+1` of them when all
/// three sets could be extended — minus whatever other workers already won.
pub(crate) fn dynamic_step(
    state: &mut MatmulState,
    w: &mut WorkerCube,
    rng: &mut StdRng,
    out: &mut Vec<u32>,
) -> Allocation {
    if state.has_orphans() {
        // Failure-reinserted tasks whose three blocks this worker already
        // holds are invisible to the slab scan below (it only covers the
        // newly grown boundary), so re-allocate them first — at zero
        // shipping cost. The ownership grids are the ground truth here:
        // they also cover blocks bought outside the index-set brick.
        let known: Vec<u32> = state
            .orphans()
            .iter()
            .copied()
            .filter(|&id| {
                let (i, j, k) = state.coords(id);
                w.owns_a.contains(i, k) && w.owns_b.contains(k, j) && w.owns_c.contains(i, j)
            })
            .collect();
        if !known.is_empty() {
            for &id in &known {
                let (i, j, k) = state.coords(id);
                let fresh = state.mark_processed(i, j, k);
                debug_assert!(fresh);
                out.push(id);
            }
            return Allocation {
                tasks: known.len(),
                blocks: 0,
            };
        }
    }
    let mut blocks = 0u64;
    loop {
        if state.remaining() == 0 {
            return Allocation { tasks: 0, blocks };
        }

        let ni = w.i_set.acquire_random(rng);
        if let Some(i) = ni {
            // K and J not extended yet: these are the "old" sets, minus the
            // fresh i itself which acquire_random already appended to I.
            for &k in w.k_set.owned_list() {
                if w.owns_a.insert(i, k as usize) {
                    blocks += 1;
                }
            }
            for &j in w.j_set.owned_list() {
                if w.owns_c.insert(i, j as usize) {
                    blocks += 1;
                }
            }
        }
        let nj = w.j_set.acquire_random(rng);
        if let Some(j) = nj {
            for &i in w.i_set.owned_list() {
                if w.owns_c.insert(i as usize, j) {
                    blocks += 1;
                }
            }
            for &k in w.k_set.owned_list() {
                if w.owns_b.insert(k as usize, j) {
                    blocks += 1;
                }
            }
        }
        let nk = w.k_set.acquire_random(rng);
        if let Some(k) = nk {
            for &i in w.i_set.owned_list() {
                if w.owns_a.insert(i as usize, k) {
                    blocks += 1;
                }
            }
            for &j in w.j_set.owned_list() {
                if w.owns_b.insert(k, j as usize) {
                    blocks += 1;
                }
            }
        }

        if ni.is_none() && nj.is_none() && nk.is_none() {
            // All three index sets are full: the worker's brick is the whole
            // cube, so normally every task has been allocated to someone.
            // Failure-reinserted tasks may still sit in the pool, though,
            // and this worker can compute them all without further
            // shipping.
            let mut tasks = 0usize;
            while let Some((i, j, k)) = state.random_unprocessed(rng) {
                let fresh = state.mark_processed(i, j, k);
                debug_assert!(fresh);
                out.push(state.task_id(i, j, k));
                blocks += w.acquire_task_blocks(i, j, k);
                tasks += 1;
            }
            return Allocation { tasks, blocks };
        }

        let mut tasks = 0usize;
        if let Some(i) = ni {
            for &j2 in w.j_set.owned_list() {
                for &k2 in w.k_set.owned_list() {
                    if state.mark_processed(i, j2 as usize, k2 as usize) {
                        out.push(state.task_id(i, j2 as usize, k2 as usize));
                        tasks += 1;
                    }
                }
            }
        }
        if let Some(j) = nj {
            for &i2 in w.i_set.owned_list() {
                if Some(i2 as usize) == ni {
                    continue;
                }
                for &k2 in w.k_set.owned_list() {
                    if state.mark_processed(i2 as usize, j, k2 as usize) {
                        out.push(state.task_id(i2 as usize, j, k2 as usize));
                        tasks += 1;
                    }
                }
            }
        }
        if let Some(k) = nk {
            for &i2 in w.i_set.owned_list() {
                if Some(i2 as usize) == ni {
                    continue;
                }
                for &j2 in w.j_set.owned_list() {
                    if Some(j2 as usize) == nj {
                        continue;
                    }
                    if state.mark_processed(i2 as usize, j2 as usize, k) {
                        out.push(state.task_id(i2 as usize, j2 as usize, k));
                        tasks += 1;
                    }
                }
            }
        }

        if tasks > 0 {
            return Allocation { tasks, blocks };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    // Count-only shims shadowing the glob imports; id-sink behaviour has a
    // dedicated test below.
    fn random_step(s: &mut MatmulState, w: &mut WorkerCube, r: &mut StdRng) -> Allocation {
        super::random_step(s, w, r, &mut Vec::new())
    }
    fn dynamic_step(s: &mut MatmulState, w: &mut WorkerCube, r: &mut StdRng) -> Allocation {
        super::dynamic_step(s, w, r, &mut Vec::new())
    }

    #[test]
    fn steps_report_allocated_task_ids() {
        let mut state = MatmulState::new(5);
        let mut w = WorkerCube::new(5);
        let mut rng = rng_for(77, 0);
        let mut out = Vec::new();
        for _ in 0..3 {
            out.clear();
            let a = super::dynamic_step(&mut state, &mut w, &mut rng, &mut out);
            assert_eq!(out.len(), a.tasks);
            for &id in &out {
                let (i, j, k) = state.coords(id);
                assert!(state.is_processed(i, j, k));
                assert!(w.owns_a.contains(i, k));
                assert!(w.owns_b.contains(k, j));
                assert!(w.owns_c.contains(i, j));
            }
        }
        out.clear();
        let a = super::random_step(&mut state, &mut w, &mut rng, &mut out);
        assert_eq!(out.len(), a.tasks);
    }

    #[test]
    fn random_step_ships_at_most_three_blocks() {
        let mut state = MatmulState::new(5);
        let mut w = WorkerCube::new(5);
        let mut rng = rng_for(0, 0);
        let a = random_step(&mut state, &mut w, &mut rng);
        assert_eq!(a.tasks, 1);
        assert_eq!(a.blocks, 3, "first task ships all three blocks");
        while state.remaining() > 0 {
            let a = random_step(&mut state, &mut w, &mut rng);
            assert_eq!(a.tasks, 1);
            assert!(a.blocks <= 3);
        }
        assert!(random_step(&mut state, &mut w, &mut rng).is_done());
    }

    #[test]
    fn single_worker_random_total_blocks_is_3n2() {
        // Alone, the worker ends up owning each of the 3n² blocks once.
        let n = 4;
        let mut state = MatmulState::new(n);
        let mut w = WorkerCube::new(n);
        let mut rng = rng_for(1, 0);
        let mut total = 0;
        while state.remaining() > 0 {
            total += random_step(&mut state, &mut w, &mut rng).blocks;
        }
        assert_eq!(total, 3 * (n * n) as u64);
    }

    #[test]
    fn dynamic_step_first_call_is_one_task_three_blocks() {
        let mut state = MatmulState::new(6);
        let mut w = WorkerCube::new(6);
        let mut rng = rng_for(2, 0);
        let a = dynamic_step(&mut state, &mut w, &mut rng);
        assert_eq!(a.tasks, 1);
        assert_eq!(a.blocks, 3, "brick 0³→1³ ships A, B, C corner blocks");
        assert_eq!(w.i_set.count(), 1);
        assert_eq!(w.j_set.count(), 1);
        assert_eq!(w.k_set.count(), 1);
    }

    #[test]
    fn dynamic_step_growth_matches_closed_forms_when_alone() {
        // y³ → (y+1)³: 3y²+3y+1 new tasks, 3(2y+1) new blocks.
        let n = 8;
        let mut state = MatmulState::new(n);
        let mut w = WorkerCube::new(n);
        let mut rng = rng_for(3, 0);
        for y in 0..n as u64 {
            let a = dynamic_step(&mut state, &mut w, &mut rng);
            assert_eq!(a.tasks as u64, 3 * y * y + 3 * y + 1, "growth at y={y}");
            assert_eq!(a.blocks, 3 * (2 * y + 1), "boundary at y={y}");
        }
        assert_eq!(state.remaining(), 0);
        assert_eq!(w.total_blocks(), 3 * n * n);
        assert!(dynamic_step(&mut state, &mut w, &mut rng).is_done());
    }

    #[test]
    fn steps_interleave_without_double_allocation() {
        let mut state = MatmulState::new(6);
        let mut workers = WorkerCube::fleet(6, 3);
        let mut rng = rng_for(4, 0);
        let mut allocated = 0usize;
        let mut turn = 0usize;
        while state.remaining() > 0 {
            let wi = turn % 3;
            let a = if wi == 0 {
                random_step(&mut state, &mut workers[wi], &mut rng)
            } else {
                dynamic_step(&mut state, &mut workers[wi], &mut rng)
            };
            allocated += a.tasks;
            turn += 1;
        }
        assert_eq!(allocated, 216);
    }

    #[test]
    fn dynamic_step_after_everything_processed_is_done_and_free() {
        let n = 4;
        let mut state = MatmulState::new(n);
        let mut w1 = WorkerCube::new(n);
        let mut w2 = WorkerCube::new(n);
        let mut rng = rng_for(5, 0);
        dynamic_step(&mut state, &mut w2, &mut rng);
        while state.remaining() > 0 {
            dynamic_step(&mut state, &mut w1, &mut rng);
        }
        let done = dynamic_step(&mut state, &mut w2, &mut rng);
        assert!(done.is_done());
        assert_eq!(done.blocks, 0);
    }
}
