//! `DynamicMatrix`: the data-aware strategy (Algorithm 3).

use crate::cube::WorkerCube;
use crate::state::MatmulState;
use crate::strategies::dynamic_step;
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Per request, extends the worker's index sets `I`, `J`, `K` by one random
/// new index each (shipping the `3(2y+1)` new boundary blocks of its data
/// brick) and allocates every still-unprocessed task of the three new slabs.
#[derive(Clone, Debug)]
pub struct DynamicMatrix {
    state: MatmulState,
    workers: Vec<WorkerCube>,
}

impl DynamicMatrix {
    /// `n` blocks per dimension, `p` workers.
    pub fn new(n: usize, p: usize) -> Self {
        DynamicMatrix {
            state: MatmulState::new(n),
            workers: WorkerCube::fleet(n, p),
        }
    }

    /// Rectangular shard variant (`ni × nj × nk` task cuboid) for the
    /// hierarchical tree topology.
    pub fn rect(ni: usize, nj: usize, nk: usize, p: usize) -> Self {
        DynamicMatrix {
            state: MatmulState::rect(ni, nj, nk),
            workers: WorkerCube::fleet_rect(ni, nj, nk, p),
        }
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &MatmulState {
        &self.state
    }

    /// Read-only view of a worker (for audits).
    pub fn worker(&self, k: ProcId) -> &WorkerCube {
        &self.workers[k.idx()]
    }
}

impl Scheduler for DynamicMatrix {
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        dynamic_step(&mut self.state, &mut self.workers[k.idx()], rng, out)
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Reinserted tasks become orphans: `dynamic_step` hands each one to
        // the first requester that already owns its three blocks (zero new
        // blocks), or sweeps them up once a worker reaches full knowledge.
        for &id in ids {
            self.state.reinsert(id);
        }
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "DynamicMatrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::RandomMatrix;
    use hetsched_platform::{matmul_lower_bound, Platform, SpeedDistribution, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn completes_all_tasks() {
        let pf = Platform::from_speeds(vec![25.0, 75.0]);
        let mut rng = rng_for(0, 0);
        let (report, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicMatrix::new(10, 2), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 1000);
    }

    #[test]
    fn beats_random_on_communication() {
        let mut seed = rng_for(1, 0);
        let pf = Platform::sample(20, &SpeedDistribution::paper_default(), &mut seed);
        let lb = matmul_lower_bound(20, &pf);
        let (d, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix::new(20, 20),
            &mut rng_for(1, 1),
        );
        let (r, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            RandomMatrix::new(20, 20),
            &mut rng_for(1, 1),
        );
        assert!(
            d.normalized(lb) < r.normalized(lb),
            "dynamic {} vs random {}",
            d.normalized(lb),
            r.normalized(lb)
        );
    }

    #[test]
    fn single_worker_is_optimal() {
        // Alone, dynamic ships each of the 3n² blocks exactly once.
        let pf = Platform::from_speeds(vec![3.0]);
        let mut rng = rng_for(2, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicMatrix::new(9, 1), &mut rng);
        assert_eq!(report.total_blocks, 3 * 81);
    }

    #[test]
    fn index_sets_stay_balanced_in_pure_dynamic() {
        let pf = Platform::homogeneous(6);
        let mut rng = rng_for(3, 0);
        let (_, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicMatrix::new(15, 6), &mut rng);
        for k in pf.procs() {
            let w = sched.worker(k);
            assert_eq!(w.i_set.count(), w.j_set.count());
            assert_eq!(w.j_set.count(), w.k_set.count());
            assert!(w.i_set.count() > 0);
        }
    }
}
