//! `RandomMatrix`: the locality-oblivious baseline.

use crate::cube::WorkerCube;
use crate::state::MatmulState;
use crate::strategies::random_step;
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Allocates a uniformly random unprocessed task per request and ships the
/// missing `A`, `B`, `C` blocks.
#[derive(Clone, Debug)]
pub struct RandomMatrix {
    state: MatmulState,
    workers: Vec<WorkerCube>,
}

impl RandomMatrix {
    /// `n` blocks per dimension, `p` workers.
    pub fn new(n: usize, p: usize) -> Self {
        RandomMatrix {
            state: MatmulState::new(n),
            workers: WorkerCube::fleet(n, p),
        }
    }

    /// Rectangular shard variant (`ni × nj × nk` task cuboid) for the
    /// hierarchical tree topology.
    pub fn rect(ni: usize, nj: usize, nk: usize, p: usize) -> Self {
        RandomMatrix {
            state: MatmulState::rect(ni, nj, nk),
            workers: WorkerCube::fleet_rect(ni, nj, nk, p),
        }
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &MatmulState {
        &self.state
    }

    /// Read-only view of a worker (for audits).
    pub fn worker(&self, k: ProcId) -> &WorkerCube {
        &self.workers[k.idx()]
    }
}

impl Scheduler for RandomMatrix {
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        random_step(&mut self.state, &mut self.workers[k.idx()], rng, out)
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Back into the uniform pool; a future random draw re-allocates
        // them, shipping only the blocks the new owner is missing.
        for &id in ids {
            self.state.reinsert(id);
        }
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "RandomMatrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::{matmul_lower_bound, Platform, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn completes_all_tasks_under_engine() {
        let pf = Platform::from_speeds(vec![10.0, 90.0]);
        let mut rng = rng_for(0, 0);
        let (report, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, RandomMatrix::new(8, 2), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 512);
    }

    #[test]
    fn communication_far_above_lower_bound() {
        let pf = Platform::homogeneous(8);
        let mut rng = rng_for(1, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, RandomMatrix::new(12, 8), &mut rng);
        let lb = matmul_lower_bound(12, &pf);
        assert!(report.normalized(lb) > 2.0);
    }

    #[test]
    fn per_task_comm_bounded_by_three() {
        let pf = Platform::homogeneous(3);
        let mut rng = rng_for(2, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, RandomMatrix::new(6, 3), &mut rng);
        assert!(report.total_blocks <= 3 * 216);
    }
}
