//! `DynamicMatrix2Phases`: data-aware opening, random end game.

use crate::cube::WorkerCube;
use crate::state::MatmulState;
use crate::strategies::{dynamic_step, random_step};
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Runs [`DynamicMatrix`](crate::DynamicMatrix) while more than `threshold`
/// tasks remain, then switches every worker to the
/// [`RandomMatrix`](crate::RandomMatrix) behaviour.
///
/// The paper's switch point is `e^{−β}·n³` remaining tasks with `β`
/// minimizing the §4.2 analytic ratio; `hetsched-analysis` computes it.
#[derive(Clone, Debug)]
pub struct DynamicMatrix2Phases {
    state: MatmulState,
    workers: Vec<WorkerCube>,
    threshold: usize,
    phase1_blocks: u64,
    phase2_blocks: u64,
    phase1_tasks: usize,
    phase2_tasks: usize,
}

impl DynamicMatrix2Phases {
    /// `n` blocks per dimension, `p` workers; switch when at most
    /// `threshold` tasks remain.
    pub fn new(n: usize, p: usize, threshold: usize) -> Self {
        DynamicMatrix2Phases {
            state: MatmulState::new(n),
            workers: WorkerCube::fleet(n, p),
            threshold,
            phase1_blocks: 0,
            phase2_blocks: 0,
            phase1_tasks: 0,
            phase2_tasks: 0,
        }
    }

    /// Rectangular shard variant (`ni × nj × nk` task cuboid) for the
    /// hierarchical tree topology; switch when at most `threshold` tasks
    /// remain.
    pub fn rect(ni: usize, nj: usize, nk: usize, p: usize, threshold: usize) -> Self {
        DynamicMatrix2Phases {
            state: MatmulState::rect(ni, nj, nk),
            workers: WorkerCube::fleet_rect(ni, nj, nk, p),
            threshold,
            phase1_blocks: 0,
            phase2_blocks: 0,
            phase1_tasks: 0,
            phase2_tasks: 0,
        }
    }

    /// [`with_beta`](Self::with_beta) over a rectangular shard: switch when
    /// `e^{−β}` of the shard's own `ni·nj·nk` tasks remain.
    pub fn rect_with_beta(ni: usize, nj: usize, nk: usize, p: usize, beta: f64) -> Self {
        assert!(beta >= 0.0, "β must be non-negative");
        let threshold = ((-beta).exp() * (ni * nj * nk) as f64).round() as usize;
        Self::rect(ni, nj, nk, p, threshold)
    }

    /// [`with_phase1_fraction`](Self::with_phase1_fraction) over a
    /// rectangular shard.
    pub fn rect_with_phase1_fraction(
        ni: usize,
        nj: usize,
        nk: usize,
        p: usize,
        fraction: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let threshold = ((1.0 - fraction) * (ni * nj * nk) as f64).round() as usize;
        Self::rect(ni, nj, nk, p, threshold)
    }

    /// Paper parameterization: switch when `e^{−β}·n³` tasks remain.
    ///
    /// Rounds to the nearest task, like
    /// [`with_phase1_fraction`](Self::with_phase1_fraction) — the two
    /// constructors agree for `fraction = 1 − e^{−β}` — so `β = 0`
    /// degenerates exactly to pure [`RandomMatrix`](crate::RandomMatrix).
    pub fn with_beta(n: usize, p: usize, beta: f64) -> Self {
        assert!(beta >= 0.0, "β must be non-negative");
        let threshold = ((-beta).exp() * (n * n * n) as f64).round() as usize;
        Self::new(n, p, threshold)
    }

    /// Process `fraction ∈ [0, 1]` of the tasks in phase 1.
    pub fn with_phase1_fraction(n: usize, p: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let threshold = ((1.0 - fraction) * (n * n * n) as f64).round() as usize;
        Self::new(n, p, threshold)
    }

    /// The switch-over threshold in remaining tasks.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// True once the end game (random phase) has begun.
    pub fn in_phase2(&self) -> bool {
        self.state.remaining() <= self.threshold
    }

    /// Blocks shipped during phase 1.
    pub fn phase1_blocks(&self) -> u64 {
        self.phase1_blocks
    }

    /// Blocks shipped during phase 2.
    pub fn phase2_blocks(&self) -> u64 {
        self.phase2_blocks
    }

    /// Tasks allocated during phase 1.
    pub fn phase1_tasks(&self) -> usize {
        self.phase1_tasks
    }

    /// Tasks allocated during phase 2.
    pub fn phase2_tasks(&self) -> usize {
        self.phase2_tasks
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &MatmulState {
        &self.state
    }
}

impl Scheduler for DynamicMatrix2Phases {
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        let worker = &mut self.workers[k.idx()];
        if self.state.remaining() > self.threshold {
            let a = dynamic_step(&mut self.state, worker, rng, out);
            self.phase1_blocks += a.blocks;
            self.phase1_tasks += a.tasks;
            a
        } else {
            let a = random_step(&mut self.state, worker, rng, out);
            self.phase2_blocks += a.blocks;
            self.phase2_tasks += a.tasks;
            a
        }
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Reinsertion can push `remaining` back over the threshold, in
        // which case the schedule legitimately drops back to phase 1. The
        // phase counters count (re-)allocations, so under failures their
        // sum exceeds `total_tasks` by the number of lost tasks.
        for &id in ids {
            self.state.reinsert(id);
        }
    }

    fn phase(&self) -> Option<u8> {
        Some(if self.in_phase2() { 2 } else { 1 })
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "DynamicMatrix2Phases"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{DynamicMatrix, RandomMatrix};
    use hetsched_platform::{matmul_lower_bound, Platform, SpeedDistribution, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn threshold_from_beta() {
        let s = DynamicMatrix2Phases::with_beta(40, 4, 3.0);
        // e^{-3}·64000 ≈ 3186.3 → 3186.
        assert_eq!(s.threshold(), 3186);
    }

    #[test]
    fn zero_threshold_degenerates_to_pure_dynamic() {
        let pf = Platform::homogeneous(4);
        let (two, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix2Phases::new(8, 4, 0),
            &mut rng_for(0, 7),
        );
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix::new(8, 4),
            &mut rng_for(0, 7),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
    }

    #[test]
    fn full_threshold_degenerates_to_pure_random() {
        let pf = Platform::homogeneous(4);
        let (two, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix2Phases::new(8, 4, 512),
            &mut rng_for(1, 7),
        );
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            RandomMatrix::new(8, 4),
            &mut rng_for(1, 7),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
    }

    #[test]
    fn beta_zero_is_pure_random() {
        // e⁰·n³ = n³: the threshold covers every task, so phase 1 never
        // runs and the schedule is block-for-block RandomMatrix.
        let s = DynamicMatrix2Phases::with_beta(8, 4, 0.0);
        assert_eq!(s.threshold(), 512);
        let pf = Platform::homogeneous(4);
        let (two, sched) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix2Phases::with_beta(8, 4, 0.0),
            &mut rng_for(21, 7),
        );
        assert_eq!(sched.phase1_tasks(), 0);
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            RandomMatrix::new(8, 4),
            &mut rng_for(21, 7),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
    }

    #[test]
    fn fraction_one_is_pure_dynamic() {
        let pf = Platform::homogeneous(4);
        let (two, sched) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix2Phases::with_phase1_fraction(8, 4, 1.0),
            &mut rng_for(22, 7),
        );
        assert_eq!(sched.threshold(), 0);
        assert_eq!(sched.phase2_tasks(), 0);
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix::new(8, 4),
            &mut rng_for(22, 7),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
    }

    #[test]
    fn beta_and_fraction_thresholds_round_identically() {
        for n in [6usize, 15, 40] {
            for beta in [0.5f64, 1.0, 3.3, 6.0] {
                let by_beta = DynamicMatrix2Phases::with_beta(n, 2, beta);
                let by_frac = DynamicMatrix2Phases::with_phase1_fraction(n, 2, 1.0 - (-beta).exp());
                assert_eq!(
                    by_beta.threshold(),
                    by_frac.threshold(),
                    "n={n} beta={beta}"
                );
            }
        }
    }

    #[test]
    fn phase_accounting_is_exhaustive() {
        let pf = Platform::from_speeds(vec![20.0, 30.0, 50.0]);
        let mut rng = rng_for(2, 0);
        let (report, sched) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix2Phases::with_beta(12, 3, 3.0),
            &mut rng,
        );
        assert_eq!(sched.phase1_tasks() + sched.phase2_tasks(), 12 * 12 * 12);
        assert_eq!(
            sched.phase1_blocks() + sched.phase2_blocks(),
            report.total_blocks
        );
        assert!(sched.phase2_tasks() > 0);
        assert!(sched.phase2_tasks() <= sched.threshold());
    }

    #[test]
    fn introspection_reports_phase_and_knowledge() {
        let mut s = DynamicMatrix2Phases::new(6, 2, 100);
        assert_eq!(s.phase(), Some(1));
        assert_eq!(s.useful_fraction(ProcId(0)), Some(0.0));
        let mut rng = rng_for(7, 0);
        let mut out = Vec::new();
        while s.remaining() > 100 {
            out.clear();
            s.on_request(ProcId(0), &mut rng, &mut out);
        }
        assert_eq!(s.phase(), Some(2));
        let f = s.useful_fraction(ProcId(0)).unwrap();
        assert!(f > 0.0 && f <= 1.0, "{f}");
        assert_eq!(s.useful_fraction(ProcId(1)), Some(0.0));
    }

    #[test]
    fn n_equals_one_works() {
        let pf = Platform::homogeneous(2);
        let (report, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicMatrix2Phases::with_beta(1, 2, 2.0),
            &mut rng_for(11, 0),
        );
        assert_eq!(report.ledger.total_tasks(), 1);
        assert_eq!(report.total_blocks, 3);
    }

    #[test]
    fn improves_on_pure_dynamic_with_good_beta() {
        let mut seed = rng_for(3, 0);
        let pf = Platform::sample(20, &SpeedDistribution::paper_default(), &mut seed);
        let lb = matmul_lower_bound(20, &pf);
        let mut dyn_sum = 0.0;
        let mut two_sum = 0.0;
        for t in 0..4u64 {
            let (d, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicMatrix::new(20, 20),
                &mut rng_for(50 + t, 0),
            );
            let (w, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicMatrix2Phases::with_beta(20, 20, 3.0),
                &mut rng_for(50 + t, 0),
            );
            dyn_sum += d.normalized(lb);
            two_sum += w.normalized(lb);
        }
        assert!(
            two_sum < dyn_sum,
            "two-phase {two_sum} should beat pure dynamic {dyn_sum}"
        );
    }
}
