//! `SortedMatrix`: lexicographic task order.

use crate::cube::WorkerCube;
use crate::state::MatmulState;
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Allocates tasks in lexicographic `(i, j, k)` order and ships missing
/// blocks. Consecutive tasks share `C[i,j]` (and often `A`/`B` rows), so it
/// communicates a little less than [`RandomMatrix`](crate::RandomMatrix)
/// while remaining oblivious to per-worker locality.
#[derive(Clone, Debug)]
pub struct SortedMatrix {
    state: MatmulState,
    workers: Vec<WorkerCube>,
    cursor: u32,
}

impl SortedMatrix {
    /// `n` blocks per dimension, `p` workers.
    pub fn new(n: usize, p: usize) -> Self {
        SortedMatrix {
            state: MatmulState::new(n),
            workers: WorkerCube::fleet(n, p),
            cursor: 0,
        }
    }

    /// Rectangular shard variant (`ni × nj × nk` task cuboid) for the
    /// hierarchical tree topology.
    pub fn rect(ni: usize, nj: usize, nk: usize, p: usize) -> Self {
        SortedMatrix {
            state: MatmulState::rect(ni, nj, nk),
            workers: WorkerCube::fleet_rect(ni, nj, nk, p),
            cursor: 0,
        }
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &MatmulState {
        &self.state
    }
}

impl Scheduler for SortedMatrix {
    fn on_request(&mut self, k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        let total = self.state.total() as u32;
        while self.cursor < total {
            let (i, j, kk) = self.state.coords(self.cursor);
            if !self.state.is_processed(i, j, kk) {
                break;
            }
            self.cursor += 1;
        }
        if self.cursor >= total {
            return Allocation::DONE;
        }
        let (i, j, kk) = self.state.coords(self.cursor);
        self.cursor += 1;
        let fresh = self.state.mark_processed(i, j, kk);
        debug_assert!(fresh);
        out.push(self.state.task_id(i, j, kk));
        let blocks = self.workers[k.idx()].acquire_task_blocks(i, j, kk);
        Allocation { tasks: 1, blocks }
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Rewind the cursor to the earliest reinserted task; the skip loop
        // in `on_request` re-walks the (processed) gap and re-allocates the
        // lost tasks in lexicographic order.
        for &id in ids {
            if self.state.reinsert(id) {
                self.cursor = self.cursor.min(id);
            }
        }
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "SortedMatrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::{Platform, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn allocates_in_lexicographic_order() {
        let mut s = SortedMatrix::new(3, 1);
        let mut rng = rng_for(0, 0);
        let mut count = 0;
        let mut expect = 0u32;
        let mut out = Vec::new();
        while s.remaining() > 0 {
            assert_eq!(s.cursor, expect);
            out.clear();
            let a = s.on_request(ProcId(0), &mut rng, &mut out);
            assert_eq!(a.tasks, 1);
            assert_eq!(out.as_slice(), &[expect]);
            expect += 1;
            count += 1;
        }
        assert_eq!(count, 27);
    }

    #[test]
    fn single_worker_total_blocks_is_3n2() {
        let n = 5;
        let pf = Platform::from_speeds(vec![2.0]);
        let mut rng = rng_for(1, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, SortedMatrix::new(n, 1), &mut rng);
        assert_eq!(report.total_blocks, 3 * (n * n) as u64);
    }

    #[test]
    fn completes_under_engine_heterogeneous() {
        let pf = Platform::from_speeds(vec![10.0, 50.0, 100.0]);
        let mut rng = rng_for(2, 0);
        let (report, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, SortedMatrix::new(7, 3), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 343);
    }
}
