//! Per-worker state for the matrix multiplication: index sets and block
//! ownership grids.

use hetsched_util::{BitGrid, OwnedSet};

/// A worker's view of the three matrices.
///
/// Two layers, because the two phases need different granularity:
///
/// * the **index sets** `I`, `J`, `K` drive the data-aware phase — the
///   worker is entitled to the sub-bricks `A[I,K]`, `B[K,J]`, `C[I,J]`;
/// * the **ownership grids** record individual blocks, which is what the
///   random phase needs (a random task may ship `A[i,k]` without `i` or `k`
///   ever joining the index sets).
///
/// The grids are the ground truth for communication accounting; the index
/// sets are a strategy-level construct on top.
#[derive(Clone, Debug)]
pub struct WorkerCube {
    /// Row index set `I`.
    pub i_set: OwnedSet,
    /// Column index set `J`.
    pub j_set: OwnedSet,
    /// Inner index set `K`.
    pub k_set: OwnedSet,
    /// Blocks of `A` on the worker, indexed `(i, k)`.
    pub owns_a: BitGrid,
    /// Blocks of `B` on the worker, indexed `(k, j)`.
    pub owns_b: BitGrid,
    /// Blocks of `C` the worker has contributed to, indexed `(i, j)`.
    pub owns_c: BitGrid,
}

impl WorkerCube {
    /// Fresh worker holding nothing.
    pub fn new(n: usize) -> Self {
        Self::rect(n, n, n)
    }

    /// Fresh worker over an `ni × nj × nk` task cuboid (a hierarchy shard):
    /// `A` is `ni × nk`, `B` is `nk × nj`, `C` is `ni × nj`.
    pub fn rect(ni: usize, nj: usize, nk: usize) -> Self {
        WorkerCube {
            i_set: OwnedSet::new(ni),
            j_set: OwnedSet::new(nj),
            k_set: OwnedSet::new(nk),
            owns_a: BitGrid::new(ni, nk),
            owns_b: BitGrid::new(nk, nj),
            owns_c: BitGrid::new(ni, nj),
        }
    }

    /// Per-worker fleet constructor.
    pub fn fleet(n: usize, p: usize) -> Vec<WorkerCube> {
        (0..p).map(|_| WorkerCube::new(n)).collect()
    }

    /// [`rect`](Self::rect) fleet constructor.
    pub fn fleet_rect(ni: usize, nj: usize, nk: usize, p: usize) -> Vec<WorkerCube> {
        (0..p).map(|_| WorkerCube::rect(ni, nj, nk)).collect()
    }

    /// Ships the blocks of one task `T(i,j,k)` that are missing; returns
    /// how many blocks that took (0–3). Used by the random/sorted
    /// strategies and phase 2.
    pub fn acquire_task_blocks(&mut self, i: usize, j: usize, k: usize) -> u64 {
        let mut blocks = 0;
        if self.owns_a.insert(i, k) {
            blocks += 1;
        }
        if self.owns_b.insert(k, j) {
            blocks += 1;
        }
        if self.owns_c.insert(i, j) {
            blocks += 1;
        }
        blocks
    }

    /// Total blocks of `A`, `B`, `C` on the worker.
    pub fn total_blocks(&self) -> usize {
        self.owns_a.count_ones() + self.owns_b.count_ones() + self.owns_c.count_ones()
    }

    /// Fraction of all `3n²` matrix blocks this worker owns — the knowledge
    /// state the analysis evolves per worker. Probes report it per sample.
    pub fn knowledge_fraction(&self) -> f64 {
        let total = self.owns_a.total() + self.owns_b.total() + self.owns_c.total();
        self.total_blocks() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_task_blocks_counts_missing_only() {
        let mut w = WorkerCube::new(5);
        assert_eq!(w.acquire_task_blocks(1, 2, 3), 3);
        // Same task again: everything already there.
        assert_eq!(w.acquire_task_blocks(1, 2, 3), 0);
        // Shares A[1,3] with the first task (same i, k), ships B and C.
        assert_eq!(w.acquire_task_blocks(1, 4, 3), 2);
        assert_eq!(w.total_blocks(), 5);
    }

    #[test]
    fn grids_are_matrix_specific() {
        let mut w = WorkerCube::new(4);
        w.acquire_task_blocks(0, 1, 2);
        assert!(w.owns_a.contains(0, 2));
        assert!(w.owns_b.contains(2, 1));
        assert!(w.owns_c.contains(0, 1));
        assert!(!w.owns_a.contains(0, 1));
    }

    #[test]
    fn fleet_is_independent() {
        let mut fleet = WorkerCube::fleet(3, 2);
        fleet[0].acquire_task_blocks(0, 0, 0);
        assert_eq!(fleet[0].total_blocks(), 3);
        assert_eq!(fleet[1].total_blocks(), 0);
    }
}
