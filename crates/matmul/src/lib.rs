//! The matrix-multiplication kernel `C = A·B` and its dynamic scheduling
//! strategies (paper §4).
//!
//! All three matrices are split into `n × n` blocks of size `l × l`; the
//! elementary task `T(i,j,k)` performs the block update
//! `C[i,j] += A[i,k]·B[k,j]`. There are `n³` tasks; each block of `A`/`B` is
//! an input to `n` of them and each block of `C` is updated by `n`, so the
//! communication-avoiding structure is three-dimensional: a worker that
//! knows the index sets `I`, `J`, `K` holds the sub-bricks
//! `A[I,K]`, `B[K,J]`, `C[I,J]` and can run every task in `I × J × K`.
//!
//! The four strategies mirror the outer-product ones:
//! [`RandomMatrix`],
//! [`SortedMatrix`],
//! [`DynamicMatrix`] (grow `I`, `J`, `K` by one
//! random index each per request, shipping the `3(2y+1)` new boundary
//! blocks), and [`DynamicMatrix2Phases`]
//! (switch to random when fewer than `e^{−β}·n³` tasks remain).
//!
//! Block accounting counts `C` traffic like the paper does: result blocks
//! travel worker→master instead of master→worker, but only the total volume
//! matters.

pub mod cube;
pub mod state;
pub mod strategies;

pub use cube::WorkerCube;
pub use state::MatmulState;
pub use strategies::{DynamicMatrix, DynamicMatrix2Phases, RandomMatrix, SortedMatrix};
