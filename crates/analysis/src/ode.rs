//! A small fixed-step RK4 integrator.
//!
//! The paper derives the closed forms `g(x) = (1−x²)^α` and
//! `g(x) = (1−x³)^α` by solving separable ODEs analytically. We keep a
//! numerical integrator in the library for two reasons: it cross-validates
//! the closed forms (unit + property tests), and it lets the analysis
//! module be extended to task shapes whose mean-field ODE has no closed
//! solution.

/// Integrates `y' = f(x, y)` from `(x0, y0)` to `x1` with classic RK4 and
/// `steps` fixed steps. Returns `y(x1)`.
pub fn rk4<F: Fn(f64, f64) -> f64>(f: F, x0: f64, y0: f64, x1: f64, steps: usize) -> f64 {
    assert!(steps > 0);
    let h = (x1 - x0) / steps as f64;
    let mut x = x0;
    let mut y = y0;
    for _ in 0..steps {
        let k1 = f(x, y);
        let k2 = f(x + 0.5 * h, y + 0.5 * h * k1);
        let k3 = f(x + 0.5 * h, y + 0.5 * h * k2);
        let k4 = f(x + h, y + h * k3);
        y += (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        x += h;
    }
    y
}

/// Integrates and returns the whole trajectory at `steps + 1` sample
/// points (inclusive of both ends).
pub fn rk4_trajectory<F: Fn(f64, f64) -> f64>(
    f: F,
    x0: f64,
    y0: f64,
    x1: f64,
    steps: usize,
) -> Vec<(f64, f64)> {
    assert!(steps > 0);
    let h = (x1 - x0) / steps as f64;
    let mut out = Vec::with_capacity(steps + 1);
    let mut x = x0;
    let mut y = y0;
    out.push((x, y));
    for _ in 0..steps {
        let k1 = f(x, y);
        let k2 = f(x + 0.5 * h, y + 0.5 * h * k1);
        let k3 = f(x + 0.5 * h, y + 0.5 * h * k2);
        let k4 = f(x + h, y + h * k3);
        y += (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        x += h;
        out.push((x, y));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_decay() {
        // y' = −y, y(0) = 1 → y(1) = e^{−1}.
        let y = rk4(|_, y| -y, 0.0, 1.0, 1.0, 100);
        assert!((y - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn linear_growth() {
        // y' = 2x → y(3) = 9 from y(0)=0 (RK4 is exact on polynomials ≤ 3).
        let y = rk4(|x, _| 2.0 * x, 0.0, 0.0, 3.0, 10);
        assert!((y - 9.0).abs() < 1e-12);
    }

    #[test]
    fn outer_g_ode_matches_closed_form() {
        // g'/g = −2xα/(1−x²), g(0)=1 → g(x) = (1−x²)^α.
        for &alpha in &[0.5, 1.0, 5.0, 19.0] {
            let f = |x: f64, g: f64| -2.0 * x * alpha / (1.0 - x * x) * g;
            for &x_end in &[0.1, 0.3, 0.6] {
                let num = rk4(f, 0.0, 1.0, x_end, 2000);
                let exact = (1.0 - x_end * x_end).powf(alpha);
                assert!(
                    (num - exact).abs() < 1e-6,
                    "α={alpha}, x={x_end}: {num} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn matmul_g_ode_matches_closed_form() {
        // g'/g = −3x²α/(1−x³), g(0)=1 → g(x) = (1−x³)^α.
        for &alpha in &[1.0, 9.0, 99.0] {
            let f = |x: f64, g: f64| -3.0 * x * x * alpha / (1.0 - x * x * x) * g;
            for &x_end in &[0.1, 0.25, 0.5] {
                let num = rk4(f, 0.0, 1.0, x_end, 2000);
                let exact = (1.0 - x_end.powi(3)).powf(alpha);
                assert!(
                    (num - exact).abs() < 1e-6,
                    "α={alpha}, x={x_end}: {num} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn trajectory_endpoints() {
        let traj = rk4_trajectory(|_, y| -y, 0.0, 1.0, 2.0, 50);
        assert_eq!(traj.len(), 51);
        assert_eq!(traj[0], (0.0, 1.0));
        let (x_end, y_end) = traj[50];
        assert!((x_end - 2.0).abs() < 1e-12);
        assert!((y_end - (-2.0f64).exp()).abs() < 1e-7);
    }

    #[test]
    fn trajectory_last_matches_scalar() {
        let f = |x: f64, y: f64| x * y;
        let scalar = rk4(f, 0.0, 1.0, 1.5, 64);
        let traj = rk4_trajectory(f, 0.0, 1.0, 1.5, 64);
        assert_eq!(traj.last().unwrap().1, scalar);
    }
}
