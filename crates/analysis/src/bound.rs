//! Admission-time makespan bound for whole experiments.
//!
//! The scheduler daemon (`hetsched serve`) ranks queued jobs under its
//! shortest-predicted-first policy without running them. The prediction is
//! the classic two-resource lower bound: a run can finish no earlier than
//! its compute bound (total work over aggregate speed, the makespan a
//! perfectly balanced allocation would reach) and no earlier than its
//! communication bound (the kernel's input-volume lower bound over the
//! master's outbound bandwidth). Both terms are plain numbers, so the hook
//! stays free of any dependency on the simulator or the config types —
//! callers feed it whatever platform/kernel quantities they already have.

/// Lower bound on the makespan of a run that must compute `total_tasks`
/// unit tasks on workers of aggregate speed `total_speed`, after shipping
/// at least `volume_lb` blocks over a master link of bandwidth `master_bw`
/// (`None` = unpriced/infinite network, which drops the communication
/// term).
///
/// Returns `max(total_tasks / total_speed, volume_lb / master_bw)`.
///
/// # Panics
///
/// If `total_speed` is not positive, or any argument is negative or
/// non-finite.
pub fn makespan_bound(
    total_tasks: f64,
    total_speed: f64,
    volume_lb: f64,
    master_bw: Option<f64>,
) -> f64 {
    assert!(
        total_tasks.is_finite() && total_tasks >= 0.0,
        "task count must be non-negative and finite"
    );
    assert!(
        total_speed.is_finite() && total_speed > 0.0,
        "aggregate speed must be positive and finite"
    );
    assert!(
        volume_lb.is_finite() && volume_lb >= 0.0,
        "volume lower bound must be non-negative and finite"
    );
    let compute = total_tasks / total_speed;
    match master_bw {
        Some(bw) => {
            assert!(
                bw.is_finite() && bw > 0.0,
                "master bandwidth must be positive and finite"
            );
            compute.max(volume_lb / bw)
        }
        None => compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_dominates_without_a_link() {
        assert_eq!(makespan_bound(100.0, 20.0, 1e9, None), 5.0);
    }

    #[test]
    fn slower_link_flips_the_binding_constraint() {
        // Compute bound 5.0; comm bound 200/100 = 2.0 stays under it...
        assert_eq!(makespan_bound(100.0, 20.0, 200.0, Some(100.0)), 5.0);
        // ...until the link slows down: 200/10 = 20.0 dominates.
        assert_eq!(makespan_bound(100.0, 20.0, 200.0, Some(10.0)), 20.0);
    }

    #[test]
    fn monotone_in_problem_size() {
        let small = makespan_bound(100.0, 20.0, 40.0, Some(8.0));
        let large = makespan_bound(400.0, 20.0, 80.0, Some(8.0));
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "aggregate speed")]
    fn zero_speed_rejected() {
        let _ = makespan_bound(1.0, 0.0, 0.0, None);
    }
}
