//! Analytic model of `DynamicMatrix2Phases` (paper §4.2).

use crate::optimize::minimize_unimodal;
use crate::outer::BETA_RANGE;
use hetsched_platform::Platform;

/// The matrix-multiplication analytic model for one concrete platform and
/// problem size. Mirrors [`OuterAnalysis`](crate::OuterAnalysis) with the
/// cube geometry: knowledge fraction `x` controls `(1 − x³)` residues,
/// switch at `x_k³ = β·rs_k − (β²/2)·rs_k²`, lower bound `3n²·Σrs^{2/3}`.
#[derive(Clone, Debug)]
pub struct MatmulAnalysis {
    rs: Vec<f64>,
    n: usize,
    /// `Σ rs^{2/3}`.
    s23: f64,
    /// `Σ rs^{5/3}`.
    s53: f64,
}

impl MatmulAnalysis {
    /// Model for a concrete platform.
    pub fn new(platform: &Platform, n: usize) -> Self {
        Self::from_relative_speeds(platform.relative_speeds(), n)
    }

    /// Model from relative speeds directly.
    pub fn from_relative_speeds(rs: Vec<f64>, n: usize) -> Self {
        assert!(!rs.is_empty());
        let sum: f64 = rs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "relative speeds must sum to 1");
        let s23 = rs.iter().map(|r| r.powf(2.0 / 3.0)).sum();
        let s53 = rs.iter().map(|r| r.powf(5.0 / 3.0)).sum();
        MatmulAnalysis { rs, n, s23, s53 }
    }

    /// Model for `p` homogeneous processors.
    pub fn homogeneous(p: usize, n: usize) -> Self {
        Self::from_relative_speeds(vec![1.0 / p as f64; p], n)
    }

    /// Blocks per dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of processors in the model.
    pub fn p(&self) -> usize {
        self.rs.len()
    }

    /// Lemma 7: fraction of the non-brick domain unprocessed when a
    /// processor of exponent `alpha` knows index sets of fractional size
    /// `x`.
    pub fn g(x: f64, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&x));
        (1.0 - x * x * x).powf(alpha)
    }

    /// Lemma 8 (normalized): `t_k(x)·Σs_i / n³ = 1 − (1−x³)^{α_k+1}`.
    pub fn t_fraction(x: f64, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&x));
        1.0 - (1.0 - x * x * x).powf(alpha + 1.0)
    }

    /// Inverse of Lemma 8: the knowledge fraction at normalized time
    /// `τ = t·Σs_i / n³`: `x = (1 − (1−τ)^{1/(α+1)})^{1/3}`.
    pub fn x_at_time(tau: f64, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&tau));
        (1.0 - (1.0 - tau).powf(1.0 / (alpha + 1.0))).cbrt()
    }

    /// The switch point: solving Lemma 8 exactly at
    /// `t·Σs_i = n³(1 − e^{−β})` gives `x_k³ = 1 − e^{−β·rs_k}`; the
    /// paper's `x_k³ = β·rs_k − (β²/2)·rs_k²` is its second-order Taylor
    /// expansion (see the outer-product analogue for why the exact form is
    /// preferred: monotone in β, always in `[0, 1]`).
    pub fn switch_x(&self, k: usize, beta: f64) -> f64 {
        let rs = self.rs[k];
        (1.0 - (-beta * rs).exp()).cbrt()
    }

    /// The paper's second-order switch point, clamped to `[0, 1]`.
    pub fn switch_x_second_order(&self, k: usize, beta: f64) -> f64 {
        let rs = self.rs[k];
        let x3 = (beta * rs - 0.5 * beta * beta * rs * rs).clamp(0.0, 1.0);
        x3.cbrt()
    }

    /// Phase-1 communication ratio (to `LB = 3n²·Σrs^{2/3}`), exact in
    /// `x_k`: each processor has received `3·x_k²·n²` blocks by the switch.
    pub fn phase1_ratio(&self, beta: f64) -> f64 {
        let sum_x2: f64 = (0..self.rs.len())
            .map(|k| {
                let x = self.switch_x(k, beta);
                x * x
            })
            .sum();
        sum_x2 / self.s23
    }

    /// Phase-2 communication ratio (the Lemma 5 analogue): `e^{−β}·n³`
    /// tasks remain and worker `k` handles a share `rs_k`. A phase-2 task
    /// is drawn *uniformly* from the unprocessed pool; each of its three
    /// blocks lies in the worker's owned `x·n × x·n` grids with probability
    /// `x²`, so the expected cost is `3(1 − x_k²)` blocks per task. (The
    /// earlier `3(1−x²)/(1−x³)` form conditioned on the task being unknown
    /// to the worker — the dynamic-phase cost — and overestimated the
    /// random end-game at small β.)
    pub fn phase2_ratio(&self, beta: f64) -> f64 {
        let weighted: f64 = (0..self.rs.len())
            .map(|k| {
                let x = self.switch_x(k, beta);
                self.rs[k] * (1.0 - x * x)
            })
            .sum();
        (-beta).exp() * self.n as f64 * weighted / self.s23
    }

    /// Total communication ratio as a function of β (exact form; the
    /// figure "Analysis" curves plot this).
    pub fn ratio(&self, beta: f64) -> f64 {
        self.phase1_ratio(beta) + self.phase2_ratio(beta)
    }

    /// The corrected first-order closed form (§4.2 with the middle-term
    /// coefficient fixed to 1/3 — see crate docs):
    ///
    /// ```text
    /// β^{2/3} − (β^{5/3}/3)·Σrs^{5/3}/Σrs^{2/3}
    ///        + e^{−β}·n·(1 − β^{2/3}·Σrs^{5/3})/Σrs^{2/3}
    /// ```
    pub fn ratio_first_order(&self, beta: f64) -> f64 {
        let n = self.n as f64;
        beta.powf(2.0 / 3.0) - beta.powf(5.0 / 3.0) / 3.0 * self.s53 / self.s23
            + (-beta).exp() * n * (1.0 - beta.powf(2.0 / 3.0) * self.s53) / self.s23
    }

    /// Minimizes [`ratio`](Self::ratio) over [`BETA_RANGE`].
    pub fn optimal_beta(&self) -> (f64, f64) {
        minimize_unimodal(|b| self.ratio(b), BETA_RANGE.0, BETA_RANGE.1, 1e-6)
    }

    /// Minimizes the first-order form instead (paper-faithful variant).
    pub fn optimal_beta_first_order(&self) -> (f64, f64) {
        minimize_unimodal(
            |b| self.ratio_first_order(b),
            BETA_RANGE.0,
            BETA_RANGE.1,
            1e-6,
        )
    }

    /// Predicted absolute communication volume (blocks) at parameter β.
    pub fn predicted_volume(&self, beta: f64) -> f64 {
        self.ratio(beta) * 3.0 * (self.n * self.n) as f64 * self.s23
    }

    /// Number of tasks predicted to remain when phase 2 starts.
    pub fn phase2_tasks(&self, beta: f64) -> f64 {
        (-beta).exp() * (self.n * self.n * self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::rk4;
    use hetsched_platform::SpeedDistribution;
    use hetsched_util::rng::rng_for;

    #[test]
    fn g_matches_its_ode() {
        let alpha = 99.0; // p = 100 homogeneous
        let ode = |x: f64, g: f64| -3.0 * x * x * alpha / (1.0 - x * x * x) * g;
        for &x in &[0.05, 0.15, 0.3] {
            let num = rk4(ode, 0.0, 1.0, x, 4000);
            assert!((num - MatmulAnalysis::g(x, alpha)).abs() < 1e-7);
        }
    }

    #[test]
    fn homogeneous_beta_matches_paper_4_3() {
        // §4.3 / Fig. 11: for p = 100, n = 40 the analysis optimum is
        // β = 2.95 (2.92 for the homogeneous approximation), with minimum
        // normalized communication ≈ 2.4.
        let model = MatmulAnalysis::homogeneous(100, 40);
        let (beta_fo, _) = model.optimal_beta_first_order();
        assert!(
            (beta_fo - 2.92).abs() < 0.2,
            "first-order β_hom = {beta_fo}, paper says ≈2.92"
        );
        let (beta, ratio) = model.optimal_beta();
        assert!((2.3..3.6).contains(&beta), "exact-form β = {beta}");
        assert!((2.0..2.8).contains(&ratio), "ratio at optimum = {ratio}");
    }

    #[test]
    fn exact_and_first_order_agree_for_moderate_p() {
        let model = MatmulAnalysis::homogeneous(200, 100);
        for &b in &[2.0, 3.0, 5.0] {
            let e = model.ratio(b);
            let f = model.ratio_first_order(b);
            assert!(
                (e - f).abs() / e < 0.05,
                "β={b}: exact {e} vs first-order {f}"
            );
        }
    }

    #[test]
    fn heterogeneous_beta_close_to_homogeneous() {
        let n = 40;
        let hom = MatmulAnalysis::homogeneous(100, n).optimal_beta().0;
        for seed in 0..5u64 {
            let pf = Platform::sample(
                100,
                &SpeedDistribution::paper_default(),
                &mut rng_for(seed, 4),
            );
            let het = MatmulAnalysis::new(&pf, n).optimal_beta().0;
            assert!(
                (het - hom).abs() / hom < 0.10,
                "seed {seed}: β_het = {het} vs β_hom = {hom}"
            );
        }
    }

    #[test]
    fn switch_x_values() {
        let model = MatmulAnalysis::homogeneous(100, 40);
        let x = model.switch_x(0, 2.92);
        // Exact: x³ = 1 − e^{−0.0292}.
        assert!((x.powi(3) - (1.0 - (-0.0292f64).exp())).abs() < 1e-12);
        // Second-order Taylor agrees closely at β·rs = 0.0292.
        let x2 = model.switch_x_second_order(0, 2.92);
        assert!((x - x2).abs() / x < 1e-4);
        assert!((0.0..=1.0).contains(&model.switch_x(0, 200.0)));
    }

    #[test]
    fn x_at_time_inverts_t_fraction() {
        for &alpha in &[4.0, 49.0] {
            for i in 1..10 {
                let x = i as f64 / 10.0;
                let tau = MatmulAnalysis::t_fraction(x, alpha);
                if tau > 1.0 - 1e-9 {
                    continue; // saturated: not invertible in f64
                }
                let back = MatmulAnalysis::x_at_time(tau, alpha);
                assert!((back - x).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn small_beta_pays_in_phase2() {
        let model = MatmulAnalysis::homogeneous(100, 40);
        assert!(model.ratio(0.3) > model.ratio(2.9) * 1.5);
    }

    #[test]
    fn large_beta_approaches_pure_dynamic_cost() {
        // ratio(β) → β^{2/3}·(1 − …) as the end game vanishes.
        let model = MatmulAnalysis::homogeneous(100, 40);
        let r = model.ratio(10.0);
        assert!((r - 10.0f64.powf(2.0 / 3.0)).abs() < 0.4, "got {r}");
    }

    #[test]
    fn t_fraction_boundaries() {
        assert_eq!(MatmulAnalysis::t_fraction(0.0, 50.0), 0.0);
        assert!((MatmulAnalysis::t_fraction(1.0, 50.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_volume_consistent_with_ratio() {
        let pf = Platform::from_speeds(vec![20.0, 80.0]);
        let model = MatmulAnalysis::new(&pf, 30);
        let lb = hetsched_platform::matmul_lower_bound(30, &pf);
        assert!((model.predicted_volume(3.0) - model.ratio(3.0) * lb).abs() < 1e-9);
    }
}
