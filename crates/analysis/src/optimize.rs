//! Scalar minimization: coarse grid bracketing + golden-section refinement.
//!
//! The β-ratio curves are smooth and unimodal on the domain of interest but
//! can be very flat near the optimum (the paper's Fig. 6 plateau), so we
//! first grid-scan to bracket the global minimum and then refine with
//! golden-section search inside the bracket.

/// Golden ratio conjugate.
const INV_PHI: f64 = 0.618_033_988_749_894_8;

/// Minimizes `f` on `[lo, hi]`. Returns `(argmin, min)`.
///
/// `f` must be continuous; unimodality is only needed *within one grid
/// cell* thanks to the bracketing scan, which makes the routine robust to
/// mild multi-modality away from the optimum.
pub fn minimize_unimodal<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(hi > lo, "empty interval [{lo}, {hi}]");
    assert!(tol > 0.0);

    // 1. Coarse scan.
    const GRID: usize = 64;
    let step = (hi - lo) / GRID as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::INFINITY;
    for i in 0..=GRID {
        let x = lo + step * i as f64;
        let v = f(x);
        if v < best_v {
            best_v = v;
            best_i = i;
        }
    }
    let mut a = lo + step * best_i.saturating_sub(1) as f64;
    let mut b = (lo + step * (best_i + 1) as f64).min(hi);

    // 2. Golden-section refinement.
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let (x, v) = minimize_unimodal(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0, 1e-9);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-10);
    }

    #[test]
    fn boundary_minimum_left() {
        let (x, _) = minimize_unimodal(|x| x, 2.0, 5.0, 1e-9);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn boundary_minimum_right() {
        let (x, _) = minimize_unimodal(|x| -x, 2.0, 5.0, 1e-9);
        assert!((x - 5.0).abs() < 1e-6);
    }

    #[test]
    fn flat_plateau_still_converges() {
        // f is constant on [3,4]; any answer in the plateau is acceptable.
        let f = |x: f64| (x - 3.0).max(0.0).powi(2) * ((x - 4.0).max(0.0)).signum().max(0.0);
        let (x, v) = minimize_unimodal(f, 0.0, 10.0, 1e-6);
        assert!(v <= 1e-9);
        assert!((0.0..=10.0).contains(&x));
    }

    #[test]
    fn grid_bracketing_escapes_local_min() {
        // Shallow local minimum at x=1, global at x=7.
        let f = |x: f64| {
            let local = (x - 1.0).powi(2) + 0.5;
            let global = (x - 7.0).powi(2) * 0.5;
            local.min(global)
        };
        let (x, _) = minimize_unimodal(f, 0.0, 10.0, 1e-8);
        assert!((x - 7.0).abs() < 1e-4, "found {x}");
    }

    #[test]
    fn paper_like_curve() {
        // √β + c·e^{-β}·n shape: analytic optimum at β = ln(2·c·n·√β)...
        // just check d/dβ vanishes numerically at the reported argmin.
        let n = 100.0;
        let c = 0.25;
        let f = |b: f64| b.sqrt() + c * (-b).exp() * n;
        let (x, _) = minimize_unimodal(f, 0.25, 16.0, 1e-10);
        let h = 1e-6;
        let deriv = (f(x + h) - f(x - h)) / (2.0 * h);
        assert!(deriv.abs() < 1e-4, "derivative at optimum: {deriv}");
    }
}
