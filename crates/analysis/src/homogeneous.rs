//! The §3.6 speed-agnostic β approximation.
//!
//! The optimal β formally depends on the power sums of the relative speeds,
//! but the paper observes (and our tests confirm) that it deviates by a few
//! percent at most across speed distributions with the same `p` and `n`.
//! A runtime can therefore pick β knowing only the matrix size and the
//! number of processors — no speed estimation required. These helpers are
//! that interface.

use crate::matmul::MatmulAnalysis;
use crate::outer::OuterAnalysis;

/// Optimal β for the outer product assuming homogeneous speeds — the value
/// a speed-agnostic runtime should use for `DynamicOuter2Phases` with `p`
/// processors and `n` blocks per vector.
pub fn beta_homogeneous_outer(p: usize, n: usize) -> f64 {
    OuterAnalysis::homogeneous(p, n).optimal_beta().0
}

/// Optimal β for the matrix multiplication assuming homogeneous speeds.
pub fn beta_homogeneous_matmul(p: usize, n: usize) -> f64 {
    MatmulAnalysis::homogeneous(p, n).optimal_beta().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_grows_with_n() {
        // More tasks make the end game relatively costlier: switch later
        // (larger β, smaller remaining fraction).
        let b100 = beta_homogeneous_outer(20, 100);
        let b1000 = beta_homogeneous_outer(20, 1000);
        assert!(b1000 > b100, "{b1000} ≤ {b100}");
    }

    #[test]
    fn beta_in_paper_observed_interval() {
        // §3.6: for p ∈ [10, 1000], n ∈ [max(10, √p), 1000], the paper's
        // first-order optimum ranges over [1, 6.2]; the exact form runs
        // slightly higher at the small-p/large-n corner (β ≈ 7.5 for
        // p = 10, n = 1000), hence the widened check.
        for &(p, n) in &[(10, 10), (10, 1000), (100, 100), (1000, 1000), (20, 100)] {
            let b = beta_homogeneous_outer(p, n);
            assert!(
                (0.5..9.0).contains(&b),
                "β = {b} out of expected range for p={p}, n={n}"
            );
        }
    }

    #[test]
    fn matmul_beta_in_sane_interval() {
        for &(p, n) in &[(50, 40), (100, 40), (100, 100), (300, 100)] {
            let b = beta_homogeneous_matmul(p, n);
            assert!(
                (0.5..7.5).contains(&b),
                "β = {b} out of expected range for p={p}, n={n}"
            );
        }
    }

    #[test]
    fn headline_values() {
        let bo = beta_homogeneous_outer(20, 100);
        assert!((3.4..4.8).contains(&bo), "outer β_hom(20,100) = {bo}");
        let bm = beta_homogeneous_matmul(100, 40);
        assert!((2.3..3.6).contains(&bm), "matmul β_hom(100,40) = {bm}");
    }
}
