//! Analytic model of `DynamicOuter2Phases` (paper §3.3).

use crate::optimize::minimize_unimodal;
use hetsched_platform::{Platform, ProcId};

/// Domain of β considered by the optimizer. The paper observes optima in
/// `[1, 6.2]` across its whole parameter sweep; the wider interval guards
/// unusual configurations.
pub const BETA_RANGE: (f64, f64) = (0.25, 16.0);

/// The outer-product analytic model for one concrete platform and problem
/// size.
///
/// # Examples
///
/// Pick the two-phase threshold for a platform (paper §3.3/§3.6):
///
/// ```
/// use hetsched_analysis::OuterAnalysis;
///
/// // 20 homogeneous workers, 100×100 block tasks — the paper's Fig. 6
/// // setting, where it reports β_hom = 4.17.
/// let model = OuterAnalysis::homogeneous(20, 100);
/// let (beta, predicted_ratio) = model.optimal_beta();
/// assert!((3.5..5.0).contains(&beta));
/// assert!(predicted_ratio < 2.5);
/// // Switch to the random phase when e^{−β}·n² tasks remain:
/// let threshold = model.phase2_tasks(beta) as usize;
/// assert!(threshold < 200);
/// ```
#[derive(Clone, Debug)]
pub struct OuterAnalysis {
    /// Relative speeds `rs_k` (sum to 1).
    rs: Vec<f64>,
    /// Blocks per vector.
    n: usize,
    /// `Σ rs^{1/2}` — the lower-bound power sum.
    s12: f64,
    /// `Σ rs^{3/2}` — the correction power sum.
    s32: f64,
}

impl OuterAnalysis {
    /// Model for a concrete platform.
    pub fn new(platform: &Platform, n: usize) -> Self {
        Self::from_relative_speeds(platform.relative_speeds(), n)
    }

    /// Model from relative speeds directly.
    pub fn from_relative_speeds(rs: Vec<f64>, n: usize) -> Self {
        assert!(!rs.is_empty());
        let sum: f64 = rs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "relative speeds must sum to 1");
        let s12 = rs.iter().map(|r| r.sqrt()).sum();
        let s32 = rs.iter().map(|r| r.powf(1.5)).sum();
        OuterAnalysis { rs, n, s12, s32 }
    }

    /// Model for `p` homogeneous processors (the §3.6 speed-agnostic
    /// approximation).
    pub fn homogeneous(p: usize, n: usize) -> Self {
        Self::from_relative_speeds(vec![1.0 / p as f64; p], n)
    }

    /// Blocks per vector.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of processors in the model.
    pub fn p(&self) -> usize {
        self.rs.len()
    }

    /// Lemma 1: fraction of the "L"-shape unprocessed when a processor of
    /// exponent `alpha` knows a fraction `x` of each vector.
    pub fn g(x: f64, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&x));
        (1.0 - x * x).powf(alpha)
    }

    /// Lemma 2 (normalized): `t_k(x)·Σs_i / n²  =  1 − (1−x²)^{α_k+1}`.
    pub fn t_fraction(x: f64, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&x));
        1.0 - (1.0 - x * x).powf(alpha + 1.0)
    }

    /// Inverse of Lemma 2: the knowledge fraction `x` a processor of
    /// exponent `alpha` has reached when the *normalized* time
    /// `τ = t·Σs_i / n²` has elapsed: `x = √(1 − (1−τ)^{1/(α+1)})`.
    pub fn x_at_time(tau: f64, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&tau));
        (1.0 - (1.0 - tau).powf(1.0 / (alpha + 1.0))).sqrt()
    }

    /// The switch point: the fraction `x_k` of blocks processor `k` knows
    /// when phase 1 ends at `t·Σs_i = n²(1 − e^{−β})`.
    ///
    /// Solving Lemma 2 exactly: `(1−x_k²)^{α_k+1} = e^{−β}` with
    /// `α_k + 1 = 1/rs_k`, hence `x_k² = 1 − e^{−β·rs_k}`. The paper's
    /// `x_k² = β·rs_k − (β²/2)·rs_k²` (Lemma 3) is the second-order Taylor
    /// expansion of this; the exact form is monotone in β and stays in
    /// `[0, 1]` for every β, which the expansion does not.
    pub fn switch_x(&self, k: usize, beta: f64) -> f64 {
        let rs = self.rs[k];
        (1.0 - (-beta * rs).exp()).sqrt()
    }

    /// The paper's second-order switch point (Lemma 3), clamped to `[0, 1]`.
    /// Kept for comparison with [`switch_x`](Self::switch_x); agrees to
    /// `O((β·rs)³)`.
    pub fn switch_x_second_order(&self, k: usize, beta: f64) -> f64 {
        let rs = self.rs[k];
        let x2 = (beta * rs - 0.5 * beta * beta * rs * rs).clamp(0.0, 1.0);
        x2.sqrt()
    }

    /// Phase-1 communication ratio (to `LB = 2n·Σ√rs`), exact in `x_k`:
    /// every processor has received `2·x_k·n` blocks by the switch.
    pub fn phase1_ratio(&self, beta: f64) -> f64 {
        let sum_x: f64 = (0..self.rs.len()).map(|k| self.switch_x(k, beta)).sum();
        sum_x / self.s12
    }

    /// Phase-2 communication ratio (Lemma 5): `e^{−β}·n²` tasks remain,
    /// processor `k` handles a share `rs_k` of them. A phase-2 task is drawn
    /// *uniformly* from the unprocessed pool, so its row and column are each
    /// unknown to `k` with probability `1 − x_k`: expected cost
    /// `2(1 − x_k)` blocks per task. (First-order this is the
    /// `1 − √β·Σrs^{3/2}` factor of Theorem 6; the earlier `2/(1+x_k)` form
    /// was the *dynamic*-phase per-task cost and overestimated the random
    /// end-game by up to 40% at β = 3.)
    pub fn phase2_ratio(&self, beta: f64) -> f64 {
        let weighted: f64 = (0..self.rs.len())
            .map(|k| self.rs[k] * (1.0 - self.switch_x(k, beta)))
            .sum();
        (-beta).exp() * self.n as f64 * weighted / self.s12
    }

    /// Total communication ratio as a function of β — the quantity
    /// Theorem 6 bounds, evaluated without first-order expansion. This is
    /// what the figure "Analysis" curves plot.
    pub fn ratio(&self, beta: f64) -> f64 {
        self.phase1_ratio(beta) + self.phase2_ratio(beta)
    }

    /// The corrected first-order closed form of Theorem 6
    /// (see crate docs for the two corrected typos):
    ///
    /// ```text
    /// √β − (β^{3/2}/4)·Σrs^{3/2}/Σ√rs + e^{−β}·n·(1 − √β·Σrs^{3/2})/Σ√rs
    /// ```
    pub fn ratio_first_order(&self, beta: f64) -> f64 {
        let n = self.n as f64;
        beta.sqrt() - beta.powf(1.5) / 4.0 * self.s32 / self.s12
            + (-beta).exp() * n * (1.0 - beta.sqrt() * self.s32) / self.s12
    }

    /// Minimizes [`ratio`](Self::ratio) over [`BETA_RANGE`].
    /// Returns `(β*, ratio(β*))`.
    pub fn optimal_beta(&self) -> (f64, f64) {
        minimize_unimodal(|b| self.ratio(b), BETA_RANGE.0, BETA_RANGE.1, 1e-6)
    }

    /// Minimizes the first-order form instead (paper-faithful variant).
    pub fn optimal_beta_first_order(&self) -> (f64, f64) {
        minimize_unimodal(
            |b| self.ratio_first_order(b),
            BETA_RANGE.0,
            BETA_RANGE.1,
            1e-6,
        )
    }

    /// Predicted *absolute* communication volume (in blocks) at parameter β.
    pub fn predicted_volume(&self, beta: f64) -> f64 {
        self.ratio(beta) * 2.0 * self.n as f64 * self.s12
    }

    /// Predicted volume received by processor `k` during phase 1.
    pub fn predicted_phase1_volume_for(&self, platform: &Platform, k: ProcId, beta: f64) -> f64 {
        debug_assert_eq!(platform.len(), self.rs.len());
        2.0 * self.n as f64 * self.switch_x(k.idx(), beta)
    }

    /// Number of tasks predicted to remain when phase 2 starts.
    pub fn phase2_tasks(&self, beta: f64) -> f64 {
        (-beta).exp() * (self.n * self.n) as f64
    }

    /// Lemma 2's exponent for processor `k`: `α_k + 1 = 1 / rs_k`.
    pub fn alpha(&self, k: usize) -> f64 {
        1.0 / self.rs[k] - 1.0
    }

    /// Converts absolute simulated time to the normalized time
    /// `τ = t·Σs_i / n²` the ODE model evolves in (the fraction of the
    /// total work processed, by work conservation).
    pub fn normalized_time(&self, t: f64, total_speed: f64) -> f64 {
        t * total_speed / (self.n * self.n) as f64
    }

    /// The analytic trajectory of the pure dynamic strategy on a uniform
    /// normalized-time grid of `steps + 1` points over `[0, horizon]`,
    /// `horizon ∈ (0, 1]`.
    ///
    /// Per grid point it evaluates the closed-form ODE solutions the
    /// simulator's probes can be overlaid on: the residual task fraction
    /// (`1 − τ` — the demand-driven engine is work conserving, Lemma 2),
    /// each worker's knowledge fraction `x_k(τ)`
    /// ([`x_at_time`](Self::x_at_time) with [`alpha`](Self::alpha)), and
    /// the communication volume `2n·x_k(τ)` each worker has received.
    pub fn dynamic_trajectory(&self, horizon: f64, steps: usize) -> OuterTrajectory {
        assert!(
            horizon > 0.0 && horizon <= 1.0,
            "horizon must be in (0, 1], got {horizon}"
        );
        assert!(steps > 0, "need at least one step");
        let p = self.rs.len();
        let mut tr = OuterTrajectory {
            tau: Vec::with_capacity(steps + 1),
            remaining_fraction: Vec::with_capacity(steps + 1),
            x: Vec::with_capacity(steps + 1),
            blocks: Vec::with_capacity(steps + 1),
        };
        for i in 0..=steps {
            let tau = horizon * i as f64 / steps as f64;
            let xs: Vec<f64> = (0..p)
                .map(|k| Self::x_at_time(tau, self.alpha(k)))
                .collect();
            let blocks: Vec<f64> = xs.iter().map(|x| 2.0 * self.n as f64 * x).collect();
            tr.tau.push(tau);
            tr.remaining_fraction.push(1.0 - tau);
            tr.x.push(xs);
            tr.blocks.push(blocks);
        }
        tr
    }
}

/// Analytic time series of the dynamic strategy's observable state, from
/// [`OuterAnalysis::dynamic_trajectory`]: one entry per normalized-time
/// grid point, suitable for overlaying on simulated probe samples.
#[derive(Clone, Debug)]
pub struct OuterTrajectory {
    /// Normalized times `τ = t·Σs_i / n²` of the grid.
    pub tau: Vec<f64>,
    /// Expected fraction of the `n²` tasks still unprocessed at each `τ`.
    pub remaining_fraction: Vec<f64>,
    /// `x[i][k]`: worker `k`'s knowledge fraction at grid point `i`.
    pub x: Vec<Vec<f64>>,
    /// `blocks[i][k] = 2n·x[i][k]`: blocks worker `k` has received.
    pub blocks: Vec<Vec<f64>>,
}

impl OuterTrajectory {
    /// Expected total communication volume (blocks, all workers) at grid
    /// point `i`.
    pub fn total_blocks(&self, i: usize) -> f64 {
        self.blocks[i].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::rk4;
    use hetsched_platform::SpeedDistribution;
    use hetsched_util::rng::rng_for;

    #[test]
    fn g_matches_its_ode() {
        // The closed form used everywhere is the solution of the mean-field
        // ODE; integrate the ODE numerically and compare.
        let alpha = 19.0; // p = 20 homogeneous
        let ode = |x: f64, g: f64| -2.0 * x * alpha / (1.0 - x * x) * g;
        for &x in &[0.05, 0.2, 0.4] {
            let num = rk4(ode, 0.0, 1.0, x, 4000);
            assert!((num - OuterAnalysis::g(x, alpha)).abs() < 1e-7);
        }
    }

    #[test]
    fn g_boundary_values() {
        assert_eq!(OuterAnalysis::g(0.0, 7.0), 1.0);
        assert!(OuterAnalysis::g(1.0, 7.0).abs() < 1e-12);
    }

    #[test]
    fn t_fraction_monotone_increasing() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let t = OuterAnalysis::t_fraction(x, 10.0);
            assert!(t > prev);
            prev = t;
        }
        assert_eq!(OuterAnalysis::t_fraction(0.0, 10.0), 0.0);
        assert!((OuterAnalysis::t_fraction(1.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_beta_matches_paper_3_6() {
        // §3.6 / Fig. 6: β_hom = 4.1705 for p = 20, n = 100 (first-order
        // form). Our exact form lands nearby; both must be in the paper's
        // "domain of interest" 3 ≤ β ≤ 6 with the first-order optimum
        // within 0.15 of the published value.
        let model = OuterAnalysis::homogeneous(20, 100);
        let (beta_fo, _) = model.optimal_beta_first_order();
        assert!(
            (beta_fo - 4.1705).abs() < 0.15,
            "first-order β_hom = {beta_fo}, paper says 4.1705"
        );
        let (beta, ratio) = model.optimal_beta();
        assert!((3.0..6.0).contains(&beta), "exact-form β = {beta}");
        // Fig. 6's minimum normalized communication is ≈ 2.1–2.4.
        assert!((1.8..2.6).contains(&ratio), "ratio at optimum = {ratio}");
    }

    #[test]
    fn exact_and_first_order_agree_for_moderate_p() {
        let model = OuterAnalysis::homogeneous(100, 500);
        for &b in &[2.0, 4.0, 6.0] {
            let e = model.ratio(b);
            let f = model.ratio_first_order(b);
            assert!(
                (e - f).abs() / e < 0.05,
                "β={b}: exact {e} vs first-order {f}"
            );
        }
    }

    #[test]
    fn ratio_increases_with_sqrt_beta_for_large_beta() {
        // Once the end game is negligible, ratio ≈ √β·(1 − small).
        let model = OuterAnalysis::homogeneous(50, 100);
        let r10 = model.ratio(10.0);
        let r14 = model.ratio(14.0);
        assert!(r14 > r10);
        assert!((r10 - 10.0f64.sqrt()).abs() < 0.4);
    }

    #[test]
    fn small_beta_pays_in_phase2() {
        // β → 0 leaves nearly all n² tasks to the random phase: ratio blows
        // up roughly like n/Σ√rs.
        let model = OuterAnalysis::homogeneous(20, 100);
        assert!(model.ratio(0.25) > model.ratio(4.0) * 1.5);
    }

    #[test]
    fn heterogeneous_beta_close_to_homogeneous() {
        // §3.6's headline observation: the optimal β barely depends on the
        // speed distribution. Deviation over random draws should be small.
        let n = 100;
        let hom = OuterAnalysis::homogeneous(20, n).optimal_beta().0;
        for seed in 0..5u64 {
            let pf = Platform::sample(
                20,
                &SpeedDistribution::paper_default(),
                &mut rng_for(seed, 3),
            );
            let het = OuterAnalysis::new(&pf, n).optimal_beta().0;
            assert!(
                (het - hom).abs() / hom < 0.10,
                "seed {seed}: β_het = {het} vs β_hom = {hom}"
            );
        }
    }

    #[test]
    fn workers_exceed_tasks_regime_is_sane() {
        // Promoted from a persisted proptest regression (shrunk case
        // `p = 79, n = 10, seed = 1437`): with p approaching n² the lower
        // bound is unreachable and the optimum degenerates to the β → 0
        // boundary. The optimizer must still return a finite β > 0 and a
        // ratio that never claims to beat the lower bound.
        let pf = Platform::sample(
            79,
            &SpeedDistribution::paper_default(),
            &mut rng_for(1437, 0),
        );
        let model = OuterAnalysis::new(&pf, 10);
        let (beta, ratio) = model.optimal_beta();
        assert!(beta.is_finite() && beta > 0.0, "degenerate β = {beta}");
        assert!(ratio.is_finite() && ratio >= 0.99, "ratio {ratio} below 1");
        // The boundary optimum is a true minimum over the admissible range.
        assert!(model.ratio(BETA_RANGE.0) <= model.ratio(BETA_RANGE.1));
    }

    #[test]
    fn switch_x_exact_form() {
        let model = OuterAnalysis::homogeneous(20, 100);
        let x = model.switch_x(0, 4.0);
        // x² = 1 − e^{−4/20}.
        assert!((x * x - (1.0 - (-0.2f64).exp())).abs() < 1e-12);
        // Saturates at 1 and stays valid for absurd β.
        let x_big = model.switch_x(0, 1000.0);
        assert!((0.0..=1.0).contains(&x_big));
        assert!(x_big > 0.99999);
    }

    #[test]
    fn switch_x_second_order_is_taylor_of_exact() {
        let model = OuterAnalysis::homogeneous(100, 100);
        for &b in &[1.0, 3.0, 6.0] {
            let exact = model.switch_x(0, b);
            let second = model.switch_x_second_order(0, b);
            // β·rs ≤ 0.06 here: agreement to O((β·rs)³) ≈ 1e-4 relative.
            assert!(
                (exact - second).abs() / exact < 1e-3,
                "β={b}: {exact} vs {second}"
            );
        }
        // Second-order x² = 4/20 − 8/400 = 0.18 at β=4, p=20.
        let m20 = OuterAnalysis::homogeneous(20, 100);
        assert!((m20.switch_x_second_order(0, 4.0) - 0.18f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn x_at_time_inverts_t_fraction() {
        for &alpha in &[1.0, 9.0, 99.0] {
            for i in 1..10 {
                let x = i as f64 / 10.0;
                let tau = OuterAnalysis::t_fraction(x, alpha);
                // Skip the saturated regime: for large α the closed form
                // reaches τ = 1 within f64 precision and cannot invert.
                if tau > 1.0 - 1e-9 {
                    continue;
                }
                let back = OuterAnalysis::x_at_time(tau, alpha);
                // powf at large α loses a few ulps; 1e-6 is plenty.
                assert!((back - x).abs() < 1e-6, "α={alpha}, x={x}: got {back}");
            }
        }
        assert_eq!(OuterAnalysis::x_at_time(0.0, 5.0), 0.0);
        assert!((OuterAnalysis::x_at_time(1.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn switch_x_monotone_in_beta() {
        let model = OuterAnalysis::homogeneous(10, 100);
        let mut prev = 0.0;
        for i in 1..80 {
            let x = model.switch_x(0, i as f64 * 0.25);
            assert!(x > prev, "x not monotone at β = {}", i as f64 * 0.25);
            prev = x;
        }
    }

    #[test]
    fn phase2_task_count() {
        let model = OuterAnalysis::homogeneous(10, 100);
        assert!((model.phase2_tasks(4.0) - (-4.0f64).exp() * 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_endpoints_and_monotonicity() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let model = OuterAnalysis::new(&pf, 40);
        let tr = model.dynamic_trajectory(1.0, 50);
        assert_eq!(tr.tau.len(), 51);
        assert_eq!(tr.tau[0], 0.0);
        assert_eq!(tr.remaining_fraction[0], 1.0);
        assert!((tr.tau[50] - 1.0).abs() < 1e-12);
        assert!(tr.remaining_fraction[50].abs() < 1e-12);
        // Everyone starts knowing nothing and ends knowing everything.
        assert!(tr.x[0].iter().all(|&x| x == 0.0));
        assert!(tr.x[50].iter().all(|&x| (x - 1.0).abs() < 1e-9));
        // Knowledge and volume are monotone per worker; residual decreases.
        for i in 1..=50 {
            assert!(tr.remaining_fraction[i] < tr.remaining_fraction[i - 1]);
            for k in 0..3 {
                assert!(tr.x[i][k] >= tr.x[i - 1][k]);
                assert!((tr.blocks[i][k] - 80.0 * tr.x[i][k]).abs() < 1e-9);
            }
        }
        // Faster workers know more at any interior time (α is smaller).
        let mid = &tr.x[25];
        assert!(mid[2] > mid[1] && mid[1] > mid[0]);
    }

    #[test]
    fn trajectory_matches_closed_forms_and_normalized_time() {
        let model = OuterAnalysis::homogeneous(4, 20);
        let tr = model.dynamic_trajectory(0.8, 8);
        for (i, &tau) in tr.tau.iter().enumerate() {
            let expect = OuterAnalysis::x_at_time(tau, model.alpha(0));
            for k in 0..4 {
                assert!((tr.x[i][k] - expect).abs() < 1e-12, "homogeneous x");
            }
        }
        let mid_x = OuterAnalysis::x_at_time(tr.tau[4], model.alpha(0));
        assert!((tr.total_blocks(4) - 4.0 * 2.0 * 20.0 * mid_x).abs() < 1e-9);
        // τ = t·Σs/n²: with Σs = 100 and n = 20, t = 2 ⇒ τ = 0.5.
        assert!((model.normalized_time(2.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predicted_volume_consistent_with_ratio() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let model = OuterAnalysis::new(&pf, 50);
        let lb = hetsched_platform::outer_lower_bound(50, &pf);
        let beta = 3.0;
        assert!((model.predicted_volume(beta) - model.ratio(beta) * lb).abs() < 1e-9);
    }
}
