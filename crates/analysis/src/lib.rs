//! The ODE-based analytic model of the dynamic strategies (paper §3.3 and
//! §4.2) and the β-threshold optimizer built on it.
//!
//! # What the model says
//!
//! Fix a processor `P_k` with relative speed `rs_k` and let `x` be the
//! fraction of input blocks it knows. Modelling the randomized discrete
//! process by its mean-field ODE gives, for the **outer product**:
//!
//! * `g_k(x) = (1 − x²)^{α_k}` with `α_k = (Σ_{i≠k} s_i)/s_k` — the fraction
//!   of tasks still unprocessed in the part of the grid `P_k` does not fully
//!   know (Lemma 1);
//! * `t_k(x)·Σs_i = n²·(1 − (1 − x²)^{α_k+1})` — the elapsed time when `P_k`
//!   knows a fraction `x` (Lemma 2);
//! * switching to the random phase when `x_k² = β·rs_k − (β²/2)·rs_k²`
//!   makes the switch instant `t = (n²/Σs_i)(1 − e^{−β})` identical across
//!   processors at first order (Lemma 3), leaving `e^{−β}·n²` tasks for
//!   phase 2.
//!
//! The communication ratio (to the lower bound `2n·Σ√rs`) as a function of
//! `β` then has a phase-1 and a phase-2 term; minimizing it in `β` yields
//! the switch-over threshold. The **matrix multiplication** model is the
//! cube analogue (`1 − x³`, switch at `x_k³ = β·rs_k − (β²/2)·rs_k²`,
//! `e^{−β}·n³` remaining tasks, lower bound `3n²·Σrs^{2/3}`).
//!
//! # Paper typos corrected here (see DESIGN.md §2)
//!
//! Re-deriving from the lemmas' own proofs:
//!
//! 1. Lemma 4's phase-1 ratio is `√β − (β^{3/2}/4)·Σrs^{3/2}/Σ√rs`
//!    (the printed `+` contradicts the proof's
//!    `Σ√(β·rs_k)(1 − β·rs_k/4)·n`);
//! 2. Theorem 6's phase-2 term scales with `e^{−β}·n`, not `e^{−β}·n²`
//!    (consistency with Lemma 5 after normalizing by `LB = 2nΣ√rs`);
//! 3. the matmul phase-1 correction term carries coefficient `1/3`, not 3
//!    (from `x_k² = (β·rs_k)^{2/3}(1 − β·rs_k/3)`).
//!
//! With these corrections the homogeneous optimum for `p = 20`, `n = 100`
//! lands at `β ≈ 4.15` (paper: `β_hom = 4.1705`) and for matmul
//! `p = 100`, `n = 40` at `β ≈ 2.88` (paper: 2.92) — the printed variants
//! do not reproduce either number.
//!
//! # First-order vs exact evaluation
//!
//! Each model is offered in two flavours:
//!
//! * [`outer::OuterAnalysis::ratio_first_order`] — the paper's corrected
//!   closed form, linearized in `rs_k`;
//! * [`outer::OuterAnalysis::ratio`] — the same model without the
//!   first-order expansion: the switch point solves Lemma 2/8 exactly
//!   (`x_k² = 1 − e^{−β·rs_k}`, of which the paper's
//!   `β·rs_k − (β²/2)rs_k²` is the Taylor expansion), and the per-task
//!   phase-2 cost is kept exact (`2/(1+x_k)` for the outer product,
//!   `3(1+x)/(1+x+x²)` for matmul). This is what the figure "Analysis"
//!   series use; both flavours agree to `O(1/p)`.

pub mod beta_table;
pub mod bound;
pub mod homogeneous;
pub mod matmul;
pub mod ode;
pub mod optimize;
pub mod outer;

pub use beta_table::{BetaTable, TableKernel};
pub use bound::makespan_bound;
pub use homogeneous::{beta_homogeneous_matmul, beta_homogeneous_outer};
pub use matmul::MatmulAnalysis;
pub use optimize::minimize_unimodal;
pub use outer::{OuterAnalysis, OuterTrajectory};
