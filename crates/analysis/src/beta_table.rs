//! A precomputed β lookup table for speed-agnostic runtimes (§3.6).
//!
//! The paper's §3.6 punchline is that the optimal switch threshold only
//! needs the matrix size and the processor count. A production runtime
//! would not run a golden-section minimization per kernel launch; it would
//! ship a small table of `β_hom(p, n)` and interpolate. This module is
//! that table: log-spaced grid over `(p, n)`, bilinear interpolation in
//! `(log p, log n)` — because β varies smoothly on log axes — and the
//! tests bound the interpolation error against direct optimization.

use crate::homogeneous::{beta_homogeneous_matmul, beta_homogeneous_outer};

/// Which kernel the table is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKernel {
    /// Outer product (`e^{−β}·n²` threshold).
    Outer,
    /// Matrix multiplication (`e^{−β}·n³` threshold).
    Matmul,
}

/// Precomputed `β_hom` values over a log-spaced `(p, n)` grid.
#[derive(Clone, Debug)]
pub struct BetaTable {
    kernel: TableKernel,
    ps: Vec<usize>,
    ns: Vec<usize>,
    /// `values[i][j]` = β for `(ps[i], ns[j])`.
    values: Vec<Vec<f64>>,
}

/// Log-spaced integer grid from `lo` to `hi` with `points` entries.
fn log_grid(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    assert!(points >= 2 && hi > lo && lo >= 1);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let mut out: Vec<usize> = (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            (llo + t * (lhi - llo)).exp().round() as usize
        })
        .collect();
    out.dedup();
    out
}

impl BetaTable {
    /// Builds the table for `p ∈ [p_lo, p_hi]`, `n ∈ [n_lo, n_hi]` with
    /// `points` grid lines per axis. Building runs `points²` optimizations
    /// (milliseconds each); lookups afterwards are O(log points).
    pub fn build(
        kernel: TableKernel,
        (p_lo, p_hi): (usize, usize),
        (n_lo, n_hi): (usize, usize),
        points: usize,
    ) -> Self {
        let ps = log_grid(p_lo, p_hi, points);
        let ns = log_grid(n_lo, n_hi, points);
        let values = ps
            .iter()
            .map(|&p| {
                ns.iter()
                    .map(|&n| match kernel {
                        TableKernel::Outer => beta_homogeneous_outer(p, n),
                        TableKernel::Matmul => beta_homogeneous_matmul(p, n),
                    })
                    .collect()
            })
            .collect();
        BetaTable {
            kernel,
            ps,
            ns,
            values,
        }
    }

    /// The paper's parameter domain: `p ∈ [10, 1000]`, `n ∈ [10, 1000]`.
    pub fn paper_domain(kernel: TableKernel) -> Self {
        Self::build(kernel, (10, 1000), (10, 1000), 9)
    }

    /// Which kernel this table serves.
    pub fn kernel(&self) -> TableKernel {
        self.kernel
    }

    /// Index of the grid cell containing `v` on `axis` (clamped).
    fn bracket(axis: &[usize], v: f64) -> (usize, f64) {
        let lv = v.ln();
        if lv <= (axis[0] as f64).ln() {
            return (0, 0.0);
        }
        let last = axis.len() - 1;
        if lv >= (axis[last] as f64).ln() {
            return (last - 1, 1.0);
        }
        for i in 0..last {
            let a = (axis[i] as f64).ln();
            let b = (axis[i + 1] as f64).ln();
            if lv <= b {
                return (i, (lv - a) / (b - a));
            }
        }
        unreachable!("v bracketed by the clamps above")
    }

    /// Interpolated β for `(p, n)`; clamps outside the built domain.
    pub fn lookup(&self, p: usize, n: usize) -> f64 {
        assert!(p >= 1 && n >= 1);
        let (i, tp) = Self::bracket(&self.ps, p as f64);
        let (j, tn) = Self::bracket(&self.ns, n as f64);
        let v00 = self.values[i][j];
        let v01 = self.values[i][j + 1];
        let v10 = self.values[i + 1][j];
        let v11 = self.values[i + 1][j + 1];
        let top = v00 * (1.0 - tn) + v01 * tn;
        let bot = v10 * (1.0 - tn) + v11 * tn;
        top * (1.0 - tp) + bot * tp
    }

    /// The switch threshold in remaining tasks for `(p, n)`.
    pub fn threshold(&self, p: usize, n: usize) -> usize {
        let beta = self.lookup(p, n);
        let total = match self.kernel {
            TableKernel::Outer => (n * n) as f64,
            TableKernel::Matmul => (n * n * n) as f64,
        };
        ((-beta).exp() * total).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_grid_shape() {
        let g = log_grid(10, 1000, 5);
        assert_eq!(g.first(), Some(&10));
        assert_eq!(g.last(), Some(&1000));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_exact_on_grid_points() {
        let t = BetaTable::build(TableKernel::Outer, (10, 1000), (10, 1000), 5);
        for &p in &t.ps.clone() {
            for &n in &t.ns.clone() {
                let direct = beta_homogeneous_outer(p, n);
                let table = t.lookup(p, n);
                assert!(
                    (direct - table).abs() < 1e-6,
                    "grid point ({p}, {n}): {table} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn interpolation_error_is_small_off_grid() {
        let t = BetaTable::paper_domain(TableKernel::Outer);
        for &(p, n) in &[(17usize, 70usize), (55, 240), (140, 900), (700, 33)] {
            let direct = beta_homogeneous_outer(p, n);
            let table = t.lookup(p, n);
            // The β landscape is flat near its optimum, so a small absolute
            // error is as harmless as a small relative one.
            let err = (direct - table).abs();
            assert!(
                err / direct < 0.07 || err < 0.1,
                "({p}, {n}): table {table:.3} vs direct {direct:.3}"
            );
        }
    }

    #[test]
    fn matmul_table_works_too() {
        let t = BetaTable::build(TableKernel::Matmul, (20, 400), (10, 200), 6);
        let direct = beta_homogeneous_matmul(100, 40);
        let table = t.lookup(100, 40);
        assert!(
            (direct - table).abs() / direct < 0.05,
            "table {table:.3} vs direct {direct:.3}"
        );
        assert_eq!(t.kernel(), TableKernel::Matmul);
    }

    #[test]
    fn clamps_outside_domain() {
        let t = BetaTable::build(TableKernel::Outer, (10, 100), (10, 100), 4);
        let inside = t.lookup(100, 100);
        let outside = t.lookup(5000, 5000);
        // Clamped lookups return the corner value, never extrapolate wild.
        assert!((outside - inside).abs() < 1.0);
        assert!(outside.is_finite());
    }

    #[test]
    fn threshold_matches_beta() {
        let t = BetaTable::build(TableKernel::Outer, (10, 100), (50, 200), 4);
        let beta = t.lookup(20, 100);
        assert_eq!(
            t.threshold(20, 100),
            ((-beta).exp() * 10_000.0).floor() as usize
        );
    }

    #[test]
    fn beta_monotone_in_n_along_table() {
        let t = BetaTable::paper_domain(TableKernel::Outer);
        let b_small = t.lookup(50, 20);
        let b_large = t.lookup(50, 900);
        assert!(b_large > b_small);
    }
}
