//! Communication and work accounting.

use hetsched_platform::ProcId;

/// Per-worker ledger of blocks received and tasks computed.
///
/// Under fault injection the ledger additionally tracks, per worker:
///
/// * `lost`: tasks the worker had been allocated but never completed
///   because it failed (they return to the pool and are re-allocated);
/// * `reshipped`: blocks shipped to this worker for batches containing at
///   least one re-allocated task — the communication overhead of recovery,
///   at batch granularity (a batch mixing fresh and re-allocated tasks
///   counts in full).
///
/// Under a priced network model (`hetsched-net`) it additionally tracks:
///
/// * `wait`: time the worker sat idle waiting for its next batch to clear
///   the master link (zero under the infinite network);
/// * `wasted`: blocks the master transferred (or was transferring) to this
///   worker that were never computed on because the worker failed —
///   bandwidth spent on a corpse;
/// * `returned`: result (C-block) volume the worker wrote back to the
///   master, priced on the shared link when return-path pricing is enabled
///   (kept separate from `blocks`, which counts input traffic only, so the
///   lower-bound comparison stays meaningful).
#[derive(Clone, Debug)]
pub struct CommLedger {
    blocks: Vec<u64>,
    tasks: Vec<u64>,
    busy: Vec<f64>,
    requests: Vec<u64>,
    lost: Vec<u64>,
    reshipped: Vec<u64>,
    wait: Vec<f64>,
    wasted: Vec<u64>,
    returned: Vec<u64>,
}

impl CommLedger {
    /// Ledger for `p` workers.
    pub fn new(p: usize) -> Self {
        CommLedger {
            blocks: vec![0; p],
            tasks: vec![0; p],
            busy: vec![0.0; p],
            requests: vec![0; p],
            lost: vec![0; p],
            reshipped: vec![0; p],
            wait: vec![0.0; p],
            wasted: vec![0; p],
            returned: vec![0; p],
        }
    }

    /// Records one satisfied request for worker `k`.
    pub fn record(&mut self, k: ProcId, tasks: usize, blocks: u64, busy_time: f64) {
        self.blocks[k.idx()] += blocks;
        self.tasks[k.idx()] += tasks as u64;
        self.busy[k.idx()] += busy_time;
        self.requests[k.idx()] += 1;
    }

    /// Records `tasks` lost when worker `k` failed mid-batch.
    pub fn record_lost(&mut self, k: ProcId, tasks: usize) {
        self.lost[k.idx()] += tasks as u64;
    }

    /// Records `blocks` shipped to worker `k` for a batch that re-allocates
    /// at least one task lost to a failure.
    pub fn record_reshipped(&mut self, k: ProcId, blocks: u64) {
        self.reshipped[k.idx()] += blocks;
    }

    /// Records time worker `k` spent idle waiting for a transfer.
    pub fn record_wait(&mut self, k: ProcId, wait: f64) {
        self.wait[k.idx()] += wait;
    }

    /// Records `blocks` transferred toward worker `k` that were never
    /// computed on because the worker failed.
    pub fn record_wasted(&mut self, k: ProcId, blocks: u64) {
        self.wasted[k.idx()] += blocks;
    }

    /// Records `blocks` of result volume written back by worker `k`.
    pub fn record_returned(&mut self, k: ProcId, blocks: u64) {
        self.returned[k.idx()] += blocks;
    }

    /// Total blocks shipped by the master.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.iter().sum()
    }

    /// Total tasks computed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().sum()
    }

    /// Blocks shipped to worker `k`.
    pub fn blocks(&self, k: ProcId) -> u64 {
        self.blocks[k.idx()]
    }

    /// Tasks computed by worker `k`.
    pub fn tasks(&self, k: ProcId) -> u64 {
        self.tasks[k.idx()]
    }

    /// Busy (computing) time of worker `k`.
    pub fn busy(&self, k: ProcId) -> f64 {
        self.busy[k.idx()]
    }

    /// Requests served for worker `k`.
    pub fn requests(&self, k: ProcId) -> u64 {
        self.requests[k.idx()]
    }

    /// Tasks lost by worker `k` to its failure.
    pub fn lost_tasks(&self, k: ProcId) -> u64 {
        self.lost[k.idx()]
    }

    /// Blocks shipped to worker `k` for batches containing re-allocated
    /// tasks.
    pub fn reshipped_blocks(&self, k: ProcId) -> u64 {
        self.reshipped[k.idx()]
    }

    /// Total tasks lost to failures across all workers.
    pub fn total_lost_tasks(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Total recovery re-shipping volume across all workers.
    pub fn total_reshipped_blocks(&self) -> u64 {
        self.reshipped.iter().sum()
    }

    /// Time worker `k` spent idle waiting for transfers.
    pub fn transfer_wait(&self, k: ProcId) -> f64 {
        self.wait[k.idx()]
    }

    /// Total transfer-wait time across all workers.
    pub fn total_transfer_wait(&self) -> f64 {
        self.wait.iter().sum()
    }

    /// Blocks wasted on worker `k` (transferred but never computed on
    /// because the worker failed).
    pub fn wasted_blocks(&self, k: ProcId) -> u64 {
        self.wasted[k.idx()]
    }

    /// Total wasted transfer volume across all workers.
    pub fn total_wasted_blocks(&self) -> u64 {
        self.wasted.iter().sum()
    }

    /// Result volume written back by worker `k`.
    pub fn returned_blocks(&self, k: ProcId) -> u64 {
        self.returned[k.idx()]
    }

    /// Total write-back volume across all workers.
    pub fn total_returned_blocks(&self) -> u64 {
        self.returned.iter().sum()
    }

    /// Merges a sub-ledger into this one, mapping the sub-ledger's worker
    /// `j` onto this ledger's worker `offset + j`. Used by the hierarchical
    /// tree topology to fold per-shard ledgers (indexed over the shard's
    /// local workers) back into the global worker index space.
    pub fn absorb_at(&mut self, offset: usize, other: &CommLedger) {
        assert!(
            offset + other.blocks.len() <= self.blocks.len(),
            "sub-ledger of {} workers at offset {offset} overflows ledger of {}",
            other.blocks.len(),
            self.blocks.len()
        );
        for j in 0..other.blocks.len() {
            self.blocks[offset + j] += other.blocks[j];
            self.tasks[offset + j] += other.tasks[j];
            self.busy[offset + j] += other.busy[j];
            self.requests[offset + j] += other.requests[j];
            self.lost[offset + j] += other.lost[j];
            self.reshipped[offset + j] += other.reshipped[j];
            self.wait[offset + j] += other.wait[j];
            self.wasted[offset + j] += other.wasted[j];
            self.returned[offset + j] += other.returned[j];
        }
    }

    /// Per-worker block counts.
    pub fn blocks_per_proc(&self) -> &[u64] {
        &self.blocks
    }

    /// Per-worker task counts.
    pub fn tasks_per_proc(&self) -> &[u64] {
        &self.tasks
    }

    /// Per-worker lost-task counts.
    pub fn lost_per_proc(&self) -> &[u64] {
        &self.lost
    }

    /// Per-worker re-shipped block counts.
    pub fn reshipped_per_proc(&self) -> &[u64] {
        &self.reshipped
    }

    /// Per-worker transfer-wait times.
    pub fn wait_per_proc(&self) -> &[f64] {
        &self.wait
    }

    /// Per-worker wasted-block counts.
    pub fn wasted_per_proc(&self) -> &[u64] {
        &self.wasted
    }

    /// Per-worker write-back volumes.
    pub fn returned_per_proc(&self) -> &[u64] {
        &self.returned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut l = CommLedger::new(3);
        l.record(ProcId(0), 4, 2, 1.0);
        l.record(ProcId(0), 6, 2, 1.5);
        l.record(ProcId(2), 1, 3, 0.25);
        assert_eq!(l.total_blocks(), 7);
        assert_eq!(l.total_tasks(), 11);
        assert_eq!(l.blocks(ProcId(0)), 4);
        assert_eq!(l.tasks(ProcId(0)), 10);
        assert_eq!(l.busy(ProcId(0)), 2.5);
        assert_eq!(l.requests(ProcId(0)), 2);
        assert_eq!(l.blocks(ProcId(1)), 0);
        assert_eq!(l.tasks_per_proc(), &[10, 0, 1]);
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut l = CommLedger::new(3);
        assert_eq!(l.total_lost_tasks(), 0);
        assert_eq!(l.total_reshipped_blocks(), 0);
        l.record_lost(ProcId(1), 5);
        l.record_lost(ProcId(1), 2);
        l.record_reshipped(ProcId(0), 3);
        l.record_reshipped(ProcId(2), 4);
        assert_eq!(l.lost_tasks(ProcId(1)), 7);
        assert_eq!(l.lost_tasks(ProcId(0)), 0);
        assert_eq!(l.total_lost_tasks(), 7);
        assert_eq!(l.reshipped_blocks(ProcId(0)), 3);
        assert_eq!(l.total_reshipped_blocks(), 7);
        assert_eq!(l.lost_per_proc(), &[0, 7, 0]);
        assert_eq!(l.reshipped_per_proc(), &[3, 0, 4]);
        // Fault counters are orthogonal to the work counters.
        assert_eq!(l.total_tasks(), 0);
        assert_eq!(l.total_blocks(), 0);
    }

    #[test]
    fn absorb_at_maps_shard_workers_onto_global_slots() {
        let mut global = CommLedger::new(5);
        global.record(ProcId(1), 1, 1, 0.5);

        let mut shard = CommLedger::new(2);
        shard.record(ProcId(0), 4, 2, 1.0);
        shard.record(ProcId(1), 6, 3, 2.0);
        shard.record_lost(ProcId(1), 2);
        shard.record_wait(ProcId(0), 0.25);
        shard.record_returned(ProcId(1), 4);

        global.absorb_at(1, &shard);
        assert_eq!(global.tasks_per_proc(), &[0, 5, 6, 0, 0]);
        assert_eq!(global.returned_per_proc(), &[0, 0, 4, 0, 0]);
        assert_eq!(global.blocks_per_proc(), &[0, 3, 3, 0, 0]);
        assert_eq!(global.lost_per_proc(), &[0, 0, 2, 0, 0]);
        assert_eq!(global.wait_per_proc(), &[0.0, 0.25, 0.0, 0.0, 0.0]);
        assert_eq!(global.requests(ProcId(1)), 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn absorb_at_rejects_overflow() {
        let mut global = CommLedger::new(2);
        let shard = CommLedger::new(2);
        global.absorb_at(1, &shard);
    }

    #[test]
    fn network_counters_accumulate() {
        let mut l = CommLedger::new(2);
        assert_eq!(l.total_transfer_wait(), 0.0);
        assert_eq!(l.total_wasted_blocks(), 0);
        l.record_wait(ProcId(0), 1.5);
        l.record_wait(ProcId(0), 0.5);
        l.record_wasted(ProcId(1), 8);
        l.record_returned(ProcId(0), 6);
        l.record_returned(ProcId(0), 1);
        assert_eq!(l.returned_blocks(ProcId(0)), 7);
        assert_eq!(l.returned_blocks(ProcId(1)), 0);
        assert_eq!(l.total_returned_blocks(), 7);
        assert_eq!(l.returned_per_proc(), &[7, 0]);
        assert_eq!(l.transfer_wait(ProcId(0)), 2.0);
        assert_eq!(l.transfer_wait(ProcId(1)), 0.0);
        assert_eq!(l.total_transfer_wait(), 2.0);
        assert_eq!(l.wasted_blocks(ProcId(1)), 8);
        assert_eq!(l.total_wasted_blocks(), 8);
        assert_eq!(l.wait_per_proc(), &[2.0, 0.0]);
        assert_eq!(l.wasted_per_proc(), &[0, 8]);
        // Network counters are orthogonal to the work counters too.
        assert_eq!(l.total_blocks(), 0);
        assert_eq!(l.total_tasks(), 0);
    }
}
