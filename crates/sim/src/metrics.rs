//! Communication and work accounting.

use hetsched_platform::ProcId;

/// Per-worker ledger of blocks received and tasks computed.
#[derive(Clone, Debug)]
pub struct CommLedger {
    blocks: Vec<u64>,
    tasks: Vec<u64>,
    busy: Vec<f64>,
    requests: Vec<u64>,
}

impl CommLedger {
    /// Ledger for `p` workers.
    pub fn new(p: usize) -> Self {
        CommLedger {
            blocks: vec![0; p],
            tasks: vec![0; p],
            busy: vec![0.0; p],
            requests: vec![0; p],
        }
    }

    /// Records one satisfied request for worker `k`.
    pub fn record(&mut self, k: ProcId, tasks: usize, blocks: u64, busy_time: f64) {
        self.blocks[k.idx()] += blocks;
        self.tasks[k.idx()] += tasks as u64;
        self.busy[k.idx()] += busy_time;
        self.requests[k.idx()] += 1;
    }

    /// Total blocks shipped by the master.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.iter().sum()
    }

    /// Total tasks computed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().sum()
    }

    /// Blocks shipped to worker `k`.
    pub fn blocks(&self, k: ProcId) -> u64 {
        self.blocks[k.idx()]
    }

    /// Tasks computed by worker `k`.
    pub fn tasks(&self, k: ProcId) -> u64 {
        self.tasks[k.idx()]
    }

    /// Busy (computing) time of worker `k`.
    pub fn busy(&self, k: ProcId) -> f64 {
        self.busy[k.idx()]
    }

    /// Requests served for worker `k`.
    pub fn requests(&self, k: ProcId) -> u64 {
        self.requests[k.idx()]
    }

    /// Per-worker block counts.
    pub fn blocks_per_proc(&self) -> &[u64] {
        &self.blocks
    }

    /// Per-worker task counts.
    pub fn tasks_per_proc(&self) -> &[u64] {
        &self.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut l = CommLedger::new(3);
        l.record(ProcId(0), 4, 2, 1.0);
        l.record(ProcId(0), 6, 2, 1.5);
        l.record(ProcId(2), 1, 3, 0.25);
        assert_eq!(l.total_blocks(), 7);
        assert_eq!(l.total_tasks(), 11);
        assert_eq!(l.blocks(ProcId(0)), 4);
        assert_eq!(l.tasks(ProcId(0)), 10);
        assert_eq!(l.busy(ProcId(0)), 2.5);
        assert_eq!(l.requests(ProcId(0)), 2);
        assert_eq!(l.blocks(ProcId(1)), 0);
        assert_eq!(l.tasks_per_proc(), &[10, 0, 1]);
    }
}
