//! The simulation event queue.
//!
//! Two implementations live here behind the same API:
//!
//! * [`EventQueue`] — a binary min-heap, the engine's queue.
//! * [`FlatScanQueue`] — a flat vector scanned linearly for the minimum on
//!   every pop, kept as the head-to-head comparator in
//!   `crates/bench/benches/engine_bench.rs`. The hypothesis was that with
//!   the queue never holding more than ~`p + 1` entries an O(len) scan over
//!   a contiguous buffer would beat heap sift-up/sift-down; the bench
//!   (`event_queue/*`, `engine_requests/*`) says it only does so up to
//!   `p ≈ 50` and loses badly at `p = 300`, so the heap stays. Both are
//!   allocation-free once warm (`BinaryHeap` reuses its buffer).
//!
//! Both pop the strict minimum of `(t, seq)`; `seq` is unique, so the pop
//! order — and therefore every simulation result — is bit-for-bit identical
//! between the two.

use hetsched_platform::ProcId;
use hetsched_util::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-queue of *worker ready* events.
///
/// Only one event kind exists in this model — "worker `k` finished its batch
/// at time `t` and requests work" — so the queue stores `(t, seq, k)`
/// directly. The monotonically increasing `seq` makes simultaneous events
/// FIFO and the whole simulation deterministic for a given seed (important:
/// all `p` workers are ready at `t = 0`).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(OrderedF64, u64, ProcId)>>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules worker `k` to request work at time `t`.
    pub fn push(&mut self, t: f64, k: ProcId) {
        self.heap.push(Reverse((OrderedF64::new(t), self.seq, k)));
        self.seq += 1;
    }

    /// Pops the earliest request, if any (FIFO among simultaneous events).
    pub fn pop(&mut self) -> Option<(f64, ProcId)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t.get(), k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Flat-vector min-scan queue, API-identical to [`EventQueue`].
///
/// Pop does a linear scan for the smallest `(t, seq)` and `swap_remove`s
/// it. Cheaper than the heap for very small queues (roughly `p ≤ 50` in
/// `engine_bench`), O(p) per pop beyond that — which is why it is the
/// benchmark comparator rather than the engine's queue.
#[derive(Debug, Default)]
pub struct FlatScanQueue {
    slots: Vec<(OrderedF64, u64, ProcId)>,
    seq: u64,
}

impl FlatScanQueue {
    /// Empty queue.
    pub fn new() -> Self {
        FlatScanQueue {
            slots: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules worker `k` to request work at time `t`.
    pub fn push(&mut self, t: f64, k: ProcId) {
        self.slots.push((OrderedF64::new(t), self.seq, k));
        self.seq += 1;
    }

    /// Pops the earliest request, if any (FIFO among simultaneous events).
    pub fn pop(&mut self) -> Option<(f64, ProcId)> {
        if self.slots.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.slots.len() {
            // seq values are unique, so (t, seq) is a strict total order.
            if (self.slots[i].0, self.slots[i].1) < (self.slots[best].0, self.slots[best].1) {
                best = i;
            }
        }
        let (t, _, k) = self.slots.swap_remove(best);
        Some((t.get(), k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, ProcId(0));
        q.push(1.0, ProcId(1));
        q.push(3.0, ProcId(2));
        assert_eq!(q.pop(), Some((1.0, ProcId(1))));
        assert_eq!(q.pop(), Some((2.0, ProcId(0))));
        assert_eq!(q.pop(), Some((3.0, ProcId(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.push(0.0, ProcId(i));
        }
        for i in 0..5u32 {
            assert_eq!(q.pop(), Some((0.0, ProcId(i))));
        }
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, ProcId(0));
        q.push(1.5, ProcId(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_pushes_respect_order() {
        let mut q = EventQueue::new();
        q.push(5.0, ProcId(0));
        assert_eq!(q.pop(), Some((5.0, ProcId(0))));
        q.push(4.0, ProcId(1));
        q.push(6.0, ProcId(2));
        assert_eq!(q.pop(), Some((4.0, ProcId(1))));
        q.push(5.5, ProcId(3));
        assert_eq!(q.pop(), Some((5.5, ProcId(3))));
        assert_eq!(q.pop(), Some((6.0, ProcId(2))));
    }

    #[test]
    fn flat_and_heap_queues_agree_on_random_workload() {
        // Drive both queues through an identical interleaved push/pop
        // sequence (deterministic pseudo-random times, including exact
        // ties) and require identical pop streams.
        let mut flat = FlatScanQueue::new();
        let mut heap = EventQueue::new();
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..200u32 {
            for i in 0..3u32 {
                // Coarse grid so ties actually happen.
                let t = (next() % 16) as f64;
                flat.push(t, ProcId(round * 3 + i));
                heap.push(t, ProcId(round * 3 + i));
            }
            if round % 2 == 0 {
                assert_eq!(flat.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (flat.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
