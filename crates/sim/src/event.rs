//! The simulation event queue.

use hetsched_platform::ProcId;
use hetsched_util::OrderedF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of *worker ready* events.
///
/// Only one event kind exists in this model — "worker `k` finished its batch
/// at time `t` and requests work" — so the queue stores `(t, seq, k)`
/// directly. The monotonically increasing `seq` makes simultaneous events
/// FIFO and the whole simulation deterministic for a given seed (important:
/// all `p` workers are ready at `t = 0`).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(OrderedF64, u64, ProcId)>>,
    seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules worker `k` to request work at time `t`.
    pub fn push(&mut self, t: f64, k: ProcId) {
        self.heap.push(Reverse((OrderedF64::new(t), self.seq, k)));
        self.seq += 1;
    }

    /// Pops the earliest request, if any.
    pub fn pop(&mut self) -> Option<(f64, ProcId)> {
        self.heap.pop().map(|Reverse((t, _, k))| (t.get(), k))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, ProcId(0));
        q.push(1.0, ProcId(1));
        q.push(3.0, ProcId(2));
        assert_eq!(q.pop(), Some((1.0, ProcId(1))));
        assert_eq!(q.pop(), Some((2.0, ProcId(0))));
        assert_eq!(q.pop(), Some((3.0, ProcId(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.push(0.0, ProcId(i));
        }
        for i in 0..5u32 {
            assert_eq!(q.pop(), Some((0.0, ProcId(i))));
        }
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, ProcId(0));
        q.push(1.5, ProcId(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_pushes_respect_order() {
        let mut q = EventQueue::new();
        q.push(5.0, ProcId(0));
        assert_eq!(q.pop(), Some((5.0, ProcId(0))));
        q.push(4.0, ProcId(1));
        q.push(6.0, ProcId(2));
        assert_eq!(q.pop(), Some((4.0, ProcId(1))));
        q.push(5.5, ProcId(3));
        assert_eq!(q.pop(), Some((5.5, ProcId(3))));
        assert_eq!(q.pop(), Some((6.0, ProcId(2))));
    }
}
