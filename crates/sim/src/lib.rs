//! Event-driven, demand-driven master/worker simulation engine.
//!
//! This is the from-scratch equivalent of the paper's *"ad-hoc event based
//! simulation tool, where processors request new tasks as soon as they are
//! available, and tasks are allocated based on the given runtime dynamic
//! strategy"* (§3.4). Its semantics, in order of importance:
//!
//! 1. **Demand driven.** Each worker holds exactly one outstanding batch of
//!    allocated tasks; when the batch finishes, the worker *requests* and the
//!    strategy (a [`Scheduler`]) immediately allocates the next batch and
//!    reports how many blocks the master had to ship.
//! 2. **Communication is free in time, counted in volume.** The paper
//!    assumes communication fully overlaps computation (blocks are uploaded
//!    slightly in advance), so shipping blocks never delays a worker; the
//!    engine only accumulates the per-worker block counters in a
//!    [`CommLedger`].
//! 3. **Allocation wins the race.** A task allocated to a worker is globally
//!    marked processed at allocation time — the worker that learns the
//!    inputs first is the one that computes the task.
//! 4. **Heterogeneous, possibly drifting speeds.** Batch durations come from
//!    [`SpeedState`](hetsched_platform::SpeedState), which implements both
//!    fixed speeds and the `dyn.*` per-task jitter scenarios.
//!
//! The engine is generic over the [`Scheduler`] trait; the
//! `hetsched-outer` and `hetsched-matmul` crates provide the eight concrete
//! strategies from the paper.
//!
//! On top of the paper's model the engine supports **fault injection**
//! ([`FailureModel`](hetsched_platform::FailureModel)): a worker may
//! permanently fail at a given time (its in-flight batch returns to the
//! scheduler via [`Scheduler::on_tasks_lost`] and is re-allocated to
//! survivors) or run as a straggler at a fraction of its nominal speed. The
//! ledger tracks the lost tasks and the recovery re-shipping volume.
//!
//! Rule 2 above — communication free in time — can be relaxed with a
//! [`NetworkModel`] (`Engine::with_network`): the master's outbound link
//! then has finite bandwidth, transfers become timed events overlapping
//! computation (depth-1 prefetch), and the report additionally carries
//! per-worker transfer-wait time, link utilization, the maximum send-queue
//! depth, and the bandwidth wasted on workers that die with a batch in
//! flight. [`NetworkModel::Infinite`] (the default) keeps the original
//! code path bit for bit.
//!
//! **Observability** is opt-in via a [`Recorder`]
//! (`Engine::run_recorded`): every engine event is emitted as a typed
//! [`TraceEvent`] and the run state the paper's ODE model evolves (residual
//! tasks, per-worker blocks/tasks, strategy knowledge fractions, link
//! state) is sampled on a [`ProbeConfig`] cadence. The [`sink`] module
//! renders both as JSONL or Chrome trace-event JSON. Without a recorder the
//! engines take the exact pre-instrumentation path: one `None` check per
//! event, no heap allocation.

pub mod engine;
pub mod event;
pub mod metrics;
mod net_engine;
pub mod probe;
pub mod scheduler;
pub mod sink;
pub mod topology;
pub mod trace;
pub mod tree;

pub use engine::{
    run, run_configured, run_configured_recorded, run_configured_traced, run_traced,
    run_traced_with_failures, run_with_failures, Engine, SimReport,
};
pub use event::{EventQueue, FlatScanQueue};
pub use hetsched_net::NetworkModel;
pub use metrics::CommLedger;
pub use probe::{ProbeConfig, ProbeIter, ProbeSample, ProbeSeries, Recorder};
pub use scheduler::{Allocation, Scheduler};
pub use sink::{ChromeStream, JsonlStream, NullSink, StreamingSink};
pub use topology::Topology;
pub use trace::{EventKind, Trace, TraceEvent};
pub use tree::{run_tree, run_tree_with, ShardSpec, TreeOpts, TreeOutcome};
