//! The strategy interface the engine drives.

use hetsched_platform::ProcId;
use rand::rngs::StdRng;

/// What the master decided for one work request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Allocation {
    /// Number of tasks allocated to the requesting worker in this batch.
    /// `0` means the scheduler has nothing left for this worker — the engine
    /// then retires the worker.
    pub tasks: usize,
    /// Number of data blocks the master shipped to satisfy this request
    /// (counted even when `tasks == 0`, e.g. a data-aware strategy that
    /// bought blocks which turned out to enable nothing — by construction
    /// our strategies retry internally instead, but the accounting permits
    /// it).
    pub blocks: u64,
}

impl Allocation {
    /// An empty allocation: the worker is done.
    pub const DONE: Allocation = Allocation {
        tasks: 0,
        blocks: 0,
    };

    /// True if no tasks were allocated.
    pub fn is_done(&self) -> bool {
        self.tasks == 0
    }
}

/// A dynamic scheduling strategy, driven by the engine one request at a
/// time.
///
/// Implementations own the whole problem state (task grid/cube, per-worker
/// block ownership) and must uphold the engine's contract:
///
/// * every task is allocated exactly once across the run;
/// * [`remaining`](Scheduler::remaining) is the number of tasks not yet
///   allocated;
/// * `on_request` never allocates a processed task and never returns
///   `tasks > 0` with `remaining` previously `0`.
pub trait Scheduler {
    /// Worker `k` is idle and requests work. Returns the allocated batch
    /// and appends the linear ids of the allocated tasks to `out` (exactly
    /// `Allocation::tasks` of them).
    ///
    /// `out` is a scratch buffer owned by the *caller* and reused across
    /// requests: the engine hands it in empty (cleared, capacity retained),
    /// so the steady-state request loop performs no heap allocation.
    /// Implementations only push into it and must not assume the buffer
    /// outlives the call.
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation;

    /// A worker that had been allocated `ids` failed before computing them;
    /// the tasks must return to the residual pool so surviving workers can
    /// pick them up (re-shipping only the blocks the new owner is missing).
    ///
    /// The engine only calls this under fault injection
    /// ([`FailureModel`](hetsched_platform::FailureModel)). The default
    /// implementation panics rather than silently dropping tasks, which
    /// would break the exactly-once contract: strategies must opt in to
    /// reallocation explicitly.
    fn on_tasks_lost(&mut self, ids: &[u32]) {
        if !ids.is_empty() {
            panic!(
                "{} cannot re-allocate tasks lost to a worker failure",
                self.name()
            );
        }
    }

    /// The phase this strategy is currently in, for strategies with an
    /// explicit mode change (the two-phase strategies report `1` before and
    /// `2` after their switch threshold). `None` (the default) means the
    /// strategy has no phase structure; the engine then never emits
    /// [`PhaseSwitch`](crate::trace::EventKind::PhaseSwitch) events.
    fn phase(&self) -> Option<u8> {
        None
    }

    /// Fraction of worker `k`'s *potential* knowledge it has already
    /// acquired — e.g. the share of the input vectors (outer product) or
    /// matrix rows/columns (matmul) it owns. `None` (the default) means the
    /// strategy does not track per-worker data state; probes then record
    /// `NaN` for this worker.
    fn useful_fraction(&self, _k: ProcId) -> Option<f64> {
        None
    }

    /// Tasks not yet allocated.
    fn remaining(&self) -> usize;

    /// Total number of tasks in the problem.
    fn total_tasks(&self) -> usize;

    /// Short, stable display name (used in figure output).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_done() {
        assert!(Allocation::DONE.is_done());
        assert!(!Allocation {
            tasks: 1,
            blocks: 2
        }
        .is_done());
    }

    #[test]
    fn allocation_default_is_done() {
        assert!(Allocation::default().is_done());
        assert_eq!(Allocation::default().blocks, 0);
    }
}
