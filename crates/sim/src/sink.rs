//! Structured trace sinks: JSONL and Chrome trace-event export.
//!
//! Both sinks are dependency-free renderers over a [`Trace`] and a
//! [`ProbeSeries`]:
//!
//! * [`jsonl`] writes one self-describing JSON object per line — an
//!   optional `manifest` line first (run provenance supplied by the
//!   caller), then every trace event, then every probe sample. Floats use
//!   Rust's shortest round-trip formatting, so the output is byte-stable
//!   for a given run (the golden determinism test relies on this).
//! * [`chrome_trace`] writes the Chrome trace-event JSON format, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
//!   compute lane and (if transfers were recorded) one network lane per
//!   worker, complete events for batches/transfers/waits, instants for
//!   retirements, stranded batches and the two-phase switch, plus counter
//!   tracks for the probed residual-task count and queue depth.

use crate::probe::ProbeSeries;
use crate::trace::{EventKind, Trace};
use std::fmt::Write as _;

/// Seconds of simulated time per Chrome-trace microsecond tick.
const TICKS: f64 = 1e6;

/// Formats a float as a JSON value (`null` for non-finite).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders `trace` + `probes` as JSON Lines. `manifest`, when given, must
/// be a valid JSON object and becomes the first line's `manifest` field.
pub fn jsonl(manifest: Option<&str>, trace: &Trace, probes: &ProbeSeries) -> String {
    let mut out = String::new();
    if let Some(m) = manifest {
        writeln!(out, "{{\"type\":\"manifest\",\"manifest\":{m}}}").expect("string write");
    }
    for e in trace.events() {
        writeln!(
            out,
            "{{\"type\":\"event\",\"kind\":\"{}\",\"t\":{},\"proc\":{},\"tasks\":{},\"blocks\":{},\"dur\":{}}}",
            e.kind.label(),
            num(e.time),
            e.proc.idx(),
            e.tasks,
            e.blocks,
            num(e.duration),
        )
        .expect("string write");
    }
    for s in probes.samples() {
        let join_u64 = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let useful = s
            .useful_fraction
            .iter()
            .map(|&x| num(x))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(
            out,
            "{{\"type\":\"probe\",\"t\":{},\"events\":{},\"remaining\":{},\"blocks\":[{}],\"tasks\":[{}],\"useful\":[{}],\"link_busy\":{},\"queue_depth\":{}}}",
            num(s.time),
            s.events,
            s.remaining,
            join_u64(&s.blocks_per_proc),
            join_u64(&s.tasks_per_proc),
            useful,
            num(s.link_busy),
            s.queue_depth,
        )
        .expect("string write");
    }
    out
}

/// Renders `trace` + `probes` in the Chrome trace-event format for `p`
/// workers. `manifest`, when given, must be a valid JSON object and is
/// embedded under `otherData`.
///
/// Lanes: worker `k`'s compute lane is `tid = k`; its network lane (only
/// present when transfer events were recorded) is `tid = p + k`. All
/// events live in `pid = 0`. Simulated time unit maps to one second
/// (`ts`/`dur` are microseconds, as the format requires).
pub fn chrome_trace(
    manifest: Option<&str>,
    trace: &Trace,
    probes: &ProbeSeries,
    p: usize,
) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"hetsched\"}}"
            .to_string(),
    );
    let has_net = trace.events().iter().any(|e| e.kind == EventKind::Transfer);
    for k in 0..p {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{k},\"args\":{{\"name\":\"worker {k}\"}}}}"
        ));
        events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{k},\"args\":{{\"sort_index\":{}}}}}",
            2 * k
        ));
        if has_net {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"worker {k} net\"}}}}",
                p + k
            ));
            events.push(format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
                p + k,
                2 * k + 1
            ));
        }
    }
    for e in trace.events() {
        let k = e.proc.idx();
        let ts = num(e.time * TICKS);
        let dur = num(e.duration * TICKS);
        match e.kind {
            EventKind::Batch => events.push(format!(
                "{{\"name\":\"batch\",\"cat\":\"compute\",\"ph\":\"X\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"tasks\":{},\"blocks\":{}}}}}",
                e.tasks, e.blocks
            )),
            EventKind::Lost => events.push(format!(
                "{{\"name\":\"lost batch\",\"cat\":\"failure\",\"ph\":\"X\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"blocks\":{}}}}}",
                e.blocks
            )),
            EventKind::Wait => events.push(format!(
                "{{\"name\":\"wait\",\"cat\":\"wait\",\"ph\":\"X\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"dur\":{dur},\"args\":{{}}}}"
            )),
            EventKind::Transfer => events.push(format!(
                "{{\"name\":\"transfer\",\"cat\":\"transfer\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"blocks\":{}}}}}",
                p + k,
                e.blocks
            )),
            EventKind::Retire => events.push(format!(
                "{{\"name\":\"retire\",\"cat\":\"compute\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"args\":{{\"blocks\":{}}}}}",
                e.blocks
            )),
            EventKind::Stranded => events.push(format!(
                "{{\"name\":\"stranded batch\",\"cat\":\"failure\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"args\":{{\"blocks\":{}}}}}",
                e.blocks
            )),
            EventKind::PhaseSwitch => events.push(format!(
                "{{\"name\":\"phase switch\",\"cat\":\"scheduler\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"args\":{{}}}}"
            )),
        }
    }
    for s in probes.samples() {
        let ts = num(s.time * TICKS);
        events.push(format!(
            "{{\"name\":\"remaining tasks\",\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"args\":{{\"remaining\":{}}}}}",
            s.remaining
        ));
        events.push(format!(
            "{{\"name\":\"send queue depth\",\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"args\":{{\"depth\":{}}}}}",
            s.queue_depth
        ));
    }
    let other = match manifest {
        Some(m) => format!(",\"otherData\":{{\"manifest\":{m}}}"),
        None => String::new(),
    };
    format!(
        "{{\"displayTimeUnit\":\"ms\"{other},\"traceEvents\":[{}]}}\n",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeConfig, Recorder};
    use crate::trace::TraceEvent;
    use hetsched_platform::ProcId;

    fn sample_run() -> (Trace, ProbeSeries) {
        let mut t = Trace::new();
        for (kind, time, dur, blocks) in [
            (EventKind::Transfer, 0.0, 0.5, 2),
            (EventKind::Wait, 0.0, 0.5, 0),
            (EventKind::Batch, 0.5, 1.0, 2),
            (EventKind::PhaseSwitch, 0.5, 0.0, 0),
            (EventKind::Retire, 1.5, 0.0, 0),
        ] {
            t.push(TraceEvent {
                kind,
                time,
                proc: ProcId(0),
                tasks: usize::from(kind == EventKind::Batch),
                blocks,
                duration: dur,
            });
        }
        (t, ProbeSeries::new())
    }

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings and no trailing garbage. Good enough to catch malformed
    /// hand-rolled output without a JSON dependency.
    fn assert_balanced(s: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                match (esc, c) {
                    (true, _) => esc = false,
                    (false, '\\') => esc = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced at {c:?}");
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn jsonl_has_one_object_per_line_plus_manifest() {
        let (t, p) = sample_run();
        let out = jsonl(Some("{\"seed\":7}"), &t, &p);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + t.len());
        assert!(lines[0].starts_with("{\"type\":\"manifest\""));
        assert!(lines[0].contains("{\"seed\":7}"));
        assert!(lines[1].contains("\"kind\":\"transfer\""));
        assert!(lines[3].contains("\"kind\":\"batch\""));
        for l in &lines {
            assert_balanced(l);
        }
    }

    #[test]
    fn jsonl_serializes_probe_samples_with_null_for_nan() {
        let mut rec = Recorder::new(ProbeConfig::by_events(1));
        struct S;
        impl crate::Scheduler for S {
            fn on_request(
                &mut self,
                _: ProcId,
                _: &mut rand::rngs::StdRng,
                _: &mut Vec<u32>,
            ) -> crate::Allocation {
                unreachable!()
            }
            fn remaining(&self) -> usize {
                5
            }
            fn total_tasks(&self) -> usize {
                10
            }
            fn name(&self) -> &'static str {
                "S"
            }
        }
        let ledger = crate::CommLedger::new(2);
        rec.observe(
            TraceEvent {
                kind: EventKind::Batch,
                time: 1.0,
                proc: ProcId(0),
                tasks: 1,
                blocks: 1,
                duration: 0.5,
            },
            &S,
            &ledger,
            None,
        );
        let (t, p) = rec.into_parts();
        let out = jsonl(None, &t, &p);
        let probe_line = out.lines().last().unwrap();
        assert!(probe_line.contains("\"remaining\":5"));
        assert!(
            probe_line.contains("\"useful\":[null,null]"),
            "{probe_line}"
        );
        assert_balanced(probe_line);
    }

    #[test]
    fn chrome_trace_is_structurally_valid_and_has_lanes() {
        let (t, p) = sample_run();
        let out = chrome_trace(Some("{\"seed\":7}"), &t, &p, 2);
        assert_balanced(&out);
        assert!(out.contains("\"traceEvents\":["));
        assert!(out.contains("\"otherData\":{\"manifest\":{\"seed\":7}}"));
        // Compute and net lanes are both named (transfers present).
        assert!(out.contains("\"name\":\"worker 0\""));
        assert!(out.contains("\"name\":\"worker 0 net\""));
        // Transfer rides the net lane tid = p + k = 2.
        assert!(out.contains(
            "\"name\":\"transfer\",\"cat\":\"transfer\",\"ph\":\"X\",\"pid\":0,\"tid\":2"
        ));
        assert!(out.contains("\"name\":\"phase switch\""));
        assert!(out.contains("\"ph\":\"i\""));
    }

    #[test]
    fn chrome_trace_skips_net_lanes_without_transfers() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            kind: EventKind::Batch,
            time: 0.0,
            proc: ProcId(0),
            tasks: 1,
            blocks: 1,
            duration: 1.0,
        });
        let out = chrome_trace(None, &t, &ProbeSeries::new(), 1);
        assert_balanced(&out);
        assert!(!out.contains("net"));
        assert!(!out.contains("otherData"));
        // ts is in microseconds.
        assert!(out.contains("\"dur\":1000000"));
    }
}
