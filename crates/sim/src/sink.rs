//! Structured trace sinks: JSONL and Chrome trace-event export, buffered
//! or streaming.
//!
//! Two dependency-free renderers, each available in two shapes:
//!
//! * [`jsonl`] / [`JsonlStream`] write one self-describing JSON object per
//!   line — an optional `manifest` line first (run provenance supplied by
//!   the caller), then every trace event, then every probe sample. Floats
//!   use Rust's shortest round-trip formatting, so the output is
//!   byte-stable for a given run (the golden determinism test relies on
//!   this).
//! * [`chrome_trace`] / [`ChromeStream`] write the Chrome trace-event JSON
//!   format, loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`: one compute lane and (if transfers were recorded)
//!   one network lane per worker, complete events for
//!   batches/transfers/waits, instants for retirements, stranded batches
//!   and the two-phase switch, plus counter tracks for the probed
//!   residual-task count and queue depth.
//!
//! The streaming shapes implement [`StreamingSink`], the incremental
//! interface a [`Recorder`](crate::Recorder) in streaming mode flushes
//! trace chunks through; they render each chunk straight into an
//! `io::Write`, so a long run's peak trace memory is the chunk, not the
//! run. The buffered functions are thin wrappers that drive the same
//! streaming writers into an in-memory buffer — buffered and streamed
//! output are byte-identical by construction.

use crate::probe::{ProbeSample, ProbeSeries};
use crate::trace::{EventKind, Trace, TraceEvent};
use std::fmt::Write as _;

/// Seconds of simulated time per Chrome-trace microsecond tick.
const TICKS: f64 = 1e6;

/// `fmt::Write` into a `String` cannot fail, so the renderers discard the
/// `Ok(())` instead of carrying a panic path for an impossible error. Real
/// I/O errors are captured by the streams' sticky `err` field and surfaced
/// through `into_inner`.
trait InfallibleFmt {
    fn infallible(self);
}

impl InfallibleFmt for std::fmt::Result {
    fn infallible(self) {
        debug_assert!(self.is_ok(), "string formatting cannot fail");
    }
}

/// Incremental consumer of a recorded run: receives every flushed chunk of
/// trace events in emission order, then — exactly once, at the end of the
/// run — the probe series.
///
/// Implementations render, count or discard; the
/// [`Recorder`](crate::Recorder) drives them via
/// [`Recorder::streaming`](crate::Recorder::streaming) /
/// [`Recorder::finish`](crate::Recorder::finish).
pub trait StreamingSink {
    /// Consumes one flushed chunk of trace events.
    fn write_events(&mut self, events: &[TraceEvent]);
    /// Called exactly once after the final chunk: consume the probe series
    /// and write any format epilogue.
    fn finish(&mut self, probes: &ProbeSeries);
}

/// Discards everything. The default sink behind a buffered
/// [`Recorder`](crate::Recorder) (which never flushes), and a useful
/// no-render baseline for pricing the chunked recorder itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl StreamingSink for NullSink {
    fn write_events(&mut self, _events: &[TraceEvent]) {}
    fn finish(&mut self, _probes: &ProbeSeries) {}
}

/// Formats a float as a JSON value (`null` for non-finite).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Appends one JSONL event line (with trailing newline) to `out`.
fn jsonl_event_line(out: &mut String, e: &TraceEvent) {
    writeln!(
        out,
        "{{\"type\":\"event\",\"kind\":\"{}\",\"t\":{},\"proc\":{},\"tasks\":{},\"blocks\":{},\"dur\":{}}}",
        e.kind.label(),
        num(e.time),
        e.proc.idx(),
        e.tasks,
        e.blocks,
        num(e.duration),
    )
    .infallible();
}

/// Appends one JSONL probe line (with trailing newline) to `out`.
fn jsonl_probe_line(out: &mut String, s: &ProbeSample) {
    let join_u64 = |v: &[u64]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let useful = s
        .useful_fraction
        .iter()
        .map(|&x| num(x))
        .collect::<Vec<_>>()
        .join(",");
    writeln!(
        out,
        "{{\"type\":\"probe\",\"t\":{},\"events\":{},\"remaining\":{},\"blocks\":[{}],\"tasks\":[{}],\"useful\":[{}],\"link_busy\":{},\"queue_depth\":{}}}",
        num(s.time),
        s.events,
        s.remaining,
        join_u64(&s.blocks_per_proc),
        join_u64(&s.tasks_per_proc),
        useful,
        num(s.link_busy),
        s.queue_depth,
    )
    .infallible();
}

/// Streaming JSON-Lines writer over any `io::Write`.
///
/// The optional manifest line is written on construction; trace chunks are
/// rendered as they arrive; probe lines land in
/// [`finish`](StreamingSink::finish). I/O errors are sticky and surfaced
/// by [`into_inner`](JsonlStream::into_inner).
#[derive(Debug)]
pub struct JsonlStream<W: std::io::Write> {
    out: W,
    err: Option<std::io::Error>,
    buf: String,
}

impl<W: std::io::Write> JsonlStream<W> {
    /// Writer over `out`; `manifest`, when given, must be a valid JSON
    /// object and becomes the first line's `manifest` field.
    pub fn new(out: W, manifest: Option<&str>) -> Self {
        let mut s = JsonlStream {
            out,
            err: None,
            buf: String::new(),
        };
        if let Some(m) = manifest {
            writeln!(s.buf, "{{\"type\":\"manifest\",\"manifest\":{m}}}").infallible();
            s.flush_buf();
        }
        s
    }

    /// Unwraps the writer, surfacing the first I/O error hit, if any.
    pub fn into_inner(self) -> std::io::Result<W> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }

    fn flush_buf(&mut self) {
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
                self.err = Some(e);
            }
        }
        self.buf.clear();
    }
}

impl<W: std::io::Write> StreamingSink for JsonlStream<W> {
    fn write_events(&mut self, events: &[TraceEvent]) {
        for e in events {
            jsonl_event_line(&mut self.buf, e);
        }
        self.flush_buf();
    }

    fn finish(&mut self, probes: &ProbeSeries) {
        for s in probes.iter() {
            jsonl_probe_line(&mut self.buf, &s);
            self.flush_buf();
        }
    }
}

/// Renders `trace` + `probes` as JSON Lines. `manifest`, when given, must
/// be a valid JSON object and becomes the first line's `manifest` field.
///
/// Buffered convenience over [`JsonlStream`]: output is byte-identical to
/// streaming the same run through any chunk size.
pub fn jsonl(manifest: Option<&str>, trace: &Trace, probes: &ProbeSeries) -> String {
    let mut sink = JsonlStream::new(Vec::new(), manifest);
    sink.write_events(trace.events());
    sink.finish(probes);
    // Writing into a `Vec<u8>` never errors and the renderers only emit
    // UTF-8, so both fallbacks are unreachable — but neither panics.
    let bytes = sink.into_inner().unwrap_or_default();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Appends the Chrome trace-event JSON object for `e` (no comma, no
/// newline) to `out`; `p` is the worker count (net lanes are `tid = p+k`).
fn chrome_event_json(out: &mut String, e: &TraceEvent, p: usize) {
    let k = e.proc.idx();
    let ts = num(e.time * TICKS);
    let dur = num(e.duration * TICKS);
    match e.kind {
        EventKind::Batch => write!(
            out,
            "{{\"name\":\"batch\",\"cat\":\"compute\",\"ph\":\"X\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"tasks\":{},\"blocks\":{}}}}}",
            e.tasks, e.blocks
        ),
        EventKind::Lost => write!(
            out,
            "{{\"name\":\"lost batch\",\"cat\":\"failure\",\"ph\":\"X\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"blocks\":{}}}}}",
            e.blocks
        ),
        EventKind::Wait => write!(
            out,
            "{{\"name\":\"wait\",\"cat\":\"wait\",\"ph\":\"X\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"dur\":{dur},\"args\":{{}}}}"
        ),
        EventKind::Transfer => write!(
            out,
            "{{\"name\":\"transfer\",\"cat\":\"transfer\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"blocks\":{}}}}}",
            p + k,
            e.blocks
        ),
        EventKind::Retire => write!(
            out,
            "{{\"name\":\"retire\",\"cat\":\"compute\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"args\":{{\"blocks\":{}}}}}",
            e.blocks
        ),
        EventKind::Stranded => write!(
            out,
            "{{\"name\":\"stranded batch\",\"cat\":\"failure\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"args\":{{\"blocks\":{}}}}}",
            e.blocks
        ),
        EventKind::PhaseSwitch => write!(
            out,
            "{{\"name\":\"phase switch\",\"cat\":\"scheduler\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{k},\"ts\":{ts},\"args\":{{}}}}"
        ),
    }
    .infallible();
}

/// Streaming Chrome trace-event writer over any `io::Write`.
///
/// Unlike the buffered [`chrome_trace`], which discovers the presence of
/// network lanes by scanning the finished trace, the streaming writer must
/// be told `has_net` upfront (callers know it from the configured network
/// model — a priced network always ships at least one transfer). The
/// prologue and per-worker lane metadata are written on construction;
/// probe counter tracks and the closing bracket land in
/// [`finish`](StreamingSink::finish). I/O errors are sticky and surfaced
/// by [`into_inner`](ChromeStream::into_inner).
#[derive(Debug)]
pub struct ChromeStream<W: std::io::Write> {
    out: W,
    err: Option<std::io::Error>,
    buf: String,
    p: usize,
    /// No event written yet (controls the comma separator).
    first: bool,
}

impl<W: std::io::Write> ChromeStream<W> {
    /// Writer over `out` for `p` workers; `manifest`, when given, must be
    /// a valid JSON object (embedded under `otherData`); `has_net` adds
    /// the per-worker network lanes.
    pub fn new(out: W, manifest: Option<&str>, p: usize, has_net: bool) -> Self {
        let mut s = ChromeStream {
            out,
            err: None,
            buf: String::new(),
            p,
            first: true,
        };
        match manifest {
            Some(m) => write!(
                s.buf,
                "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"manifest\":{m}}},\"traceEvents\":["
            ),
            None => write!(s.buf, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        }
        .infallible();
        s.sep();
        s.buf.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"hetsched\"}}",
        );
        for k in 0..p {
            s.sep();
            write!(
                s.buf,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{k},\"args\":{{\"name\":\"worker {k}\"}}}}"
            )
            .infallible();
            s.sep();
            write!(
                s.buf,
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{k},\"args\":{{\"sort_index\":{}}}}}",
                2 * k
            )
            .infallible();
            if has_net {
                s.sep();
                write!(
                    s.buf,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"worker {k} net\"}}}}",
                    p + k
                )
                .infallible();
                s.sep();
                write!(
                    s.buf,
                    "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"sort_index\":{}}}}}",
                    p + k,
                    2 * k + 1
                )
                .infallible();
            }
        }
        s.flush_buf();
        s
    }

    /// Unwraps the writer, surfacing the first I/O error hit, if any.
    pub fn into_inner(self) -> std::io::Result<W> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }

    /// Writes the `,` separator before every event but the first, matching
    /// the buffered renderer's `join(",")` byte for byte.
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.buf.push(',');
        }
    }

    fn flush_buf(&mut self) {
        if self.err.is_none() {
            if let Err(e) = self.out.write_all(self.buf.as_bytes()) {
                self.err = Some(e);
            }
        }
        self.buf.clear();
    }
}

impl<W: std::io::Write> StreamingSink for ChromeStream<W> {
    fn write_events(&mut self, events: &[TraceEvent]) {
        for e in events {
            self.sep();
            chrome_event_json(&mut self.buf, e, self.p);
        }
        self.flush_buf();
    }

    fn finish(&mut self, probes: &ProbeSeries) {
        for s in probes.iter() {
            let ts = num(s.time * TICKS);
            self.sep();
            write!(
                self.buf,
                "{{\"name\":\"remaining tasks\",\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"args\":{{\"remaining\":{}}}}}",
                s.remaining
            )
            .infallible();
            self.sep();
            write!(
                self.buf,
                "{{\"name\":\"send queue depth\",\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"args\":{{\"depth\":{}}}}}",
                s.queue_depth
            )
            .infallible();
            self.flush_buf();
        }
        self.buf.push_str("]}\n");
        self.flush_buf();
    }
}

/// Renders `trace` + `probes` in the Chrome trace-event format for `p`
/// workers. `manifest`, when given, must be a valid JSON object and is
/// embedded under `otherData`.
///
/// Lanes: worker `k`'s compute lane is `tid = k`; its network lane (only
/// present when transfer events were recorded) is `tid = p + k`. All
/// events live in `pid = 0`. Simulated time unit maps to one second
/// (`ts`/`dur` are microseconds, as the format requires).
///
/// Buffered convenience over [`ChromeStream`]: output is byte-identical
/// to streaming the same run through any chunk size.
pub fn chrome_trace(
    manifest: Option<&str>,
    trace: &Trace,
    probes: &ProbeSeries,
    p: usize,
) -> String {
    let has_net = trace.events().iter().any(|e| e.kind == EventKind::Transfer);
    let mut sink = ChromeStream::new(Vec::new(), manifest, p, has_net);
    sink.write_events(trace.events());
    sink.finish(probes);
    // Writing into a `Vec<u8>` never errors and the renderers only emit
    // UTF-8, so both fallbacks are unreachable — but neither panics.
    let bytes = sink.into_inner().unwrap_or_default();
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeConfig, Recorder};
    use crate::trace::TraceEvent;
    use hetsched_platform::ProcId;

    fn sample_run() -> (Trace, ProbeSeries) {
        let mut t = Trace::new();
        for (kind, time, dur, blocks) in [
            (EventKind::Transfer, 0.0, 0.5, 2),
            (EventKind::Wait, 0.0, 0.5, 0),
            (EventKind::Batch, 0.5, 1.0, 2),
            (EventKind::PhaseSwitch, 0.5, 0.0, 0),
            (EventKind::Retire, 1.5, 0.0, 0),
        ] {
            t.push(TraceEvent {
                kind,
                time,
                proc: ProcId(0),
                tasks: usize::from(kind == EventKind::Batch),
                blocks,
                duration: dur,
            });
        }
        (t, ProbeSeries::new())
    }

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings and no trailing garbage. Good enough to catch malformed
    /// hand-rolled output without a JSON dependency.
    fn assert_balanced(s: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                match (esc, c) {
                    (true, _) => esc = false,
                    (false, '\\') => esc = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced at {c:?}");
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn jsonl_has_one_object_per_line_plus_manifest() {
        let (t, p) = sample_run();
        let out = jsonl(Some("{\"seed\":7}"), &t, &p);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1 + t.len());
        assert!(lines[0].starts_with("{\"type\":\"manifest\""));
        assert!(lines[0].contains("{\"seed\":7}"));
        assert!(lines[1].contains("\"kind\":\"transfer\""));
        assert!(lines[3].contains("\"kind\":\"batch\""));
        for l in &lines {
            assert_balanced(l);
        }
    }

    #[test]
    fn jsonl_serializes_probe_samples_with_null_for_nan() {
        let mut rec = Recorder::new(ProbeConfig::by_events(1));
        struct S;
        impl crate::Scheduler for S {
            fn on_request(
                &mut self,
                _: ProcId,
                _: &mut rand::rngs::StdRng,
                _: &mut Vec<u32>,
            ) -> crate::Allocation {
                unreachable!()
            }
            fn remaining(&self) -> usize {
                5
            }
            fn total_tasks(&self) -> usize {
                10
            }
            fn name(&self) -> &'static str {
                "S"
            }
        }
        let ledger = crate::CommLedger::new(2);
        rec.observe(
            TraceEvent {
                kind: EventKind::Batch,
                time: 1.0,
                proc: ProcId(0),
                tasks: 1,
                blocks: 1,
                duration: 0.5,
            },
            &S,
            &ledger,
            None,
        );
        let (t, p) = rec.into_parts();
        let out = jsonl(None, &t, &p);
        let probe_line = out.lines().last().unwrap();
        assert!(probe_line.contains("\"remaining\":5"));
        assert!(
            probe_line.contains("\"useful\":[null,null]"),
            "{probe_line}"
        );
        assert_balanced(probe_line);
    }

    #[test]
    fn chrome_trace_is_structurally_valid_and_has_lanes() {
        let (t, p) = sample_run();
        let out = chrome_trace(Some("{\"seed\":7}"), &t, &p, 2);
        assert_balanced(&out);
        assert!(out.contains("\"traceEvents\":["));
        assert!(out.contains("\"otherData\":{\"manifest\":{\"seed\":7}}"));
        // Compute and net lanes are both named (transfers present).
        assert!(out.contains("\"name\":\"worker 0\""));
        assert!(out.contains("\"name\":\"worker 0 net\""));
        // Transfer rides the net lane tid = p + k = 2.
        assert!(out.contains(
            "\"name\":\"transfer\",\"cat\":\"transfer\",\"ph\":\"X\",\"pid\":0,\"tid\":2"
        ));
        assert!(out.contains("\"name\":\"phase switch\""));
        assert!(out.contains("\"ph\":\"i\""));
    }

    #[test]
    fn chrome_trace_skips_net_lanes_without_transfers() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            kind: EventKind::Batch,
            time: 0.0,
            proc: ProcId(0),
            tasks: 1,
            blocks: 1,
            duration: 1.0,
        });
        let out = chrome_trace(None, &t, &ProbeSeries::new(), 1);
        assert_balanced(&out);
        assert!(!out.contains("net"));
        assert!(!out.contains("otherData"));
        // ts is in microseconds.
        assert!(out.contains("\"dur\":1000000"));
    }

    #[test]
    fn streamed_chunks_match_buffered_output_byte_for_byte() {
        let (t, probes) = sample_run();
        for chunk in [1usize, 2, 100] {
            // JSONL, fed in `chunk`-sized pieces.
            let mut js = JsonlStream::new(Vec::new(), Some("{\"seed\":7}"));
            for c in t.events().chunks(chunk) {
                js.write_events(c);
            }
            js.finish(&probes);
            let streamed = String::from_utf8(js.into_inner().unwrap()).unwrap();
            assert_eq!(streamed, jsonl(Some("{\"seed\":7}"), &t, &probes));

            // Chrome, same drill (sample_run has transfers => has_net).
            let mut cs = ChromeStream::new(Vec::new(), Some("{\"seed\":7}"), 2, true);
            for c in t.events().chunks(chunk) {
                cs.write_events(c);
            }
            cs.finish(&probes);
            let streamed = String::from_utf8(cs.into_inner().unwrap()).unwrap();
            assert_eq!(streamed, chrome_trace(Some("{\"seed\":7}"), &t, &probes, 2));
        }
    }

    #[test]
    fn null_sink_discards_quietly() {
        let (t, probes) = sample_run();
        let mut s = NullSink;
        s.write_events(t.events());
        s.finish(&probes);
    }
}
