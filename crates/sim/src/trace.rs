//! Execution traces: per-request event logs and coarse text rendering.
//!
//! The paper reasons about *when* data arrives at each processor (the
//! whole analysis is a time evolution of per-worker knowledge). A trace of
//! `(time, worker, tasks, blocks)` tuples makes those dynamics observable:
//! tests use it to check work conservation and communication front-loading,
//! and the text renderer gives a quick utilization picture for humans.

use hetsched_platform::ProcId;
use std::fmt::Write as _;

/// One satisfied work request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the request.
    pub time: f64,
    /// The requesting worker.
    pub proc: ProcId,
    /// Tasks allocated.
    pub tasks: usize,
    /// Blocks shipped for this request.
    pub blocks: u64,
    /// Computation time of the batch.
    pub duration: f64,
}

/// A full run's event log, in request order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Records one event (called by the engine).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cumulative blocks shipped up to (and including) time `t`.
    pub fn blocks_by(&self, t: f64) -> u64 {
        self.events
            .iter()
            .filter(|e| e.time <= t)
            .map(|e| e.blocks)
            .sum()
    }

    /// Fraction of all communication that happened in the first
    /// `fraction` of the makespan — data-aware strategies front-load their
    /// traffic (they buy rows/columns early and reuse them).
    pub fn comm_front_loading(&self, fraction: f64) -> f64 {
        let total: u64 = self.events.iter().map(|e| e.blocks).sum();
        if total == 0 {
            return 0.0;
        }
        let makespan = self.makespan();
        self.blocks_by(makespan * fraction) as f64 / total as f64
    }

    /// Latest batch completion time.
    pub fn makespan(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.time + e.duration)
            .fold(0.0, f64::max)
    }

    /// Per-worker busy time.
    pub fn busy_time(&self, k: ProcId) -> f64 {
        self.events
            .iter()
            .filter(|e| e.proc == k)
            .map(|e| e.duration)
            .sum()
    }

    /// Renders a coarse text Gantt chart: one row per worker, `width`
    /// buckets over the makespan, each bucket showing utilization
    /// (`' '` idle → `'█'` fully busy).
    pub fn gantt(&self, p: usize, width: usize) -> String {
        const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
        let makespan = self.makespan();
        let mut out = String::new();
        if makespan <= 0.0 || width == 0 {
            return out;
        }
        let bucket = makespan / width as f64;
        for k in 0..p {
            let mut busy = vec![0.0f64; width];
            for e in self.events.iter().filter(|e| e.proc.idx() == k) {
                // Spread the batch's duration over the buckets it spans.
                let (start, end) = (e.time, e.time + e.duration);
                let first = ((start / bucket) as usize).min(width - 1);
                let last = ((end / bucket) as usize).min(width - 1);
                for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                    let b0 = b as f64 * bucket;
                    let b1 = b0 + bucket;
                    let overlap = (end.min(b1) - start.max(b0)).max(0.0);
                    *slot += overlap;
                }
            }
            write!(out, "P{k:<3} ").expect("string write");
            for b in busy {
                let u = (b / bucket).clamp(0.0, 1.0);
                let idx = (u * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent {
            time: 0.0,
            proc: ProcId(0),
            tasks: 4,
            blocks: 2,
            duration: 1.0,
        });
        t.push(TraceEvent {
            time: 0.0,
            proc: ProcId(1),
            tasks: 2,
            blocks: 2,
            duration: 2.0,
        });
        t.push(TraceEvent {
            time: 1.0,
            proc: ProcId(0),
            tasks: 4,
            blocks: 1,
            duration: 1.0,
        });
        t
    }

    #[test]
    fn accumulators() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.blocks_by(0.0), 4);
        assert_eq!(t.blocks_by(1.0), 5);
        assert_eq!(t.makespan(), 2.0);
        assert_eq!(t.busy_time(ProcId(0)), 2.0);
        assert_eq!(t.busy_time(ProcId(1)), 2.0);
    }

    #[test]
    fn front_loading() {
        let t = sample();
        // 4 of 5 blocks ship at t = 0; the last request fires exactly at
        // t = 1.0 = makespan/2, so the 0.4-cutoff excludes it and the
        // 0.5-cutoff (inclusive) captures everything.
        assert!((t.comm_front_loading(0.4) - 0.8).abs() < 1e-12);
        assert_eq!(t.comm_front_loading(0.5), 1.0);
        assert_eq!(t.comm_front_loading(1.0), 1.0);
    }

    #[test]
    fn gantt_renders_rows_and_full_utilization() {
        let t = sample();
        let g = t.gantt(2, 8);
        let rows: Vec<&str> = g.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("P0"));
        // Both workers are busy end to end here: all buckets solid.
        for row in rows {
            let cells: String = row.chars().skip(5).collect();
            assert!(cells.chars().all(|c| c == '█'), "row {row:?}");
        }
    }

    #[test]
    fn gantt_shows_idle_tail() {
        let mut t = sample();
        // Worker 0 stops at t = 2; worker 1 keeps going to t = 4.
        t.push(TraceEvent {
            time: 2.0,
            proc: ProcId(1),
            tasks: 2,
            blocks: 0,
            duration: 2.0,
        });
        let g = t.gantt(2, 8);
        let rows: Vec<&str> = g.lines().collect();
        let p0: String = rows[0].chars().skip(5).collect();
        assert!(p0.ends_with("    "), "P0 idle tail missing: {p0:?}");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.comm_front_loading(0.5), 0.0);
        assert_eq!(t.gantt(3, 10), "");
    }
}
