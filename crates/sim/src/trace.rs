//! Execution traces: typed per-event logs and coarse text rendering.
//!
//! The paper reasons about *when* data arrives at each processor (the
//! whole analysis is a time evolution of per-worker knowledge). A trace of
//! typed `(kind, time, worker, tasks, blocks, duration)` tuples makes those
//! dynamics observable: tests use it to check work conservation and
//! communication front-loading, the structured sinks in [`crate::sink`]
//! export it for Perfetto, and the text renderer gives a quick utilization
//! picture for humans.

use hetsched_platform::ProcId;
use std::fmt::Write as _;

/// What happened in a [`TraceEvent`].
///
/// The *allocation* kinds ([`Batch`](EventKind::Batch),
/// [`Retire`](EventKind::Retire), [`Lost`](EventKind::Lost),
/// [`Stranded`](EventKind::Stranded)) correspond one-to-one to
/// [`CommLedger`](crate::CommLedger) records: summing their `blocks`,
/// `tasks` and `duration` fields reconciles exactly with the ledger totals.
/// The remaining kinds are overlay events (network timing, scheduler phase)
/// and carry no ledger-counted volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A batch computed to completion.
    Batch,
    /// The worker retired: the scheduler had nothing left for it (its
    /// blocks, normally zero, still count).
    Retire,
    /// The worker died mid-batch: blocks were shipped and `duration` of
    /// compute burned, but no task of the batch completed.
    Lost,
    /// Networked engine only: a batch in transfer (or arrived but never
    /// started) toward a worker that died — pure bandwidth waste.
    Stranded,
    /// Networked engine only: a batch occupying the master link;
    /// `time`/`duration` span the channel busy interval.
    Transfer,
    /// Networked engine only: the worker sat idle for `duration` waiting
    /// for its next batch to arrive (the transfer wait).
    Wait,
    /// A two-phase scheduler crossed its switch threshold while serving
    /// this worker's request.
    PhaseSwitch,
}

impl EventKind {
    /// True for the kinds that correspond to one ledger-recorded request
    /// (the reconciliation invariants sum over exactly these).
    pub fn is_allocation(self) -> bool {
        matches!(
            self,
            EventKind::Batch | EventKind::Retire | EventKind::Lost | EventKind::Stranded
        )
    }

    /// Stable lower-case label used by the structured sinks.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Batch => "batch",
            EventKind::Retire => "retire",
            EventKind::Lost => "lost",
            EventKind::Stranded => "stranded",
            EventKind::Transfer => "transfer",
            EventKind::Wait => "wait",
            EventKind::PhaseSwitch => "phase_switch",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Simulated time of the event ([`Wait`](EventKind::Wait) and
    /// [`Transfer`](EventKind::Transfer) events start earlier than the
    /// request they serve: `time` is the interval start).
    pub time: f64,
    /// The worker concerned.
    pub proc: ProcId,
    /// Tasks allocated (allocation kinds only; zero otherwise).
    pub tasks: usize,
    /// Blocks shipped for this request (allocation kinds and
    /// [`Transfer`](EventKind::Transfer); a transfer's blocks duplicate the
    /// allocation event they belong to and are excluded from
    /// reconciliation).
    pub blocks: u64,
    /// Length of the interval: compute time for
    /// [`Batch`](EventKind::Batch), burned compute for
    /// [`Lost`](EventKind::Lost), wire time for
    /// [`Transfer`](EventKind::Transfer), idle time for
    /// [`Wait`](EventKind::Wait); zero otherwise.
    pub duration: f64,
}

/// A full run's event log, in engine-emission order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Records one event (called by the engine).
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Drops all events, keeping capacity (streaming recorders reuse the
    /// buffer between chunk flushes).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Pre-sizes the event buffer for at least `n` events, so buffered
    /// recording of a run with a known event count never reallocates.
    pub fn reserve(&mut self, n: usize) {
        self.events.reserve(n.saturating_sub(self.events.len()));
    }

    /// All events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events (all kinds).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of allocation events (the ones the ledger counts as
    /// requests).
    pub fn allocation_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.is_allocation())
            .count()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cumulative blocks shipped up to (and including) time `t`
    /// (allocation events only, so transfers are not double counted).
    pub fn blocks_by(&self, t: f64) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind.is_allocation() && e.time <= t)
            .map(|e| e.blocks)
            .sum()
    }

    /// Fraction of all communication that happened in the first
    /// `fraction` of the makespan — data-aware strategies front-load their
    /// traffic (they buy rows/columns early and reuse them).
    pub fn comm_front_loading(&self, fraction: f64) -> f64 {
        let total: u64 = self
            .events
            .iter()
            .filter(|e| e.kind.is_allocation())
            .map(|e| e.blocks)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let makespan = self.makespan();
        self.blocks_by(makespan * fraction) as f64 / total as f64
    }

    /// Latest batch completion time (allocation events only: waits and
    /// transfers never extend the computed makespan).
    pub fn makespan(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind.is_allocation())
            .map(|e| e.time + e.duration)
            .fold(0.0, f64::max)
    }

    /// Per-worker busy time: compute intervals, including compute burned
    /// by a mid-batch death (matching the ledger's `busy` counter).
    pub fn busy_time(&self, k: ProcId) -> f64 {
        self.events
            .iter()
            .filter(|e| e.proc == k && e.kind.is_allocation())
            .map(|e| e.duration)
            .sum()
    }

    /// Renders a coarse text Gantt chart: one row per worker, `width`
    /// buckets over the makespan, each bucket showing utilization
    /// (`' '` idle → `'█'` fully busy).
    pub fn gantt(&self, p: usize, width: usize) -> String {
        const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
        let makespan = self.makespan();
        let mut out = String::new();
        if makespan <= 0.0 || width == 0 {
            return out;
        }
        let bucket = makespan / width as f64;
        for k in 0..p {
            let mut busy = vec![0.0f64; width];
            for e in self
                .events
                .iter()
                .filter(|e| e.proc.idx() == k && e.kind.is_allocation())
            {
                // Spread the batch's duration over the buckets it spans.
                let (start, end) = (e.time, e.time + e.duration);
                let first = ((start / bucket) as usize).min(width - 1);
                let last = ((end / bucket) as usize).min(width - 1);
                for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                    let b0 = b as f64 * bucket;
                    let b1 = b0 + bucket;
                    let overlap = (end.min(b1) - start.max(b0)).max(0.0);
                    *slot += overlap;
                }
            }
            write!(out, "P{k:<3} ").expect("string write");
            for b in busy {
                let u = (b / bucket).clamp(0.0, 1.0);
                let idx = (u * (SHADES.len() - 1) as f64).round() as usize;
                out.push(SHADES[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(time: f64, proc: u32, tasks: usize, blocks: u64, duration: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Batch,
            time,
            proc: ProcId(proc),
            tasks,
            blocks,
            duration,
        }
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(batch(0.0, 0, 4, 2, 1.0));
        t.push(batch(0.0, 1, 2, 2, 2.0));
        t.push(batch(1.0, 0, 4, 1, 1.0));
        t
    }

    #[test]
    fn accumulators() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.blocks_by(0.0), 4);
        assert_eq!(t.blocks_by(1.0), 5);
        assert_eq!(t.makespan(), 2.0);
        assert_eq!(t.busy_time(ProcId(0)), 2.0);
        assert_eq!(t.busy_time(ProcId(1)), 2.0);
    }

    #[test]
    fn front_loading() {
        let t = sample();
        // 4 of 5 blocks ship at t = 0; the last request fires exactly at
        // t = 1.0 = makespan/2, so the 0.4-cutoff excludes it and the
        // 0.5-cutoff (inclusive) captures everything.
        assert!((t.comm_front_loading(0.4) - 0.8).abs() < 1e-12);
        assert_eq!(t.comm_front_loading(0.5), 1.0);
        assert_eq!(t.comm_front_loading(1.0), 1.0);
    }

    #[test]
    fn overlay_events_do_not_count_as_volume_or_busy_time() {
        let mut t = sample();
        t.push(TraceEvent {
            kind: EventKind::Transfer,
            time: 0.0,
            proc: ProcId(0),
            tasks: 0,
            blocks: 99,
            duration: 5.0,
        });
        t.push(TraceEvent {
            kind: EventKind::Wait,
            time: 0.5,
            proc: ProcId(1),
            tasks: 0,
            blocks: 0,
            duration: 9.0,
        });
        t.push(TraceEvent {
            kind: EventKind::PhaseSwitch,
            time: 1.5,
            proc: ProcId(0),
            tasks: 0,
            blocks: 0,
            duration: 0.0,
        });
        assert_eq!(t.len(), 6);
        assert_eq!(t.allocation_count(), 3);
        assert_eq!(t.blocks_by(10.0), 5, "transfer blocks are not re-counted");
        assert_eq!(t.makespan(), 2.0, "waits never extend the makespan");
        assert_eq!(t.busy_time(ProcId(1)), 2.0, "waiting is not busy time");
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(EventKind::Batch.label(), "batch");
        assert_eq!(EventKind::PhaseSwitch.label(), "phase_switch");
        assert!(EventKind::Lost.is_allocation());
        assert!(!EventKind::Transfer.is_allocation());
    }

    #[test]
    fn gantt_renders_rows_and_full_utilization() {
        let t = sample();
        let g = t.gantt(2, 8);
        let rows: Vec<&str> = g.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("P0"));
        // Both workers are busy end to end here: all buckets solid.
        for row in rows {
            let cells: String = row.chars().skip(5).collect();
            assert!(cells.chars().all(|c| c == '█'), "row {row:?}");
        }
    }

    #[test]
    fn gantt_shows_idle_tail() {
        let mut t = sample();
        // Worker 0 stops at t = 2; worker 1 keeps going to t = 4.
        t.push(batch(2.0, 1, 2, 0, 2.0));
        let g = t.gantt(2, 8);
        let rows: Vec<&str> = g.lines().collect();
        let p0: String = rows[0].chars().skip(5).collect();
        assert!(p0.ends_with("    "), "P0 idle tail missing: {p0:?}");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.comm_front_loading(0.5), 0.0);
        assert_eq!(t.gantt(3, 10), "");
    }
}
