//! The demand-driven simulation loop.

use crate::event::EventQueue;
use crate::metrics::CommLedger;
use crate::scheduler::Scheduler;
use crate::trace::{Trace, TraceEvent};
use hetsched_platform::{Platform, ProcId, SpeedModel, SpeedState};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-worker communication/work ledger.
    pub ledger: CommLedger,
    /// Simulated time at which the last task completed.
    pub makespan: f64,
    /// Total blocks shipped (denormalized convenience copy).
    pub total_blocks: u64,
}

impl SimReport {
    /// Total communication normalized by a lower bound.
    pub fn normalized(&self, lower_bound: f64) -> f64 {
        self.total_blocks as f64 / lower_bound
    }
}

/// The simulation engine: owns the clock, the event queue and the ledger;
/// borrows the platform and drives a [`Scheduler`].
pub struct Engine<'a, S: Scheduler> {
    platform: &'a Platform,
    speeds: SpeedState,
    scheduler: S,
    queue: EventQueue,
    ledger: CommLedger,
    makespan: f64,
}

impl<'a, S: Scheduler> Engine<'a, S> {
    /// Creates an engine over `platform` with the given run-time speed model.
    pub fn new(platform: &'a Platform, model: SpeedModel, scheduler: S) -> Self {
        let p = platform.len();
        Engine {
            platform,
            speeds: SpeedState::new(platform, model),
            scheduler,
            queue: EventQueue::new(),
            ledger: CommLedger::new(p),
            makespan: 0.0,
        }
    }

    /// Runs to completion and returns the report plus the scheduler (whose
    /// final state tests may want to audit).
    ///
    /// All workers request at `t = 0` in a random order — the paper's
    /// strategies are demand driven and the initial service order is an
    /// artifact of the platform, so it is randomized under the run's seed.
    pub fn run(self, rng: &mut StdRng) -> (SimReport, S) {
        let (report, scheduler, _) = self.run_impl(rng, None);
        (report, scheduler)
    }

    /// Like [`run`](Self::run) but also records a [`Trace`] of every
    /// satisfied request.
    pub fn run_traced(self, rng: &mut StdRng) -> (SimReport, S, Trace) {
        let mut trace = Trace::new();
        let (report, scheduler, _) = self.run_impl(rng, Some(&mut trace));
        (report, scheduler, trace)
    }

    fn run_impl(mut self, rng: &mut StdRng, mut trace: Option<&mut Trace>) -> (SimReport, S, ()) {
        let mut initial: Vec<ProcId> = self.platform.procs().collect();
        initial.shuffle(rng);
        for k in initial {
            self.queue.push(0.0, k);
        }

        while let Some((now, k)) = self.queue.pop() {
            if self.scheduler.remaining() == 0 {
                // Drain: every remaining event is a worker coming back after
                // its last batch; nothing left to allocate.
                continue;
            }
            let alloc = self.scheduler.on_request(k, rng);
            if alloc.is_done() {
                // Worker retired (cannot contribute further); its blocks
                // (normally zero) still count.
                self.ledger.record(k, 0, alloc.blocks, 0.0);
                continue;
            }
            let dur = self.speeds.batch_duration(k, alloc.tasks, rng);
            let finish = now + dur;
            self.ledger.record(k, alloc.tasks, alloc.blocks, dur);
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent {
                    time: now,
                    proc: k,
                    tasks: alloc.tasks,
                    blocks: alloc.blocks,
                    duration: dur,
                });
            }
            self.makespan = self.makespan.max(finish);
            self.queue.push(finish, k);
        }

        debug_assert_eq!(
            self.scheduler.remaining(),
            0,
            "engine stopped with unallocated tasks"
        );
        let total_blocks = self.ledger.total_blocks();
        (
            SimReport {
                ledger: self.ledger,
                makespan: self.makespan,
                total_blocks,
            },
            self.scheduler,
            (),
        )
    }
}

/// One-shot convenience with trace recording.
pub fn run_traced<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    rng: &mut StdRng,
) -> (SimReport, S, Trace) {
    Engine::new(platform, model, scheduler).run_traced(rng)
}

/// One-shot convenience: build, run, report.
///
/// # Examples
///
/// ```
/// use hetsched_platform::{Platform, SpeedModel};
/// use hetsched_util::rng::rng_for;
/// # use hetsched_sim::{Allocation, Scheduler};
/// # use hetsched_platform::ProcId;
/// # struct Chunks(usize);
/// # impl Scheduler for Chunks {
/// #     fn on_request(&mut self, _: ProcId, _: &mut rand::rngs::StdRng) -> Allocation {
/// #         let t = self.0.min(4); self.0 -= t;
/// #         Allocation { tasks: t, blocks: t as u64 }
/// #     }
/// #     fn remaining(&self) -> usize { self.0 }
/// #     fn total_tasks(&self) -> usize { 100 }
/// #     fn name(&self) -> &'static str { "chunks" }
/// # }
///
/// let platform = Platform::from_speeds(vec![25.0, 75.0]);
/// let (report, _) = hetsched_sim::run(
///     &platform,
///     SpeedModel::Fixed,
///     Chunks(100),
///     &mut rng_for(0, 0),
/// );
/// assert_eq!(report.ledger.total_tasks(), 100);
/// // Demand driven ⇒ work conserving: makespan ≈ work / Σspeed.
/// assert!((report.makespan - 1.0).abs() < 0.2);
/// ```
pub fn run<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    rng: &mut StdRng,
) -> (SimReport, S) {
    Engine::new(platform, model, scheduler).run(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use hetsched_util::rng::rng_for;

    /// Toy strategy: hands out `batch` tasks per request, one block each.
    struct FixedBatch {
        remaining: usize,
        total: usize,
        batch: usize,
    }

    impl Scheduler for FixedBatch {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng) -> Allocation {
            let t = self.batch.min(self.remaining);
            self.remaining -= t;
            Allocation {
                tasks: t,
                blocks: t as u64,
            }
        }
        fn remaining(&self) -> usize {
            self.remaining
        }
        fn total_tasks(&self) -> usize {
            self.total
        }
        fn name(&self) -> &'static str {
            "FixedBatch"
        }
    }

    fn toy(total: usize, batch: usize) -> FixedBatch {
        FixedBatch {
            remaining: total,
            total,
            batch,
        }
    }

    #[test]
    fn all_tasks_get_done() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 70.0]);
        let mut rng = rng_for(0, 0);
        let (report, sched) = run(&pf, SpeedModel::Fixed, toy(1000, 10), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 1000);
        assert_eq!(report.total_blocks, 1000);
    }

    #[test]
    fn faster_processors_do_proportionally_more() {
        let pf = Platform::from_speeds(vec![10.0, 90.0]);
        let mut rng = rng_for(1, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(10_000, 1), &mut rng);
        let t0 = report.ledger.tasks(ProcId(0)) as f64;
        let t1 = report.ledger.tasks(ProcId(1)) as f64;
        // Demand-driven: shares track relative speeds (0.1 / 0.9).
        assert!((t0 / 10_000.0 - 0.1).abs() < 0.01, "t0 = {t0}");
        assert!((t1 / 10_000.0 - 0.9).abs() < 0.01, "t1 = {t1}");
    }

    #[test]
    fn makespan_matches_total_work_over_total_speed() {
        // Single-task batches, fixed speeds: the demand-driven engine is
        // work conserving, so makespan ≈ total_tasks / Σ s_i, up to one task.
        let pf = Platform::from_speeds(vec![25.0, 75.0]);
        let mut rng = rng_for(2, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(5000, 1), &mut rng);
        let ideal = 5000.0 / 100.0;
        assert!(
            (report.makespan - ideal).abs() < 2.0 / 25.0,
            "makespan {} vs ideal {}",
            report.makespan,
            ideal
        );
    }

    #[test]
    fn busy_time_within_one_batch_of_makespan() {
        // Work conservation: a worker only goes idle when the task pool is
        // empty, so its idle time is bounded by the duration of the last
        // batch still running elsewhere — at most one batch on the
        // *slowest* worker.
        let pf = Platform::from_speeds(vec![10.0, 40.0, 50.0]);
        let mut rng = rng_for(3, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(2000, 7), &mut rng);
        let slowest_batch = 7.0 / 10.0;
        for k in pf.procs() {
            let slack = report.makespan - report.ledger.busy(k);
            assert!(
                slack <= slowest_batch + 1e-9,
                "worker {k} idle for {slack}, more than the slowest batch {slowest_batch}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0]);
        let (r1, _) = run(&pf, SpeedModel::Fixed, toy(500, 3), &mut rng_for(7, 0));
        let (r2, _) = run(&pf, SpeedModel::Fixed, toy(500, 3), &mut rng_for(7, 0));
        assert_eq!(r1.total_blocks, r2.total_blocks);
        assert_eq!(r1.ledger.tasks_per_proc(), r2.ledger.tasks_per_proc());
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn dynamic_speeds_complete_all_work() {
        let pf = Platform::from_speeds(vec![100.0, 100.0]);
        let mut rng = rng_for(8, 0);
        let (report, _) = run(&pf, SpeedModel::dyn20(), toy(3000, 5), &mut rng);
        assert_eq!(report.ledger.total_tasks(), 3000);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn normalized_report() {
        let pf = Platform::homogeneous(4);
        let mut rng = rng_for(9, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(100, 1), &mut rng);
        assert!((report.normalized(50.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_worker_platform() {
        let pf = Platform::from_speeds(vec![7.0]);
        let mut rng = rng_for(10, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(49, 6), &mut rng);
        assert_eq!(report.ledger.tasks(ProcId(0)), 49);
        assert!((report.makespan - 7.0).abs() < 1e-9);
    }
}
