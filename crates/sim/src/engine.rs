//! The demand-driven simulation loop.

use crate::event::EventQueue;
use crate::metrics::CommLedger;
use crate::probe::{ProbeConfig, Recorder};
use crate::scheduler::Scheduler;
use crate::sink::StreamingSink;
use crate::trace::{EventKind, Trace, TraceEvent};
use hetsched_net::NetworkModel;
use hetsched_platform::{FailureModel, Platform, ProcId, SpeedModel, SpeedState};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// Outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-worker communication/work ledger.
    pub ledger: CommLedger,
    /// Simulated time at which the last task completed.
    pub makespan: f64,
    /// Total blocks shipped (denormalized convenience copy).
    pub total_blocks: u64,
    /// Tasks lost to worker failures (each was re-allocated and completed
    /// elsewhere; zero without fault injection).
    pub lost_tasks: u64,
    /// Blocks shipped for batches that re-allocate failure-lost tasks (zero
    /// without fault injection).
    pub reshipped_blocks: u64,
    /// Master-link utilization (busy time over `makespan × channels`; zero
    /// under [`NetworkModel::Infinite`]).
    pub link_utilization: f64,
    /// Largest number of batches ever queued behind the master's busy
    /// channels (zero under [`NetworkModel::Infinite`]).
    pub max_queue_depth: usize,
    /// Blocks transferred toward workers that failed before computing on
    /// them — bandwidth wasted on corpses (zero without fault injection or
    /// under [`NetworkModel::Infinite`]).
    pub wasted_blocks: u64,
    /// Blocks shipped over root → sub-master links by the hierarchical tree
    /// topology ([`crate::tree::run_tree`]). Always zero on the flat
    /// topology and for a single-sub-master tree; counted in
    /// [`total_blocks`](Self::total_blocks) but not in the per-worker
    /// ledger.
    pub tier_blocks: u64,
    /// Result (C-block) volume written back to the master over the priced
    /// link. Zero unless return-path pricing is enabled
    /// ([`Engine::with_return_pricing`]); kept out of
    /// [`total_blocks`](Self::total_blocks) so the input-traffic lower-bound
    /// comparison stays meaningful.
    pub returned_blocks: u64,
}

impl SimReport {
    /// Total communication normalized by a lower bound.
    pub fn normalized(&self, lower_bound: f64) -> f64 {
        self.total_blocks as f64 / lower_bound
    }
}

/// The simulation engine: owns the clock, the event queue and the ledger;
/// borrows the platform and drives a [`Scheduler`].
pub struct Engine<'a, S: Scheduler> {
    pub(crate) platform: &'a Platform,
    pub(crate) speeds: SpeedState,
    pub(crate) scheduler: S,
    pub(crate) queue: EventQueue,
    pub(crate) ledger: CommLedger,
    pub(crate) makespan: f64,
    pub(crate) failures: FailureModel,
    pub(crate) network: NetworkModel,
    pub(crate) price_returns: bool,
}

impl<'a, S: Scheduler> Engine<'a, S> {
    /// Creates an engine over `platform` with the given run-time speed model.
    pub fn new(platform: &'a Platform, model: SpeedModel, scheduler: S) -> Self {
        let p = platform.len();
        Engine {
            platform,
            speeds: SpeedState::new(platform, model),
            scheduler,
            queue: EventQueue::new(),
            ledger: CommLedger::new(p),
            makespan: 0.0,
            failures: FailureModel::none(),
            network: NetworkModel::Infinite,
            price_returns: false,
        }
    }

    /// Prices transfers under `network` instead of the paper's free
    /// communication model. With [`NetworkModel::Infinite`] (the default)
    /// the engine takes the exact pre-network code path, so results are
    /// bit-for-bit identical to an engine without this call.
    ///
    /// # Panics
    ///
    /// If the model's bandwidths do not validate.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        network.validate().expect("invalid network model");
        self.network = network;
        self
    }

    /// Also charges each completed batch's result write-back (one C block
    /// per task, the coarse uniform-block model the input path already uses)
    /// on the master link. Returns contend with input transfers for the same
    /// channels, so enabling this raises link utilization and can extend the
    /// makespan to the arrival of the last write-back. Off by default —
    /// existing runs stay bit-identical — and a no-op under
    /// [`NetworkModel::Infinite`], where all transfers are free anyway.
    pub fn with_return_pricing(mut self, price_returns: bool) -> Self {
        self.price_returns = price_returns;
        self
    }

    /// Injects a fault scenario. Stragglers degrade their worker's speed
    /// immediately; fail-stop failures are discovered when the dying batch
    /// would have finished. With [`FailureModel::none`] the engine takes no
    /// extra RNG draws and schedules no extra events, so results are
    /// bit-for-bit identical to a fault-free run.
    ///
    /// # Panics
    ///
    /// If the scenario does not validate against this platform.
    pub fn with_failures(mut self, failures: &FailureModel) -> Self {
        failures
            .validate(self.platform.len())
            .expect("invalid failure scenario for this platform");
        assert!(
            !failures.has_stochastic(),
            "stochastic failure entries must be resolved (FailureModel::resolve) \
             before the engine consumes the scenario"
        );
        for &(k, factor) in failures.stragglers() {
            self.speeds.slow_down(k, factor);
        }
        self.failures = failures.clone();
        self
    }

    /// Runs to completion and returns the report plus the scheduler (whose
    /// final state tests may want to audit).
    ///
    /// All workers request at `t = 0` in a random order — the paper's
    /// strategies are demand driven and the initial service order is an
    /// artifact of the platform, so it is randomized under the run's seed.
    pub fn run(self, rng: &mut StdRng) -> (SimReport, S) {
        let (report, scheduler, _) = self.run_impl(rng, None::<&mut Recorder>);
        (report, scheduler)
    }

    /// Like [`run`](Self::run) but also records a [`Trace`] of every
    /// satisfied request (a [`Recorder`] with probing disabled).
    pub fn run_traced(self, rng: &mut StdRng) -> (SimReport, S, Trace) {
        let mut rec = Recorder::new(ProbeConfig::disabled());
        let (report, scheduler, _) = self.run_impl(rng, Some(&mut rec));
        (report, scheduler, rec.into_trace())
    }

    /// Like [`run`](Self::run) but emits every event and probe sample
    /// through `rec`. With probing disabled this is trace collection; with
    /// a cadence configured the recorder also snapshots the ODE-observable
    /// state ([`crate::ProbeSample`]) over the run. The recorder may be
    /// buffered (the default) or [streaming](Recorder::streaming) into any
    /// [`StreamingSink`].
    pub fn run_recorded<K: StreamingSink>(
        self,
        rng: &mut StdRng,
        rec: &mut Recorder<K>,
    ) -> (SimReport, S) {
        let (report, scheduler, _) = self.run_impl(rng, Some(rec));
        (report, scheduler)
    }

    fn run_impl<K: StreamingSink>(
        mut self,
        rng: &mut StdRng,
        mut rec: Option<&mut Recorder<K>>,
    ) -> (SimReport, S, ()) {
        if !self.network.is_infinite() {
            // Priced transfers need their own event loop (transfers are
            // events, communication overlaps computation). The infinite
            // model stays on the original loop below, untouched, so it is
            // bit-for-bit identical to the pre-network engine.
            return self.run_networked(rng, rec);
        }
        let p = self.platform.len();
        let mut initial: Vec<ProcId> = self.platform.procs().collect();
        initial.shuffle(rng);
        for k in initial {
            self.queue.push(0.0, k);
        }

        // Fault bookkeeping. All of it stays inert with `FailureModel::none()`
        // — no extra events, no extra RNG draws — so fault-free runs are
        // bit-for-bit identical to the fault-unaware engine.
        let fail_time: Vec<Option<f64>> = self
            .platform
            .procs()
            .map(|k| self.failures.fail_time(k))
            .collect();
        // `dying[i]`: worker i was allocated a batch it will not finish; its
        // next event (at the failure time) is the discovery of its death.
        let mut dying = vec![false; p];
        let mut dying_until = vec![f64::INFINITY; p];
        let mut dead = vec![false; p];
        let mut in_flight: Vec<Vec<u32>> = vec![Vec::new(); p];
        // Ids lost to failures and not yet re-allocated, for re-ship
        // accounting.
        let mut lost_ids: HashSet<u32> = HashSet::new();
        // Engine-owned batch arena: cleared and refilled by the scheduler on
        // every request, so the steady-state loop performs no heap
        // allocation once the buffer reaches the largest batch size.
        let mut batch: Vec<u32> = Vec::new();

        if let Some(r) = rec.as_deref_mut() {
            // Pre-size the trace: roughly one event per allocation (at
            // most one per task with single-task batches) plus one
            // retirement per worker, capped so absurd configs don't
            // over-reserve. Buffered recording then never pays the
            // reallocate-and-copy growth of the event vector.
            r.reserve_events((self.scheduler.total_tasks() + p).min(1 << 20), p);
            // Anchor the probed trajectory at t = 0.
            r.sample(0.0, &self.scheduler, &self.ledger, None);
        }

        while let Some((now, k)) = self.queue.pop() {
            let i = k.idx();
            if dying[i] {
                // Scheduled death discovery: the in-flight batch is lost and
                // returns to the scheduler's residual pool.
                dying[i] = false;
                dying_until[i] = f64::INFINITY;
                dead[i] = true;
                self.ledger.record_lost(k, in_flight[i].len());
                lost_ids.extend(in_flight[i].iter().copied());
                self.scheduler.on_tasks_lost(&in_flight[i]);
                in_flight[i].clear();
                continue;
            }
            if dead[i] {
                continue;
            }
            if let Some(f) = fail_time[i] {
                if f <= now {
                    // Died while idle, between batches: nothing in flight.
                    dead[i] = true;
                    continue;
                }
            }
            if self.scheduler.remaining() == 0 {
                let earliest_death = dying_until.iter().copied().fold(f64::INFINITY, f64::min);
                if earliest_death.is_finite() {
                    // A failing worker still holds tasks that will return to
                    // the pool; come back when its death is discovered.
                    self.queue.push(earliest_death.max(now), k);
                } else {
                    // Drain: every remaining event is a worker coming back
                    // after its last batch; nothing left to allocate.
                }
                continue;
            }
            batch.clear();
            let alloc = self.scheduler.on_request(k, rng, &mut batch);
            debug_assert_eq!(
                batch.len(),
                alloc.tasks,
                "scheduler contract: out ids == tasks"
            );
            if let Some(r) = rec.as_deref_mut() {
                r.note_phase(now, k, &self.scheduler);
            }
            if alloc.is_done() {
                // Worker retired (cannot contribute further); its blocks
                // (normally zero) still count.
                self.ledger.record(k, 0, alloc.blocks, 0.0);
                if let Some(r) = rec.as_deref_mut() {
                    r.observe(
                        TraceEvent {
                            kind: EventKind::Retire,
                            time: now,
                            proc: k,
                            tasks: 0,
                            blocks: alloc.blocks,
                            duration: 0.0,
                        },
                        &self.scheduler,
                        &self.ledger,
                        None,
                    );
                }
                continue;
            }
            if !lost_ids.is_empty() {
                // Re-ship accounting, at batch granularity: a batch that
                // re-allocates any failure-lost task charges its blocks to
                // the recovery counter. Once every lost id has been
                // re-allocated the set is empty again and this block costs
                // nothing — fault-free and recovered steady states do zero
                // extra work.
                let mut reallocates = false;
                for id in &batch {
                    if lost_ids.remove(id) {
                        reallocates = true;
                    }
                }
                if reallocates {
                    self.ledger.record_reshipped(k, alloc.blocks);
                }
            }
            let dur = self.speeds.batch_duration(k, alloc.tasks, rng);
            let finish = now + dur;
            match fail_time[i] {
                Some(f) if f < finish => {
                    // The worker dies mid-batch at time `f`: the blocks were
                    // shipped and `f − now` of compute is burned, but no task
                    // of this batch completes. Discovery is scheduled at `f`.
                    self.ledger.record(k, 0, alloc.blocks, f - now);
                    // Swap instead of clone: `in_flight[i]` is empty here (a
                    // worker requests only after its previous batch is fully
                    // accounted), so the arena buffer changes hands at zero
                    // cost and no allocation happens on the fault path.
                    std::mem::swap(&mut in_flight[i], &mut batch);
                    dying[i] = true;
                    dying_until[i] = f;
                    if let Some(r) = rec.as_deref_mut() {
                        r.observe(
                            TraceEvent {
                                kind: EventKind::Lost,
                                time: now,
                                proc: k,
                                tasks: 0,
                                blocks: alloc.blocks,
                                duration: f - now,
                            },
                            &self.scheduler,
                            &self.ledger,
                            None,
                        );
                    }
                    self.queue.push(f, k);
                }
                _ => {
                    self.ledger.record(k, alloc.tasks, alloc.blocks, dur);
                    if let Some(r) = rec.as_deref_mut() {
                        r.observe(
                            TraceEvent {
                                kind: EventKind::Batch,
                                time: now,
                                proc: k,
                                tasks: alloc.tasks,
                                blocks: alloc.blocks,
                                duration: dur,
                            },
                            &self.scheduler,
                            &self.ledger,
                            None,
                        );
                    }
                    self.makespan = self.makespan.max(finish);
                    self.queue.push(finish, k);
                }
            }
        }

        if let Some(r) = rec {
            // Anchor the probed trajectory at the makespan.
            r.sample(self.makespan, &self.scheduler, &self.ledger, None);
        }

        assert_eq!(
            self.scheduler.remaining(),
            0,
            "engine stopped with unallocated tasks"
        );
        let total_blocks = self.ledger.total_blocks();
        let lost_tasks = self.ledger.total_lost_tasks();
        let reshipped_blocks = self.ledger.total_reshipped_blocks();
        (
            SimReport {
                ledger: self.ledger,
                makespan: self.makespan,
                total_blocks,
                lost_tasks,
                reshipped_blocks,
                link_utilization: 0.0,
                max_queue_depth: 0,
                wasted_blocks: 0,
                tier_blocks: 0,
                returned_blocks: 0,
            },
            self.scheduler,
            (),
        )
    }
}

/// One-shot convenience with trace recording.
pub fn run_traced<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    rng: &mut StdRng,
) -> (SimReport, S, Trace) {
    Engine::new(platform, model, scheduler).run_traced(rng)
}

/// One-shot convenience: build, run, report.
///
/// # Examples
///
/// ```
/// use hetsched_platform::{Platform, SpeedModel};
/// use hetsched_util::rng::rng_for;
/// # use hetsched_sim::{Allocation, Scheduler};
/// # use hetsched_platform::ProcId;
/// # struct Chunks(usize);
/// # impl Scheduler for Chunks {
/// #     fn on_request(&mut self, _: ProcId, _: &mut rand::rngs::StdRng, out: &mut Vec<u32>) -> Allocation {
/// #         let t = self.0.min(4); self.0 -= t;
/// #         out.extend((self.0 as u32)..(self.0 + t) as u32);
/// #         Allocation { tasks: t, blocks: t as u64 }
/// #     }
/// #     fn remaining(&self) -> usize { self.0 }
/// #     fn total_tasks(&self) -> usize { 100 }
/// #     fn name(&self) -> &'static str { "chunks" }
/// # }
///
/// let platform = Platform::from_speeds(vec![25.0, 75.0]);
/// let (report, _) = hetsched_sim::run(
///     &platform,
///     SpeedModel::Fixed,
///     Chunks(100),
///     &mut rng_for(0, 0),
/// );
/// assert_eq!(report.ledger.total_tasks(), 100);
/// // Demand driven ⇒ work conserving: makespan ≈ work / Σspeed.
/// assert!((report.makespan - 1.0).abs() < 0.2);
/// ```
pub fn run<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    rng: &mut StdRng,
) -> (SimReport, S) {
    Engine::new(platform, model, scheduler).run(rng)
}

/// One-shot convenience with fault injection. With
/// [`FailureModel::none`] this is exactly [`run`].
pub fn run_with_failures<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    failures: &FailureModel,
    rng: &mut StdRng,
) -> (SimReport, S) {
    Engine::new(platform, model, scheduler)
        .with_failures(failures)
        .run(rng)
}

/// One-shot convenience with fault injection and trace recording.
pub fn run_traced_with_failures<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    failures: &FailureModel,
    rng: &mut StdRng,
) -> (SimReport, S, Trace) {
    Engine::new(platform, model, scheduler)
        .with_failures(failures)
        .run_traced(rng)
}

/// One-shot convenience with both fault injection and a network model. With
/// [`FailureModel::none`] and [`NetworkModel::Infinite`] this is exactly
/// [`run`].
pub fn run_configured<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    failures: &FailureModel,
    network: NetworkModel,
    rng: &mut StdRng,
) -> (SimReport, S) {
    Engine::new(platform, model, scheduler)
        .with_failures(failures)
        .with_network(network)
        .run(rng)
}

/// One-shot convenience: faults + network + a caller-owned [`Recorder`]
/// (trace plus probe samples), buffered or
/// [streaming](Recorder::streaming).
pub fn run_configured_recorded<S: Scheduler, K: StreamingSink>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    failures: &FailureModel,
    network: NetworkModel,
    rng: &mut StdRng,
    rec: &mut Recorder<K>,
) -> (SimReport, S) {
    Engine::new(platform, model, scheduler)
        .with_failures(failures)
        .with_network(network)
        .run_recorded(rng, rec)
}

/// One-shot convenience: faults + network + trace.
pub fn run_configured_traced<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    scheduler: S,
    failures: &FailureModel,
    network: NetworkModel,
    rng: &mut StdRng,
) -> (SimReport, S, Trace) {
    Engine::new(platform, model, scheduler)
        .with_failures(failures)
        .with_network(network)
        .run_traced(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use hetsched_util::rng::rng_for;

    /// Toy strategy: hands out `batch` tasks per request, one block each.
    struct FixedBatch {
        remaining: usize,
        total: usize,
        batch: usize,
    }

    impl Scheduler for FixedBatch {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            let t = self.batch.min(self.remaining);
            self.remaining -= t;
            out.extend((self.remaining as u32)..(self.remaining + t) as u32);
            Allocation {
                tasks: t,
                blocks: t as u64,
            }
        }
        fn remaining(&self) -> usize {
            self.remaining
        }
        fn total_tasks(&self) -> usize {
            self.total
        }
        fn name(&self) -> &'static str {
            "FixedBatch"
        }
    }

    fn toy(total: usize, batch: usize) -> FixedBatch {
        FixedBatch {
            remaining: total,
            total,
            batch,
        }
    }

    #[test]
    fn all_tasks_get_done() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 70.0]);
        let mut rng = rng_for(0, 0);
        let (report, sched) = run(&pf, SpeedModel::Fixed, toy(1000, 10), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 1000);
        assert_eq!(report.total_blocks, 1000);
    }

    #[test]
    fn faster_processors_do_proportionally_more() {
        let pf = Platform::from_speeds(vec![10.0, 90.0]);
        let mut rng = rng_for(1, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(10_000, 1), &mut rng);
        let t0 = report.ledger.tasks(ProcId(0)) as f64;
        let t1 = report.ledger.tasks(ProcId(1)) as f64;
        // Demand-driven: shares track relative speeds (0.1 / 0.9).
        assert!((t0 / 10_000.0 - 0.1).abs() < 0.01, "t0 = {t0}");
        assert!((t1 / 10_000.0 - 0.9).abs() < 0.01, "t1 = {t1}");
    }

    #[test]
    fn makespan_matches_total_work_over_total_speed() {
        // Single-task batches, fixed speeds: the demand-driven engine is
        // work conserving, so makespan ≈ total_tasks / Σ s_i, up to one task.
        let pf = Platform::from_speeds(vec![25.0, 75.0]);
        let mut rng = rng_for(2, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(5000, 1), &mut rng);
        let ideal = 5000.0 / 100.0;
        assert!(
            (report.makespan - ideal).abs() < 2.0 / 25.0,
            "makespan {} vs ideal {}",
            report.makespan,
            ideal
        );
    }

    #[test]
    fn busy_time_within_one_batch_of_makespan() {
        // Work conservation: a worker only goes idle when the task pool is
        // empty, so its idle time is bounded by the duration of the last
        // batch still running elsewhere — at most one batch on the
        // *slowest* worker.
        let pf = Platform::from_speeds(vec![10.0, 40.0, 50.0]);
        let mut rng = rng_for(3, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(2000, 7), &mut rng);
        let slowest_batch = 7.0 / 10.0;
        for k in pf.procs() {
            let slack = report.makespan - report.ledger.busy(k);
            assert!(
                slack <= slowest_batch + 1e-9,
                "worker {k} idle for {slack}, more than the slowest batch {slowest_batch}"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0]);
        let (r1, _) = run(&pf, SpeedModel::Fixed, toy(500, 3), &mut rng_for(7, 0));
        let (r2, _) = run(&pf, SpeedModel::Fixed, toy(500, 3), &mut rng_for(7, 0));
        assert_eq!(r1.total_blocks, r2.total_blocks);
        assert_eq!(r1.ledger.tasks_per_proc(), r2.ledger.tasks_per_proc());
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn dynamic_speeds_complete_all_work() {
        let pf = Platform::from_speeds(vec![100.0, 100.0]);
        let mut rng = rng_for(8, 0);
        let (report, _) = run(&pf, SpeedModel::dyn20(), toy(3000, 5), &mut rng);
        assert_eq!(report.ledger.total_tasks(), 3000);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn normalized_report() {
        let pf = Platform::homogeneous(4);
        let mut rng = rng_for(9, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(100, 1), &mut rng);
        assert!((report.normalized(50.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_worker_platform() {
        let pf = Platform::from_speeds(vec![7.0]);
        let mut rng = rng_for(10, 0);
        let (report, _) = run(&pf, SpeedModel::Fixed, toy(49, 6), &mut rng);
        assert_eq!(report.ledger.tasks(ProcId(0)), 49);
        assert!((report.makespan - 7.0).abs() < 1e-9);
    }

    /// Toy strategy with a real task pool: reports allocated ids and supports
    /// reallocation, and counts net allocations per task so tests can check
    /// the exactly-once contract under failures.
    struct PoolSched {
        pool: Vec<u32>,
        total: usize,
        batch: usize,
        /// Net allocation count per id (+1 allocated, −1 lost).
        counts: Vec<i32>,
    }

    fn pool(total: usize, batch: usize) -> PoolSched {
        PoolSched {
            pool: (0..total as u32).rev().collect(),
            total,
            batch,
            counts: vec![0; total],
        }
    }

    impl Scheduler for PoolSched {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            let t = self.batch.min(self.pool.len());
            for _ in 0..t {
                let id = self.pool.pop().expect("pool underflow");
                self.counts[id as usize] += 1;
                out.push(id);
            }
            Allocation {
                tasks: t,
                blocks: t as u64,
            }
        }
        fn on_tasks_lost(&mut self, ids: &[u32]) {
            for &id in ids {
                self.counts[id as usize] -= 1;
                self.pool.push(id);
            }
        }
        fn remaining(&self) -> usize {
            self.pool.len()
        }
        fn total_tasks(&self) -> usize {
            self.total
        }
        fn name(&self) -> &'static str {
            "PoolSched"
        }
    }

    #[test]
    fn no_failures_is_bit_for_bit_identical() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 70.0]);
        let (plain, _) = run(&pf, SpeedModel::dyn5(), pool(600, 4), &mut rng_for(11, 0));
        let (faulty, _) = run_with_failures(
            &pf,
            SpeedModel::dyn5(),
            pool(600, 4),
            &FailureModel::none(),
            &mut rng_for(11, 0),
        );
        assert_eq!(plain.total_blocks, faulty.total_blocks);
        assert_eq!(
            plain.ledger.tasks_per_proc(),
            faulty.ledger.tasks_per_proc()
        );
        assert_eq!(plain.makespan, faulty.makespan);
        assert_eq!(faulty.lost_tasks, 0);
        assert_eq!(faulty.reshipped_blocks, 0);
    }

    #[test]
    fn failed_worker_batch_is_reallocated_exactly_once() {
        let pf = Platform::from_speeds(vec![10.0, 10.0]);
        let failures = FailureModel::none().fail_at(ProcId(0), 1.2);
        let (report, sched) = run_with_failures(
            &pf,
            SpeedModel::Fixed,
            pool(100, 5),
            &failures,
            &mut rng_for(12, 0),
        );
        // Worker 0 dies mid-batch: its 5 in-flight tasks are lost, returned
        // to the pool, and completed elsewhere.
        assert_eq!(report.lost_tasks, 5);
        assert_eq!(report.ledger.lost_tasks(ProcId(0)), 5);
        assert_eq!(report.ledger.total_tasks(), 100);
        assert!(report.reshipped_blocks > 0, "recovery re-ships blocks");
        assert!(
            sched.counts.iter().all(|&c| c == 1),
            "every task allocated exactly once net of losses"
        );
        // The survivor finishes the failed worker's share.
        assert!(report.ledger.tasks(ProcId(1)) > 50);
    }

    #[test]
    fn failure_discovery_unparks_drained_workers() {
        // The fast worker exhausts the pool and would drain at t = 0.1, long
        // before the slow worker's death at t = 5 returns 10 tasks to the
        // pool. The engine must bring it back to pick those up.
        let pf = Platform::from_speeds(vec![1.0, 100.0]);
        let failures = FailureModel::none().fail_at(ProcId(0), 5.0);
        let (report, sched) = run_with_failures(
            &pf,
            SpeedModel::Fixed,
            pool(20, 10),
            &failures,
            &mut rng_for(13, 0),
        );
        assert_eq!(report.lost_tasks, 10);
        assert_eq!(report.ledger.total_tasks(), 20);
        assert_eq!(report.ledger.tasks(ProcId(1)), 20);
        assert!(sched.counts.iter().all(|&c| c == 1));
        // Recovery starts only at the discovery time.
        assert!((report.makespan - 5.1).abs() < 1e-9, "{}", report.makespan);
    }

    #[test]
    fn straggler_shifts_load_without_losing_tasks() {
        let pf = Platform::from_speeds(vec![10.0, 10.0]);
        let failures = FailureModel::none().slow_down(ProcId(0), 4.0);
        let (report, _) = run_with_failures(
            &pf,
            SpeedModel::Fixed,
            pool(1000, 1),
            &failures,
            &mut rng_for(14, 0),
        );
        assert_eq!(report.lost_tasks, 0);
        assert_eq!(report.ledger.total_tasks(), 1000);
        let t0 = report.ledger.tasks(ProcId(0)) as f64;
        // Effective speeds 2.5 vs 10 ⇒ the straggler does ~1/5 of the work.
        assert!((t0 / 1000.0 - 0.2).abs() < 0.02, "t0 = {t0}");
    }

    #[test]
    fn deterministic_under_seed_with_failures() {
        let pf = Platform::from_speeds(vec![30.0, 50.0, 20.0]);
        let failures = FailureModel::none()
            .fail_at(ProcId(2), 0.7)
            .slow_down(ProcId(0), 2.0);
        let go = || {
            run_with_failures(
                &pf,
                SpeedModel::dyn5(),
                pool(800, 3),
                &failures,
                &mut rng_for(15, 0),
            )
            .0
        };
        let (r1, r2) = (go(), go());
        assert_eq!(r1.total_blocks, r2.total_blocks);
        assert_eq!(r1.ledger.tasks_per_proc(), r2.ledger.tasks_per_proc());
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.lost_tasks, r2.lost_tasks);
        assert_eq!(r1.reshipped_blocks, r2.reshipped_blocks);
    }

    /// Worker 0 retires immediately (with one futile block); the others share
    /// the pool. Exercises the retirement trace event.
    struct RetireFirst(PoolSched);

    impl Scheduler for RetireFirst {
        fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            if k.idx() == 0 {
                return Allocation {
                    tasks: 0,
                    blocks: 1,
                };
            }
            self.0.on_request(k, rng, out)
        }
        fn remaining(&self) -> usize {
            self.0.remaining()
        }
        fn total_tasks(&self) -> usize {
            self.0.total_tasks()
        }
        fn name(&self) -> &'static str {
            "RetireFirst"
        }
    }

    #[test]
    fn trace_reconciles_with_ledger_including_retirement() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0]);
        let mut rng = rng_for(16, 0);
        let (report, _, trace) =
            Engine::new(&pf, SpeedModel::Fixed, RetireFirst(pool(200, 4))).run_traced(&mut rng);

        // The retirement is visible in the trace as a typed event…
        let retire: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Retire)
            .collect();
        assert_eq!(retire.len(), 1);
        assert_eq!(retire[0].proc, ProcId(0));
        assert_eq!(retire[0].blocks, 1);
        assert_eq!(retire[0].duration, 0.0);

        // …and the trace reconciles with the ledger event for event
        // (allocation kinds only — overlay kinds carry no ledger volume).
        let alloc_events = || trace.events().iter().filter(|e| e.kind.is_allocation());
        let trace_blocks: u64 = alloc_events().map(|e| e.blocks).sum();
        assert_eq!(trace_blocks, report.ledger.total_blocks());
        let trace_tasks: usize = alloc_events().map(|e| e.tasks).sum();
        assert_eq!(trace_tasks as u64, report.ledger.total_tasks());
        let requests: u64 = pf.procs().map(|k| report.ledger.requests(k)).sum();
        assert_eq!(trace.allocation_count() as u64, requests);
        for k in pf.procs() {
            assert!((trace.busy_time(k) - report.ledger.busy(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn recorded_run_matches_plain_run_and_probes_anchor() {
        use crate::probe::{ProbeConfig, Recorder};
        let pf = Platform::from_speeds(vec![10.0, 30.0]);
        let (plain, _) = run(&pf, SpeedModel::Fixed, toy(400, 4), &mut rng_for(17, 0));
        let mut rec = Recorder::new(ProbeConfig::by_events(10));
        let (probed, _) = Engine::new(&pf, SpeedModel::Fixed, toy(400, 4))
            .run_recorded(&mut rng_for(17, 0), &mut rec);
        // Observation never perturbs the simulation.
        assert_eq!(plain.total_blocks, probed.total_blocks);
        assert_eq!(plain.makespan, probed.makespan);
        let (trace, probes) = rec.into_parts();
        assert_eq!(trace.allocation_count(), 100);
        // Anchors at both ends plus every tenth allocation in between.
        assert!(probes.len() >= 2 + 100 / 10, "{} samples", probes.len());
        let first = probes.get(0);
        let last = probes.last().unwrap();
        assert_eq!(first.time, 0.0);
        assert_eq!(first.remaining, 400);
        assert_eq!(last.time, probed.makespan);
        assert_eq!(last.remaining, 0);
        // Monotone residual trajectory.
        let all: Vec<_> = probes.iter().collect();
        for w in all.windows(2) {
            assert!(w[1].remaining <= w[0].remaining);
            assert!(w[1].time >= w[0].time);
        }
    }
}
