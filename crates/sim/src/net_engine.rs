//! The bandwidth-aware simulation loop.
//!
//! Under a priced [`NetworkModel`](hetsched_net::NetworkModel) the engine
//! cannot reuse the infinite-network loop (where a pop is simultaneously
//! "compute done" and "next request"): transfers now take time, so they are
//! events of their own, and communication must *overlap* computation or the
//! network cost would be grossly overstated.
//!
//! The loop implements depth-1 prefetch — the master sends a worker its next
//! batch while the current one computes:
//!
//! * when a batch **starts computing**, the worker immediately requests the
//!   next one; its transfer is priced by [`NetState`] and an `Arrive` event
//!   is scheduled;
//! * an arriving batch starts computing at `max(arrival, compute-done)`;
//!   the gap `arrival − compute-done`, when positive, is the worker's
//!   *transfer wait* — the quantity the infinite model assumes away;
//! * worker deaths are unconditional `Death` events pushed before anything
//!   else, so a failure at time `f` is always discovered at `f`. A batch in
//!   flight (or arrived but never started) toward a dead worker is pure
//!   waste: its blocks count as shipped *and* wasted, and its tasks return
//!   to the scheduler exactly once.
//!
//! Fail-stop semantics match the infinite engine: a batch whose computation
//! would finish strictly after the worker's failure time is lost (its blocks
//! and the burned compute time are recorded, its tasks re-allocated), while
//! a batch finishing exactly at the failure time completes.
//!
//! ## Batch storage
//!
//! Batches in flight live in a structure-of-arrays layout: the task ids of
//! every live batch share one [`IdArena`] (a single `Vec<u32>` addressed by
//! `(offset, len)` [`Span`] handles with free-list reuse), and the
//! per-worker `pending`/`ready` queues are flat [`SlotCol`] columns. The
//! steady-state loop touches contiguous memory and performs no per-batch
//! heap allocation; arena growth is bounded — retained id capacity never
//! exceeds `max(1024, 4 × live ids)` thanks to a compaction backstop — so
//! long faulty runs cannot hoard memory the way the old per-worker
//! `Vec<Vec<u32>>` free list could.

use crate::engine::{Engine, SimReport};
use crate::probe::Recorder;
use crate::scheduler::Scheduler;
use crate::sink::StreamingSink;
use crate::trace::{EventKind, TraceEvent};
use hetsched_net::NetState;
use hetsched_platform::ProcId;
use hetsched_util::OrderedF64;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A worker's failure is discovered.
const DEATH: u8 = 0;
/// A transfer reaches its worker.
const ARRIVE: u8 = 1;
/// A batch finishes computing.
const DONE: u8 = 2;
/// A parked worker re-checks the (possibly replenished) task pool.
const RETRY: u8 = 3;

/// Min-heap of `(time, kind, worker)` events; the monotone sequence number
/// makes simultaneous events FIFO. `Death` events are pushed first and so
/// carry the lowest sequence numbers: at time `f` a death pops before any
/// same-time arrival or retry.
#[derive(Default)]
struct NetQueue {
    heap: BinaryHeap<Reverse<(OrderedF64, u64, u8, ProcId)>>,
    seq: u64,
}

impl NetQueue {
    fn push(&mut self, t: f64, kind: u8, k: ProcId) {
        self.heap
            .push(Reverse((OrderedF64::new(t), self.seq, kind, k)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(f64, u8, ProcId)> {
        self.heap
            .pop()
            .map(|Reverse((t, _, kind, k))| (t.get(), kind, k))
    }
}

/// Handle to a run of task ids in the [`IdArena`]: `start..start+len` are
/// the live ids; `cap >= len` is the slot's reusable capacity (a freed
/// slot keeps its full extent so it can be recycled first-fit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Span {
    start: u32,
    len: u32,
    cap: u32,
}

impl Span {
    /// The no-batch sentinel (only ever produced for empty slots; stored
    /// batches always hold at least one task).
    const EMPTY: Span = Span {
        start: 0,
        len: 0,
        cap: 0,
    };
}

/// Arena for the task ids of every batch in flight: one shared `Vec<u32>`
/// addressed by [`Span`] handles.
///
/// * [`store`](IdArena::store) copies a batch in, reusing the first free
///   slot that fits (else appending at the tail);
/// * [`release`](IdArena::release) returns a slot, truncating the tail
///   (and absorbing any free slots newly exposed at it) when possible;
/// * [`compact`](IdArena::compact) is the fragmentation backstop: when
///   retained capacity exceeds `max(1024, 4 × live ids)`, the caller
///   gathers every live span and the arena rewrites them front-to-back,
///   dropping all free space.
#[derive(Default)]
struct IdArena {
    ids: Vec<u32>,
    /// Freed slots (`len` unused, `cap` is the reusable extent).
    free: Vec<Span>,
    /// Total live ids across all stored spans.
    live: u32,
    /// Largest `ids` length ever reached (memory high-water, in ids).
    high_water: usize,
}

/// Retained arena capacity below which compaction never triggers.
const ARENA_RETAIN_MIN: usize = 1024;

impl IdArena {
    /// Copies `ids` into the arena (first free slot that fits, else the
    /// tail) and returns the handle. `ids` must be non-empty.
    fn store(&mut self, ids: &[u32]) -> Span {
        let len = u32::try_from(ids.len()).expect("batch too large for id arena");
        debug_assert!(len > 0, "empty batches are never stored");
        self.live += len;
        if let Some(pos) = self.free.iter().position(|s| s.cap >= len) {
            let slot = self.free.swap_remove(pos);
            let start = slot.start as usize;
            self.ids[start..start + ids.len()].copy_from_slice(ids);
            return Span {
                start: slot.start,
                len,
                cap: slot.cap,
            };
        }
        let start = self.ids.len() as u32;
        self.ids.extend_from_slice(ids);
        self.high_water = self.high_water.max(self.ids.len());
        Span {
            start,
            len,
            cap: len,
        }
    }

    /// The ids of a stored span.
    fn get(&self, span: Span) -> &[u32] {
        &self.ids[span.start as usize..(span.start + span.len) as usize]
    }

    /// Returns a span's slot to the arena. Tail slots are truncated away
    /// (together with any free slots that become the new tail); interior
    /// slots go on the free list with their full capacity.
    fn release(&mut self, span: Span) {
        self.live -= span.len;
        if (span.start + span.cap) as usize == self.ids.len() {
            self.ids.truncate(span.start as usize);
            // Free slots now exposed at the tail evaporate too.
            loop {
                let tail = self.ids.len() as u32;
                match self.free.iter().position(|s| s.start + s.cap == tail) {
                    Some(i) => {
                        let s = self.free.swap_remove(i);
                        self.ids.truncate(s.start as usize);
                    }
                    None => break,
                }
            }
        } else {
            self.free.push(Span {
                start: span.start,
                len: 0,
                cap: span.cap,
            });
        }
    }

    /// True when fragmentation (freed-but-retained capacity) exceeds the
    /// backstop bound and [`compact`](IdArena::compact) should run.
    fn needs_compaction(&self) -> bool {
        self.ids.len() > ARENA_RETAIN_MIN.max(4 * self.live as usize)
    }

    /// Rewrites every live span front-to-back (in arena order), drops all
    /// free space, and updates the handles in `spans` in place (order
    /// preserved, so callers can write them back positionally).
    fn compact(&mut self, spans: &mut [Span]) {
        let mut order: Vec<u32> = (0..spans.len() as u32).collect();
        order.sort_unstable_by_key(|&i| spans[i as usize].start);
        let mut cursor: u32 = 0;
        for &oi in &order {
            let s = spans[oi as usize];
            self.ids.copy_within(
                s.start as usize..(s.start + s.len) as usize,
                cursor as usize,
            );
            spans[oi as usize] = Span {
                start: cursor,
                len: s.len,
                cap: s.len,
            };
            cursor += s.len;
        }
        self.ids.truncate(cursor as usize);
        self.free.clear();
        debug_assert_eq!(cursor, self.live, "compaction must keep every live id");
    }
}

/// One parked batch per worker, in structure-of-arrays columns (the
/// `pending` and `ready` queues). `tasks[i] == 0` marks an empty slot —
/// stored batches always allocate at least one task, since retirements
/// ([`Allocation::is_done`](crate::Allocation::is_done)) are handled
/// before parking.
struct SlotCol {
    tasks: Vec<u32>,
    blocks: Vec<u64>,
    span: Vec<Span>,
}

impl SlotCol {
    fn new(p: usize) -> Self {
        SlotCol {
            tasks: vec![0; p],
            blocks: vec![0; p],
            span: vec![Span::EMPTY; p],
        }
    }

    fn is_some(&self, i: usize) -> bool {
        self.tasks[i] != 0
    }

    fn put(&mut self, i: usize, tasks: u32, blocks: u64, span: Span) {
        debug_assert!(tasks > 0, "empty batches are never parked");
        debug_assert!(!self.is_some(i), "slot {i} already occupied");
        self.tasks[i] = tasks;
        self.blocks[i] = blocks;
        self.span[i] = span;
    }

    fn take(&mut self, i: usize) -> Option<(u32, u64, Span)> {
        if self.tasks[i] == 0 {
            return None;
        }
        let b = (self.tasks[i], self.blocks[i], self.span[i]);
        self.tasks[i] = 0;
        self.blocks[i] = 0;
        self.span[i] = Span::EMPTY;
        Some(b)
    }
}

/// Mutable per-run worker state for the networked loop.
struct RunState {
    fail_time: Vec<Option<f64>>,
    dead: Vec<bool>,
    /// Worker was allocated a batch it will not finish; the `Death` event at
    /// its failure time discovers the loss.
    dying: Vec<bool>,
    /// Arena handle to the dying worker's current batch ids
    /// ([`Span::EMPTY`] when none).
    in_flight: Vec<Span>,
    /// Batch currently in transfer (an `Arrive` event is scheduled).
    pending: SlotCol,
    /// Batch arrived while the worker was still computing.
    ready: SlotCol,
    computing: Vec<bool>,
    /// Task count of the batch each worker is computing, consumed by the
    /// `Done` event when return-path pricing charges the write-back.
    done_tasks: Vec<u32>,
    /// When the worker last went idle; `start − idle_since` is its
    /// transfer wait.
    idle_since: Vec<f64>,
    /// Failure-lost ids not yet re-allocated, for re-ship accounting.
    lost_ids: HashSet<u32>,
    /// Shared id storage for every batch in flight.
    arena: IdArena,
    /// Scheduler fill buffer: handed to `on_request` empty (per the
    /// scheduler contract), then copied into the arena. Reused across
    /// requests, so the steady-state loop performs no heap allocation.
    scratch: Vec<u32>,
    /// Reusable span buffer for compaction sweeps.
    gather: Vec<Span>,
    q: NetQueue,
    net: NetState,
}

impl RunState {
    /// Runs the compaction backstop: when the arena says fragmentation
    /// exceeds the bound, gathers every live span (fixed worker order),
    /// compacts, and writes the relocated handles back.
    fn maybe_compact(&mut self) {
        if !self.arena.needs_compaction() {
            return;
        }
        let p = self.dead.len();
        let mut spans = std::mem::take(&mut self.gather);
        spans.clear();
        for i in 0..p {
            if self.pending.is_some(i) {
                spans.push(self.pending.span[i]);
            }
            if self.ready.is_some(i) {
                spans.push(self.ready.span[i]);
            }
            if self.in_flight[i].len > 0 {
                spans.push(self.in_flight[i]);
            }
        }
        self.arena.compact(&mut spans);
        let mut j = 0;
        for i in 0..p {
            if self.pending.is_some(i) {
                self.pending.span[i] = spans[j];
                j += 1;
            }
            if self.ready.is_some(i) {
                self.ready.span[i] = spans[j];
                j += 1;
            }
            if self.in_flight[i].len > 0 {
                self.in_flight[i] = spans[j];
                j += 1;
            }
        }
        self.gather = spans;
    }
}

impl<'a, S: Scheduler> Engine<'a, S> {
    pub(crate) fn run_networked<K: StreamingSink>(
        mut self,
        rng: &mut StdRng,
        mut rec: Option<&mut Recorder<K>>,
    ) -> (SimReport, S, ()) {
        let p = self.platform.len();
        let mut st = RunState {
            fail_time: self
                .platform
                .procs()
                .map(|k| self.failures.fail_time(k))
                .collect(),
            dead: vec![false; p],
            dying: vec![false; p],
            in_flight: vec![Span::EMPTY; p],
            pending: SlotCol::new(p),
            ready: SlotCol::new(p),
            computing: vec![false; p],
            done_tasks: vec![0; p],
            idle_since: vec![0.0; p],
            lost_ids: HashSet::new(),
            arena: IdArena::default(),
            scratch: Vec::new(),
            gather: Vec::new(),
            q: NetQueue::default(),
            net: {
                let net = NetState::new(self.network, p, self.platform.link_latencies().to_vec());
                match self.platform.link_bandwidths() {
                    Some(bws) => net.with_worker_bandwidths(bws.to_vec()),
                    None => net,
                }
            },
        };

        // Unconditional death events, pushed before anything else so they
        // carry the lowest sequence numbers and failures are discovered
        // exactly at their time.
        for k in self.platform.procs() {
            if let Some(f) = st.fail_time[k.idx()] {
                st.q.push(f, DEATH, k);
            }
        }

        if let Some(r) = rec.as_deref_mut() {
            // Pre-size the trace (see the infinite loop for the estimate;
            // networked runs add roughly one transfer + wait per batch).
            r.reserve_events((2 * self.scheduler.total_tasks() + p).min(1 << 20), p);
            // Anchor the probed trajectory at t = 0.
            r.sample(0.0, &self.scheduler, &self.ledger, Some(&st.net));
        }

        // All workers request at t = 0 in a seed-shuffled order; transfers
        // are priced (and the link contended) in that order.
        let mut initial: Vec<ProcId> = self.platform.procs().collect();
        initial.shuffle(rng);
        for k in initial {
            self.net_request(&mut st, k, 0.0, rng, &mut rec);
        }

        while let Some((now, kind, k)) = st.q.pop() {
            let i = k.idx();
            match kind {
                DEATH => {
                    if st.dead[i] {
                        continue;
                    }
                    st.dead[i] = true;
                    if st.dying[i] {
                        // The batch it was computing dies with it.
                        st.dying[i] = false;
                        let span = st.in_flight[i];
                        st.in_flight[i] = Span::EMPTY;
                        self.ledger.record_lost(k, span.len as usize);
                        st.lost_ids.extend(st.arena.get(span).iter().copied());
                        self.scheduler.on_tasks_lost(st.arena.get(span));
                        st.arena.release(span);
                    }
                    // A batch in transfer (or arrived but never started) is
                    // pure waste: the master spent the bandwidth, the tasks
                    // go back to the pool.
                    let stranded = [st.pending.take(i), st.ready.take(i)];
                    for (_tasks, blocks, span) in stranded.into_iter().flatten() {
                        self.ledger.record(k, 0, blocks, 0.0);
                        self.ledger.record_wasted(k, blocks);
                        self.ledger.record_lost(k, span.len as usize);
                        st.lost_ids.extend(st.arena.get(span).iter().copied());
                        self.scheduler.on_tasks_lost(st.arena.get(span));
                        st.arena.release(span);
                        if let Some(r) = rec.as_deref_mut() {
                            r.observe(
                                TraceEvent {
                                    kind: EventKind::Stranded,
                                    time: now,
                                    proc: k,
                                    tasks: 0,
                                    blocks,
                                    duration: 0.0,
                                },
                                &self.scheduler,
                                &self.ledger,
                                Some(&st.net),
                            );
                        }
                    }
                    st.maybe_compact();
                }
                ARRIVE => {
                    if st.dead[i] {
                        continue;
                    }
                    let (tasks, blocks, span) = match st.pending.take(i) {
                        Some(b) => b,
                        None => continue,
                    };
                    if st.computing[i] || st.dying[i] {
                        // Current batch still running (or doomed); the
                        // arrived batch waits at the worker.
                        st.ready.put(i, tasks, blocks, span);
                    } else {
                        self.net_start(&mut st, k, tasks, blocks, span, now, rng, &mut rec);
                    }
                }
                DONE => {
                    if st.dead[i] {
                        continue;
                    }
                    if self.price_returns && st.done_tasks[i] > 0 {
                        // Write the finished batch's results (one C block
                        // per task) back over the same master channels the
                        // input path uses, so returns contend with sends.
                        // Priced here — at the batch's finish time — to keep
                        // channel bookings monotonic in event time.
                        let returned = st.done_tasks[i] as u64;
                        let ret = st.net.send(k, returned, now);
                        self.ledger.record_returned(k, returned);
                        self.makespan = self.makespan.max(ret.arrival);
                    }
                    st.computing[i] = false;
                    st.idle_since[i] = now;
                    if let Some((tasks, blocks, span)) = st.ready.take(i) {
                        self.net_start(&mut st, k, tasks, blocks, span, now, rng, &mut rec);
                    } else if !st.pending.is_some(i) {
                        self.net_request(&mut st, k, now, rng, &mut rec);
                    }
                    // else: the prefetched batch is still in flight; its
                    // arrival starts it.
                }
                _ => {
                    // RETRY: the pool may have been replenished by a death
                    // processed just before this event.
                    if st.dead[i]
                        || st.dying[i]
                        || st.computing[i]
                        || st.pending.is_some(i)
                        || st.ready.is_some(i)
                    {
                        continue;
                    }
                    self.net_request(&mut st, k, now, rng, &mut rec);
                }
            }
        }

        if let Some(r) = rec {
            // Anchor the probed trajectory at the makespan.
            r.sample(self.makespan, &self.scheduler, &self.ledger, Some(&st.net));
        }

        assert_eq!(
            self.scheduler.remaining(),
            0,
            "engine stopped with unallocated tasks"
        );
        debug_assert_eq!(st.arena.live, 0, "all spans released at drain");
        let total_blocks = self.ledger.total_blocks();
        let lost_tasks = self.ledger.total_lost_tasks();
        let reshipped_blocks = self.ledger.total_reshipped_blocks();
        let wasted_blocks = self.ledger.total_wasted_blocks();
        let link_utilization = st.net.utilization(self.makespan);
        let max_queue_depth = st.net.max_queue_depth();
        let returned_blocks = self.ledger.total_returned_blocks();
        (
            SimReport {
                ledger: self.ledger,
                makespan: self.makespan,
                total_blocks,
                lost_tasks,
                reshipped_blocks,
                link_utilization,
                max_queue_depth,
                wasted_blocks,
                tier_blocks: 0,
                returned_blocks,
            },
            self.scheduler,
            (),
        )
    }

    /// Asks the scheduler for worker `k`'s next batch and puts it on the
    /// wire. Parks the worker (via a `Retry` event at the next possible
    /// death) when the pool is empty but may be replenished.
    fn net_request<K: StreamingSink>(
        &mut self,
        st: &mut RunState,
        k: ProcId,
        now: f64,
        rng: &mut StdRng,
        rec: &mut Option<&mut Recorder<K>>,
    ) {
        let i = k.idx();
        if st.dead[i] {
            return;
        }
        if self.scheduler.remaining() == 0 {
            if st.computing[i] || st.dying[i] {
                // A busy worker re-requests at compute-done; no need to park.
                return;
            }
            // Tasks only return to the pool when a failure is discovered:
            // wake at the earliest death still ahead of us, or drain.
            let earliest = self
                .platform
                .procs()
                .filter(|j| !st.dead[j.idx()])
                .filter_map(|j| st.fail_time[j.idx()])
                .filter(|&f| f >= now)
                .fold(f64::INFINITY, f64::min);
            if earliest.is_finite() {
                st.q.push(earliest.max(now), RETRY, k);
            }
            return;
        }
        // The scratch buffer is handed to the scheduler empty (per the
        // contract) and copied into the arena afterwards; neither step
        // allocates once warm.
        st.scratch.clear();
        let alloc = self.scheduler.on_request(k, rng, &mut st.scratch);
        debug_assert_eq!(
            st.scratch.len(),
            alloc.tasks,
            "scheduler contract: out ids == tasks"
        );
        if let Some(r) = rec.as_deref_mut() {
            r.note_phase(now, k, &self.scheduler);
        }
        if alloc.is_done() {
            // Worker retired; its blocks (normally zero) still ship.
            let _ = st.net.send(k, alloc.blocks, now);
            self.ledger.record(k, 0, alloc.blocks, 0.0);
            if let Some(r) = rec.as_deref_mut() {
                r.observe(
                    TraceEvent {
                        kind: EventKind::Retire,
                        time: now,
                        proc: k,
                        tasks: 0,
                        blocks: alloc.blocks,
                        duration: 0.0,
                    },
                    &self.scheduler,
                    &self.ledger,
                    Some(&st.net),
                );
            }
            return;
        }
        if !st.lost_ids.is_empty() {
            // Re-ship accounting at batch granularity, as in the infinite
            // engine.
            let mut reallocates = false;
            for id in &st.scratch {
                if st.lost_ids.remove(id) {
                    reallocates = true;
                }
            }
            if reallocates {
                self.ledger.record_reshipped(k, alloc.blocks);
            }
        }
        let plan = st.net.send(k, alloc.blocks, now);
        if alloc.blocks > 0 {
            if let Some(r) = rec.as_deref_mut() {
                // The channel-busy interval, for the net lane of the gantt
                // chart. Its blocks duplicate the allocation event that the
                // batch will emit, so sinks never re-count them.
                r.observe(
                    TraceEvent {
                        kind: EventKind::Transfer,
                        time: plan.start,
                        proc: k,
                        tasks: 0,
                        blocks: alloc.blocks,
                        duration: plan.end - plan.start,
                    },
                    &self.scheduler,
                    &self.ledger,
                    Some(&st.net),
                );
            }
        }
        let span = st.arena.store(&st.scratch);
        st.pending.put(i, alloc.tasks as u32, alloc.blocks, span);
        st.q.push(plan.arrival, ARRIVE, k);
    }

    /// Starts computing an arrived batch at time `now`, charging the
    /// worker's transfer wait, and prefetches the next batch so its
    /// transfer overlaps this computation.
    #[allow(clippy::too_many_arguments)]
    fn net_start<K: StreamingSink>(
        &mut self,
        st: &mut RunState,
        k: ProcId,
        tasks: u32,
        blocks: u64,
        span: Span,
        now: f64,
        rng: &mut StdRng,
        rec: &mut Option<&mut Recorder<K>>,
    ) {
        let i = k.idx();
        let wait = now - st.idle_since[i];
        self.ledger.record_wait(k, wait);
        if wait > 0.0 {
            if let Some(r) = rec.as_deref_mut() {
                r.observe(
                    TraceEvent {
                        kind: EventKind::Wait,
                        time: st.idle_since[i],
                        proc: k,
                        tasks: 0,
                        blocks: 0,
                        duration: wait,
                    },
                    &self.scheduler,
                    &self.ledger,
                    Some(&st.net),
                );
            }
        }
        let dur = self.speeds.batch_duration(k, tasks as usize, rng);
        let finish = now + dur;
        match st.fail_time[i] {
            Some(f) if f < finish => {
                // Dies mid-batch: blocks shipped and `f − now` of compute
                // burned, no task completes. The death event discovers it;
                // the span stays live until then.
                self.ledger.record(k, 0, blocks, f - now);
                st.in_flight[i] = span;
                st.dying[i] = true;
                if let Some(r) = rec.as_deref_mut() {
                    r.observe(
                        TraceEvent {
                            kind: EventKind::Lost,
                            time: now,
                            proc: k,
                            tasks: 0,
                            blocks,
                            duration: f - now,
                        },
                        &self.scheduler,
                        &self.ledger,
                        Some(&st.net),
                    );
                }
            }
            _ => {
                self.ledger.record(k, tasks as usize, blocks, dur);
                if let Some(r) = rec.as_deref_mut() {
                    r.observe(
                        TraceEvent {
                            kind: EventKind::Batch,
                            time: now,
                            proc: k,
                            tasks: tasks as usize,
                            blocks,
                            duration: dur,
                        },
                        &self.scheduler,
                        &self.ledger,
                        Some(&st.net),
                    );
                }
                self.makespan = self.makespan.max(finish);
                st.computing[i] = true;
                st.done_tasks[i] = tasks;
                st.q.push(finish, DONE, k);
                // The batch is fully accounted; its arena slot frees up.
                st.arena.release(span);
            }
        }
        // Depth-1 prefetch. The master cannot know a worker is doomed, so
        // dying workers prefetch too — that bandwidth ends up wasted.
        self.net_request(st, k, now, rng, rec);
    }
}

#[cfg(test)]
mod tests {
    use super::{IdArena, Span, ARENA_RETAIN_MIN};
    use crate::engine::{run, run_configured};
    use crate::scheduler::{Allocation, Scheduler};
    use hetsched_net::NetworkModel;
    use hetsched_platform::{FailureModel, Platform, ProcId, SpeedModel};
    use hetsched_util::rng::rng_for;
    use rand::rngs::StdRng;

    /// Pool-backed toy strategy: one block per task, supports reallocation.
    struct PoolSched {
        pool: Vec<u32>,
        total: usize,
        batch: usize,
        counts: Vec<i32>,
    }

    fn pool(total: usize, batch: usize) -> PoolSched {
        PoolSched {
            pool: (0..total as u32).rev().collect(),
            total,
            batch,
            counts: vec![0; total],
        }
    }

    impl Scheduler for PoolSched {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            let t = self.batch.min(self.pool.len());
            for _ in 0..t {
                let id = self.pool.pop().expect("pool underflow");
                self.counts[id as usize] += 1;
                out.push(id);
            }
            Allocation {
                tasks: t,
                blocks: t as u64,
            }
        }
        fn on_tasks_lost(&mut self, ids: &[u32]) {
            for &id in ids {
                self.counts[id as usize] -= 1;
                self.pool.push(id);
            }
        }
        fn remaining(&self) -> usize {
            self.pool.len()
        }
        fn total_tasks(&self) -> usize {
            self.total
        }
        fn name(&self) -> &'static str {
            "PoolSched"
        }
    }

    fn one_port(bw: f64) -> NetworkModel {
        NetworkModel::OnePort { master_bw: bw }
    }

    #[test]
    fn arena_store_get_roundtrip_and_tail_release() {
        let mut a = IdArena::default();
        let s1 = a.store(&[1, 2, 3]);
        let s2 = a.store(&[4, 5]);
        assert_eq!(a.get(s1), &[1, 2, 3]);
        assert_eq!(a.get(s2), &[4, 5]);
        assert_eq!(a.live, 5);
        // Releasing the tail truncates instead of fragmenting.
        a.release(s2);
        assert_eq!(a.ids.len(), 3);
        assert!(a.free.is_empty());
        // Releasing the new tail drains the arena completely.
        a.release(s1);
        assert_eq!(a.ids.len(), 0);
        assert_eq!(a.live, 0);
    }

    #[test]
    fn arena_reuses_freed_interior_slots_first_fit() {
        let mut a = IdArena::default();
        let s1 = a.store(&[1, 2, 3]);
        let _s2 = a.store(&[4, 5]);
        a.release(s1); // interior → free list
        assert_eq!(a.free.len(), 1);
        // A batch that fits recycles the slot without growing the arena.
        let s3 = a.store(&[7, 8]);
        assert_eq!(s3.start, 0);
        assert_eq!(s3.cap, 3, "slot keeps its full capacity");
        assert_eq!(a.get(s3), &[7, 8]);
        assert_eq!(a.ids.len(), 5, "no growth");
    }

    #[test]
    fn arena_release_absorbs_free_slots_exposed_at_the_tail() {
        let mut a = IdArena::default();
        let s1 = a.store(&[1, 2]);
        let s2 = a.store(&[3, 4]);
        let s3 = a.store(&[5, 6]);
        a.release(s2); // interior
        assert_eq!(a.free.len(), 1);
        a.release(s3); // tail: truncates s3, then absorbs s2's slot
        assert_eq!(a.ids.len(), 2);
        assert!(a.free.is_empty());
        a.release(s1);
        assert_eq!(a.ids.len(), 0);
    }

    #[test]
    fn arena_compaction_bounds_retained_capacity() {
        let mut a = IdArena::default();
        // Adversarial churn: each round's batch is bigger than every freed
        // slot (so first-fit can't recycle), and a small survivor pins the
        // tail so release can't truncate. Retained capacity balloons.
        let mut live: Vec<Span> = Vec::new();
        for round in 0..8u32 {
            let big = vec![9u32; 600 + round as usize];
            let s_big = a.store(&big);
            let s_keep = a.store(&[2 * round + 1, 2 * round + 2]);
            a.release(s_big);
            live.push(s_keep);
        }
        assert!(a.ids.len() > ARENA_RETAIN_MIN, "fragmented past the bound");
        assert!(a.needs_compaction());
        let before: Vec<Vec<u32>> = live.iter().map(|&s| a.get(s).to_vec()).collect();
        a.compact(&mut live);
        assert_eq!(a.ids.len(), a.live as usize, "all free space dropped");
        assert!(a.ids.len() <= ARENA_RETAIN_MIN.max(4 * a.live as usize));
        assert!(!a.needs_compaction());
        for (s, old) in live.iter().zip(&before) {
            assert_eq!(a.get(*s), &old[..], "live ids survive compaction");
        }
    }

    #[test]
    fn networked_run_completes_all_tasks() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 70.0]);
        let (report, sched) = run_configured(
            &pf,
            SpeedModel::Fixed,
            pool(600, 4),
            &FailureModel::none(),
            one_port(50.0),
            &mut rng_for(0, 0),
        );
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 600);
        assert_eq!(report.total_blocks, 600);
        assert!(sched.counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn networked_is_deterministic_under_seed() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0]);
        let go = || {
            run_configured(
                &pf,
                SpeedModel::dyn5(),
                pool(500, 3),
                &FailureModel::none(),
                one_port(25.0),
                &mut rng_for(7, 0),
            )
            .0
        };
        let (r1, r2) = (go(), go());
        assert_eq!(r1.total_blocks, r2.total_blocks);
        assert_eq!(r1.ledger.tasks_per_proc(), r2.ledger.tasks_per_proc());
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.link_utilization, r2.link_utilization);
        assert_eq!(r1.max_queue_depth, r2.max_queue_depth);
    }

    #[test]
    fn makespan_respects_the_bandwidth_bound() {
        // Every block crosses the one-port link, so the makespan can never
        // beat total_blocks / master_bw.
        let pf = Platform::from_speeds(vec![40.0, 60.0]);
        let bw = 10.0;
        let (report, _) = run_configured(
            &pf,
            SpeedModel::Fixed,
            pool(400, 5),
            &FailureModel::none(),
            one_port(bw),
            &mut rng_for(1, 0),
        );
        let comm_lb = report.total_blocks as f64 / bw;
        assert!(
            report.makespan >= comm_lb - 1e-9,
            "makespan {} below the communication bound {}",
            report.makespan,
            comm_lb
        );
        // Comm-bound regime: the link is the bottleneck, so it is nearly
        // saturated and the workers mostly wait.
        assert!(report.link_utilization > 0.9, "{}", report.link_utilization);
        assert!(report.ledger.total_transfer_wait() > 0.0);
    }

    #[test]
    fn generous_bandwidth_approaches_the_infinite_makespan() {
        let pf = Platform::from_speeds(vec![25.0, 75.0]);
        let (inf, _) = run(&pf, SpeedModel::Fixed, pool(500, 5), &mut rng_for(2, 0));
        let (fat, _) = run_configured(
            &pf,
            SpeedModel::Fixed,
            pool(500, 5),
            &FailureModel::none(),
            one_port(1e6),
            &mut rng_for(2, 0),
        );
        // With an effectively free link, the only slowdown left is the
        // initial (un-overlapped) transfer of the first batches.
        assert!(
            fat.makespan <= inf.makespan * 1.05,
            "fat {} vs infinite {}",
            fat.makespan,
            inf.makespan
        );
        assert_eq!(fat.total_blocks, inf.total_blocks);
    }

    #[test]
    fn tighter_bandwidth_never_helps() {
        let pf = Platform::from_speeds(vec![30.0, 70.0]);
        let mk = |bw: f64| {
            run_configured(
                &pf,
                SpeedModel::Fixed,
                pool(300, 4),
                &FailureModel::none(),
                one_port(bw),
                &mut rng_for(3, 0),
            )
            .0
            .makespan
        };
        assert!(mk(5.0) >= mk(20.0) - 1e-9);
        assert!(mk(20.0) >= mk(100.0) - 1e-9);
    }

    #[test]
    fn latency_delays_completion() {
        let pf = Platform::from_speeds(vec![50.0, 50.0]);
        let lagged = pf.clone().with_uniform_link_latency(0.5);
        let mk = |p: &Platform| {
            run_configured(
                p,
                SpeedModel::Fixed,
                pool(100, 10),
                &FailureModel::none(),
                one_port(200.0),
                &mut rng_for(4, 0),
            )
            .0
            .makespan
        };
        assert!(mk(&lagged) > mk(&pf) + 0.4, "latency must show up");
    }

    #[test]
    fn multiport_beats_one_port_at_equal_aggregate() {
        // Same aggregate bandwidth, but the multiport master overlaps
        // transfers to different workers; with per-worker caps the slow
        // serial phases shrink.
        let pf = Platform::from_speeds(vec![20.0, 20.0, 20.0, 20.0]);
        let run_with = |net: NetworkModel| {
            run_configured(
                &pf,
                SpeedModel::Fixed,
                pool(400, 5),
                &FailureModel::none(),
                net,
                &mut rng_for(5, 0),
            )
            .0
        };
        let one = run_with(one_port(40.0));
        let multi = run_with(NetworkModel::BoundedMultiport {
            master_bw: 40.0,
            worker_bw: 10.0,
        });
        assert!(
            multi.makespan <= one.makespan + 1e-9,
            "multiport {} vs one-port {}",
            multi.makespan,
            one.makespan
        );
    }

    #[test]
    fn death_with_batch_in_flight_wastes_bandwidth() {
        // Slow link: worker 0 dies while transfers toward it are pending,
        // so some blocks are shipped but never computed on.
        let pf = Platform::from_speeds(vec![10.0, 10.0]);
        let failures = FailureModel::none().fail_at(ProcId(0), 1.0);
        let (report, sched) = run_configured(
            &pf,
            SpeedModel::Fixed,
            pool(100, 5),
            &failures,
            one_port(8.0),
            &mut rng_for(6, 0),
        );
        assert_eq!(report.ledger.total_tasks(), 100);
        assert!(
            sched.counts.iter().all(|&c| c == 1),
            "every task computed exactly once net of losses"
        );
        assert!(report.lost_tasks > 0);
        assert!(
            report.wasted_blocks > 0,
            "a transfer in flight to the dead worker must be attributed"
        );
        assert_eq!(
            report.wasted_blocks,
            report.ledger.wasted_blocks(ProcId(0)),
            "waste is attributed to the dead worker"
        );
        // Wasted blocks were still shipped: they are part of total volume.
        assert!(report.total_blocks > 100);
    }

    #[test]
    fn straggler_and_network_compose() {
        let pf = Platform::from_speeds(vec![10.0, 10.0]);
        let failures = FailureModel::none().slow_down(ProcId(0), 4.0);
        let (report, _) = run_configured(
            &pf,
            SpeedModel::Fixed,
            pool(600, 2),
            &failures,
            one_port(100.0),
            &mut rng_for(8, 0),
        );
        assert_eq!(report.ledger.total_tasks(), 600);
        assert_eq!(report.lost_tasks, 0);
        let t0 = report.ledger.tasks(ProcId(0)) as f64;
        // Effective speeds 2.5 vs 10 ⇒ straggler does ~1/5 of the work.
        assert!((t0 / 600.0 - 0.2).abs() < 0.05, "t0 = {t0}");
    }

    #[test]
    fn trace_reconciles_with_ledger_under_network_and_failures() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0]);
        let failures = FailureModel::none().fail_at(ProcId(2), 0.9);
        let (report, _, trace) = crate::engine::run_configured_traced(
            &pf,
            SpeedModel::Fixed,
            pool(300, 4),
            &failures,
            one_port(30.0),
            &mut rng_for(9, 0),
        );
        // Allocation kinds reconcile exactly with the ledger; overlay kinds
        // (transfers, waits) carry no ledger-counted volume.
        let alloc_events = || trace.events().iter().filter(|e| e.kind.is_allocation());
        let trace_blocks: u64 = alloc_events().map(|e| e.blocks).sum();
        assert_eq!(trace_blocks, report.ledger.total_blocks());
        let trace_tasks: usize = alloc_events().map(|e| e.tasks).sum();
        assert_eq!(trace_tasks as u64, report.ledger.total_tasks());
        let requests: u64 = pf.procs().map(|k| report.ledger.requests(k)).sum();
        assert_eq!(trace.allocation_count() as u64, requests);
        for k in pf.procs() {
            assert!((trace.busy_time(k) - report.ledger.busy(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn transfer_and_wait_events_reconcile_with_net_metrics() {
        use crate::trace::EventKind;
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0]);
        let (report, _, trace) = crate::engine::run_configured_traced(
            &pf,
            SpeedModel::Fixed,
            pool(300, 4),
            &FailureModel::none(),
            one_port(20.0),
            &mut rng_for(11, 0),
        );
        // Every shipped block rides exactly one transfer event.
        let transfer_blocks: u64 = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Transfer)
            .map(|e| e.blocks)
            .sum();
        assert_eq!(transfer_blocks, report.total_blocks);
        // Wait events sum to the ledger's transfer-wait total.
        let wait: f64 = trace
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Wait)
            .map(|e| e.duration)
            .sum();
        assert!(
            (wait - report.ledger.total_transfer_wait()).abs() < 1e-9,
            "trace wait {wait} vs ledger {}",
            report.ledger.total_transfer_wait()
        );
        assert!(wait > 0.0, "a comm-bound run must record waits");
    }

    #[test]
    fn failure_discovery_unparks_drained_workers_under_network() {
        // Mirrors the infinite-engine test: the fast worker drains the pool
        // long before the slow worker's death returns tasks to it.
        let pf = Platform::from_speeds(vec![1.0, 100.0]);
        let failures = FailureModel::none().fail_at(ProcId(0), 5.0);
        let (report, sched) = run_configured(
            &pf,
            SpeedModel::Fixed,
            pool(20, 10),
            &failures,
            one_port(1000.0),
            &mut rng_for(10, 0),
        );
        assert_eq!(report.ledger.total_tasks(), 20);
        assert!(sched.counts.iter().all(|&c| c == 1));
        assert!(report.lost_tasks >= 10, "{}", report.lost_tasks);
        // Recovery can only start once the death is discovered at t = 5.
        assert!(report.makespan > 5.0, "{}", report.makespan);
    }
}
