//! State probes: sampled time series of the quantities the paper's ODE
//! model evolves, and the [`Recorder`] that collects them alongside a
//! [`Trace`].
//!
//! The analysis in §3 of the paper describes the *time evolution* of
//! per-worker state: how many tasks remain, what fraction of each input
//! vector a worker already knows, how much data has crossed the master
//! link. A [`Recorder`] attached to a run samples exactly those quantities
//! on a configurable cadence ([`ProbeConfig`]), so simulated trajectories
//! can be overlaid on the analytic ones from `hetsched-analysis`.
//!
//! Recording is strictly opt-in: the engines take an
//! `Option<&mut Recorder>` and the `None` path performs no extra work and
//! no heap allocation — the `bench-json` binary pins the unobserved
//! throughput per PR.

use crate::metrics::CommLedger;
use crate::scheduler::Scheduler;
use crate::trace::{EventKind, Trace, TraceEvent};
use hetsched_net::NetState;
use hetsched_platform::ProcId;

/// When to take a [`ProbeSample`]. Event-count and sim-time cadences can
/// be combined; the default ([`ProbeConfig::disabled`]) never samples (the
/// recorder then only collects the trace).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProbeConfig {
    every_events: u64,
    every_time: f64,
}

impl ProbeConfig {
    /// Never sample (trace collection only).
    pub fn disabled() -> Self {
        ProbeConfig::default()
    }

    /// Sample after every `n` allocation events (`0` disables the
    /// event-count cadence).
    pub fn by_events(n: u64) -> Self {
        ProbeConfig {
            every_events: n,
            every_time: 0.0,
        }
    }

    /// Sample every `dt` units of simulated time (`dt <= 0` disables the
    /// sim-time cadence). Samples are taken at the first allocation event
    /// on or after each grid point, so they sit on event times.
    pub fn by_time(dt: f64) -> Self {
        assert!(dt.is_finite(), "probe period must be finite");
        ProbeConfig {
            every_events: 0,
            every_time: dt.max(0.0),
        }
    }

    /// True if either cadence is active.
    pub fn is_enabled(&self) -> bool {
        self.every_events > 0 || self.every_time > 0.0
    }
}

/// One snapshot of the engine's observable state.
#[derive(Clone, Debug)]
pub struct ProbeSample {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Allocation events recorded so far.
    pub events: u64,
    /// Tasks not yet allocated (the residual set the ODE evolves).
    pub remaining: usize,
    /// Cumulative blocks received per worker.
    pub blocks_per_proc: Vec<u64>,
    /// Cumulative tasks computed per worker.
    pub tasks_per_proc: Vec<u64>,
    /// The strategy's per-worker useful-task (knowledge) fraction, from
    /// [`Scheduler::useful_fraction`]; `NaN` when the strategy does not
    /// track it.
    pub useful_fraction: Vec<f64>,
    /// Cumulative master-link busy time (zero under the infinite network).
    pub link_busy: f64,
    /// Deepest master send queue observed so far (zero under the infinite
    /// network).
    pub queue_depth: usize,
}

/// The probe samples of one run, in time order.
#[derive(Clone, Debug, Default)]
pub struct ProbeSeries {
    samples: Vec<ProbeSample>,
}

impl ProbeSeries {
    /// Empty series.
    pub fn new() -> Self {
        ProbeSeries::default()
    }

    /// All samples.
    pub fn samples(&self) -> &[ProbeSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn push(&mut self, s: ProbeSample) {
        self.samples.push(s);
    }
}

/// Collects a [`Trace`] and a [`ProbeSeries`] for one run.
///
/// Attach with [`Engine::run_recorded`](crate::Engine::run_recorded) or the
/// [`run_configured_recorded`](crate::run_configured_recorded) convenience;
/// the engines emit every [`TraceEvent`] through it and it decides, per
/// [`ProbeConfig`], when to snapshot the run state. A fresh sample is
/// always taken at `t = 0` and at the end of the run, so trajectories are
/// anchored at both ends even with sampling disabled mid-run — unless the
/// config is fully [`disabled`](ProbeConfig::disabled), which suppresses
/// sampling entirely.
#[derive(Clone, Debug)]
pub struct Recorder {
    cfg: ProbeConfig,
    trace: Trace,
    probes: ProbeSeries,
    alloc_events: u64,
    next_sample_time: f64,
    last_phase: Option<u8>,
}

impl Recorder {
    /// Recorder with the given probe cadence.
    pub fn new(cfg: ProbeConfig) -> Self {
        Recorder {
            cfg,
            trace: Trace::new(),
            probes: ProbeSeries::new(),
            alloc_events: 0,
            next_sample_time: if cfg.every_time > 0.0 {
                cfg.every_time
            } else {
                f64::INFINITY
            },
            last_phase: None,
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The probe samples recorded so far.
    pub fn probes(&self) -> &ProbeSeries {
        &self.probes
    }

    /// Consumes the recorder, returning the trace and the probe series.
    pub fn into_parts(self) -> (Trace, ProbeSeries) {
        (self.trace, self.probes)
    }

    /// Consumes the recorder, returning just the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Records one event and, for allocation events, advances the probe
    /// cadence (sampling the run state if a cadence point was reached).
    pub(crate) fn observe<S: Scheduler>(
        &mut self,
        ev: TraceEvent,
        sched: &S,
        ledger: &CommLedger,
        net: Option<&NetState>,
    ) {
        let now = ev.time;
        let is_alloc = ev.kind.is_allocation();
        self.trace.push(ev);
        if !is_alloc {
            return;
        }
        self.alloc_events += 1;
        let due_events =
            self.cfg.every_events > 0 && self.alloc_events.is_multiple_of(self.cfg.every_events);
        let due_time = now >= self.next_sample_time;
        if due_time {
            while now >= self.next_sample_time {
                self.next_sample_time += self.cfg.every_time;
            }
        }
        if due_events || due_time {
            self.sample(now, sched, ledger, net);
        }
    }

    /// Emits a [`EventKind::PhaseSwitch`] event if the scheduler's phase
    /// changed since the last check. Engines call this right after
    /// [`Scheduler::on_request`], the only point a phase can flip.
    pub(crate) fn note_phase<S: Scheduler>(&mut self, now: f64, k: ProcId, sched: &S) {
        if let Some(phase) = sched.phase() {
            if self.last_phase.is_some_and(|prev| prev != phase) {
                self.trace.push(TraceEvent {
                    kind: EventKind::PhaseSwitch,
                    time: now,
                    proc: k,
                    tasks: 0,
                    blocks: 0,
                    duration: 0.0,
                });
            }
            self.last_phase = Some(phase);
        }
    }

    /// Takes one snapshot unconditionally (engines use this for the
    /// anchoring samples at `t = 0` and at run end).
    pub(crate) fn sample<S: Scheduler>(
        &mut self,
        now: f64,
        sched: &S,
        ledger: &CommLedger,
        net: Option<&NetState>,
    ) {
        if !self.cfg.is_enabled() {
            return;
        }
        let p = ledger.blocks_per_proc().len();
        self.probes.push(ProbeSample {
            time: now,
            events: self.alloc_events,
            remaining: sched.remaining(),
            blocks_per_proc: ledger.blocks_per_proc().to_vec(),
            tasks_per_proc: ledger.tasks_per_proc().to_vec(),
            useful_fraction: (0..p)
                .map(|k| sched.useful_fraction(ProcId(k as u32)).unwrap_or(f64::NAN))
                .collect(),
            link_busy: net.map_or(0.0, |n| n.master_busy()),
            queue_depth: net.map_or(0, |n| n.max_queue_depth()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use rand::rngs::StdRng;

    /// Toy scheduler with a controllable phase and tracked fractions.
    struct Toy {
        remaining: usize,
        phase: u8,
    }

    impl Scheduler for Toy {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            let t = 1.min(self.remaining);
            self.remaining -= t;
            out.extend(std::iter::repeat_n(0, t));
            Allocation {
                tasks: t,
                blocks: t as u64,
            }
        }
        fn remaining(&self) -> usize {
            self.remaining
        }
        fn total_tasks(&self) -> usize {
            10
        }
        fn name(&self) -> &'static str {
            "Toy"
        }
        fn phase(&self) -> Option<u8> {
            Some(self.phase)
        }
        fn useful_fraction(&self, k: ProcId) -> Option<f64> {
            (k.idx() == 0).then_some(0.25)
        }
    }

    fn batch(time: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Batch,
            time,
            proc: ProcId(0),
            tasks: 1,
            blocks: 1,
            duration: 0.5,
        }
    }

    #[test]
    fn event_cadence_samples_every_n_allocations() {
        let mut rec = Recorder::new(ProbeConfig::by_events(2));
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(2);
        for i in 0..5 {
            rec.observe(batch(i as f64), &sched, &ledger, None);
        }
        assert_eq!(rec.probes().len(), 2, "samples at events 2 and 4");
        assert_eq!(rec.probes().samples()[0].events, 2);
        assert_eq!(rec.probes().samples()[1].events, 4);
        assert_eq!(rec.trace().len(), 5);
    }

    #[test]
    fn time_cadence_snaps_to_next_event() {
        let mut rec = Recorder::new(ProbeConfig::by_time(1.0));
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        for &t in &[0.2, 0.4, 1.7, 1.8, 3.5] {
            rec.observe(batch(t), &sched, &ledger, None);
        }
        // Grid points 1.0 and (2.0, 3.0 coalesced) are each taken once, at
        // the first event past them.
        let times: Vec<f64> = rec.probes().samples().iter().map(|s| s.time).collect();
        assert_eq!(times, vec![1.7, 3.5]);
    }

    #[test]
    fn overlay_events_do_not_advance_the_cadence() {
        let mut rec = Recorder::new(ProbeConfig::by_events(1));
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        rec.observe(
            TraceEvent {
                kind: EventKind::Wait,
                time: 0.0,
                proc: ProcId(0),
                tasks: 0,
                blocks: 0,
                duration: 1.0,
            },
            &sched,
            &ledger,
            None,
        );
        assert_eq!(rec.probes().len(), 0);
        rec.observe(batch(1.0), &sched, &ledger, None);
        assert_eq!(rec.probes().len(), 1);
    }

    #[test]
    fn disabled_config_records_trace_only() {
        let mut rec = Recorder::new(ProbeConfig::disabled());
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        rec.observe(batch(0.0), &sched, &ledger, None);
        rec.sample(1.0, &sched, &ledger, None);
        assert_eq!(rec.trace().len(), 1);
        assert!(rec.probes().is_empty(), "disabled probes never sample");
    }

    #[test]
    fn phase_switch_emitted_once_per_transition() {
        let mut rec = Recorder::new(ProbeConfig::disabled());
        let mut sched = Toy {
            remaining: 7,
            phase: 1,
        };
        rec.note_phase(0.0, ProcId(0), &sched);
        rec.note_phase(0.5, ProcId(1), &sched);
        sched.phase = 2;
        rec.note_phase(1.0, ProcId(1), &sched);
        rec.note_phase(1.5, ProcId(0), &sched);
        let switches: Vec<_> = rec
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::PhaseSwitch)
            .collect();
        assert_eq!(switches.len(), 1);
        assert_eq!(switches[0].time, 1.0);
        assert_eq!(switches[0].proc, ProcId(1));
    }

    #[test]
    fn samples_carry_useful_fraction_and_nan_for_untracked() {
        let mut rec = Recorder::new(ProbeConfig::by_events(1));
        let sched = Toy {
            remaining: 3,
            phase: 1,
        };
        let ledger = CommLedger::new(2);
        rec.observe(batch(0.0), &sched, &ledger, None);
        let s = &rec.probes().samples()[0];
        assert_eq!(s.useful_fraction[0], 0.25);
        assert!(s.useful_fraction[1].is_nan());
        assert_eq!(s.remaining, 3);
        assert_eq!(s.link_busy, 0.0);
        assert_eq!(s.queue_depth, 0);
    }
}
