//! State probes: sampled time series of the quantities the paper's ODE
//! model evolves, and the [`Recorder`] that collects them alongside a
//! [`Trace`].
//!
//! The analysis in §3 of the paper describes the *time evolution* of
//! per-worker state: how many tasks remain, what fraction of each input
//! vector a worker already knows, how much data has crossed the master
//! link. A [`Recorder`] attached to a run samples exactly those quantities
//! on a configurable cadence ([`ProbeConfig`]), so simulated trajectories
//! can be overlaid on the analytic ones from `hetsched-analysis`.
//!
//! Recording is strictly opt-in: the engines take an
//! `Option<&mut Recorder>` and the `None` path performs no extra work and
//! no heap allocation — the `bench-json` binary pins the unobserved
//! throughput per PR.
//!
//! ## Storage layout
//!
//! [`ProbeSeries`] is columnar (structure-of-arrays): each probed quantity
//! lives in one flat `Vec`, with the per-worker columns indexed by
//! `sample * workers + proc`. Appending a sample is a handful of
//! `extend_from_slice` calls into already-grown vectors — no per-sample
//! heap allocation, which is what made the original array-of-structs
//! layout cost a quarter of the engine's throughput. The cumulative
//! `blocks`/`tasks` counters can additionally be stored
//! [delta-encoded](ProbeConfig::with_delta_encoding) as `u32` increments,
//! halving their footprint on long runs.
//!
//! ## Streaming
//!
//! A [`Recorder`] is generic over a [`StreamingSink`]. The default
//! ([`NullSink`]) buffers the whole trace in memory, exactly as before.
//! [`Recorder::streaming`] instead bounds the in-memory trace to a fixed
//! chunk of events: whenever the buffer fills, it is flushed to the sink
//! and cleared, so peak trace memory is O(chunk), not O(events).

use crate::metrics::CommLedger;
use crate::scheduler::Scheduler;
use crate::sink::{NullSink, StreamingSink};
use crate::trace::{EventKind, Trace, TraceEvent};
use hetsched_net::NetState;
use hetsched_platform::ProcId;

/// When to take a [`ProbeSample`]. Event-count and sim-time cadences can
/// be combined; the default ([`ProbeConfig::disabled`]) never samples (the
/// recorder then only collects the trace).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProbeConfig {
    every_events: u64,
    every_time: f64,
    delta: bool,
}

impl ProbeConfig {
    /// Never sample (trace collection only).
    pub fn disabled() -> Self {
        ProbeConfig::default()
    }

    /// Sample after every `n` allocation events (`0` disables the
    /// event-count cadence).
    pub fn by_events(n: u64) -> Self {
        ProbeConfig {
            every_events: n,
            every_time: 0.0,
            delta: false,
        }
    }

    /// Sample every `dt` units of simulated time (`dt <= 0` disables the
    /// sim-time cadence). Samples are taken at the first allocation event
    /// on or after each grid point, so they sit on event times.
    pub fn by_time(dt: f64) -> Self {
        assert!(dt.is_finite(), "probe period must be finite");
        ProbeConfig {
            every_events: 0,
            every_time: dt.max(0.0),
            delta: false,
        }
    }

    /// Store the cumulative `blocks`/`tasks` counters as `u32` deltas
    /// against the previous sample instead of absolute `u64`s, halving
    /// their memory per cell. Purely a storage choice: materialized
    /// samples ([`ProbeSeries::get`]/[`ProbeSeries::iter`]) and rendered
    /// sinks are bit-identical either way.
    pub fn with_delta_encoding(mut self) -> Self {
        self.delta = true;
        self
    }

    /// True if the counter columns are stored delta-encoded.
    pub fn delta_encoding(&self) -> bool {
        self.delta
    }

    /// True if either cadence is active.
    pub fn is_enabled(&self) -> bool {
        self.every_events > 0 || self.every_time > 0.0
    }
}

/// One snapshot of the engine's observable state, materialized from the
/// columnar [`ProbeSeries`] store.
#[derive(Clone, Debug)]
pub struct ProbeSample {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Allocation events recorded so far.
    pub events: u64,
    /// Tasks not yet allocated (the residual set the ODE evolves).
    pub remaining: usize,
    /// Cumulative blocks received per worker.
    pub blocks_per_proc: Vec<u64>,
    /// Cumulative tasks computed per worker.
    pub tasks_per_proc: Vec<u64>,
    /// The strategy's per-worker useful-task (knowledge) fraction, from
    /// [`Scheduler::useful_fraction`]; `NaN` when the strategy does not
    /// track it.
    pub useful_fraction: Vec<f64>,
    /// Cumulative master-link busy time (zero under the infinite network).
    pub link_busy: f64,
    /// Deepest master send queue observed so far (zero under the infinite
    /// network).
    pub queue_depth: usize,
}

/// The per-`(sample, worker)` cumulative counter columns. `Absolute`
/// stores the raw `u64` counters; `Delta` stores `u32` increments against
/// the previous sample (the counters are monotone non-decreasing), at half
/// the memory per cell. `last_*` keep the running absolutes so appends
/// stay O(p).
#[derive(Clone, Debug)]
enum Counters {
    Absolute {
        blocks: Vec<u64>,
        tasks: Vec<u64>,
    },
    Delta {
        blocks: Vec<u32>,
        tasks: Vec<u32>,
        last_blocks: Vec<u64>,
        last_tasks: Vec<u64>,
    },
}

/// The probe samples of one run, in time order, stored as flat columns
/// indexed by `(sample, proc)`.
///
/// Samples are materialized on demand: [`get`](ProbeSeries::get) builds
/// one [`ProbeSample`], [`iter`](ProbeSeries::iter) walks all of them in
/// O(p) per step (reconstructing delta-encoded counters with a running
/// cursor). Random access under delta encoding is O(i·p) — use `iter` for
/// scans.
#[derive(Clone, Debug)]
pub struct ProbeSeries {
    /// Workers per sample; fixed by the first push.
    p: usize,
    time: Vec<f64>,
    events: Vec<u64>,
    remaining: Vec<usize>,
    link_busy: Vec<f64>,
    queue_depth: Vec<usize>,
    /// Sample-major `len * p` column of useful fractions.
    useful: Vec<f64>,
    counters: Counters,
}

impl Default for ProbeSeries {
    fn default() -> Self {
        ProbeSeries::new()
    }
}

impl ProbeSeries {
    /// Empty series with absolute counter columns.
    pub fn new() -> Self {
        ProbeSeries {
            p: 0,
            time: Vec::new(),
            events: Vec::new(),
            remaining: Vec::new(),
            link_busy: Vec::new(),
            queue_depth: Vec::new(),
            useful: Vec::new(),
            counters: Counters::Absolute {
                blocks: Vec::new(),
                tasks: Vec::new(),
            },
        }
    }

    /// Empty series whose counter columns are stored as `u32` deltas.
    pub fn with_delta_encoding() -> Self {
        ProbeSeries {
            counters: Counters::Delta {
                blocks: Vec::new(),
                tasks: Vec::new(),
                last_blocks: Vec::new(),
                last_tasks: Vec::new(),
            },
            ..ProbeSeries::new()
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Workers per sample (0 until the first sample lands).
    pub fn workers(&self) -> usize {
        self.p
    }

    /// True if the counter columns are delta-encoded.
    pub fn delta_encoded(&self) -> bool {
        matches!(self.counters, Counters::Delta { .. })
    }

    /// Approximate heap footprint of the stored columns, in bytes.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let counters = match &self.counters {
            Counters::Absolute { blocks, tasks } => (blocks.len() + tasks.len()) * 8,
            Counters::Delta {
                blocks,
                tasks,
                last_blocks,
                last_tasks,
            } => (blocks.len() + tasks.len()) * 4 + (last_blocks.len() + last_tasks.len()) * 8,
        };
        self.time.len() * 8
            + self.events.len() * 8
            + self.remaining.len() * size_of::<usize>()
            + self.link_busy.len() * 8
            + self.queue_depth.len() * size_of::<usize>()
            + self.useful.len() * 8
            + counters
    }

    /// Materializes sample `i`. Panics if out of range. O(i·p) under delta
    /// encoding (must replay the increments); prefer [`iter`](Self::iter)
    /// for scans.
    pub fn get(&self, i: usize) -> ProbeSample {
        assert!(i < self.len(), "probe sample {i} out of range");
        let p = self.p;
        let (blocks_per_proc, tasks_per_proc) = match &self.counters {
            Counters::Absolute { blocks, tasks } => (
                blocks[i * p..(i + 1) * p].to_vec(),
                tasks[i * p..(i + 1) * p].to_vec(),
            ),
            Counters::Delta { blocks, tasks, .. } => {
                let mut b = vec![0u64; p];
                let mut t = vec![0u64; p];
                for row in 0..=i {
                    for k in 0..p {
                        b[k] += u64::from(blocks[row * p + k]);
                        t[k] += u64::from(tasks[row * p + k]);
                    }
                }
                (b, t)
            }
        };
        ProbeSample {
            time: self.time[i],
            events: self.events[i],
            remaining: self.remaining[i],
            blocks_per_proc,
            tasks_per_proc,
            useful_fraction: self.useful[i * p..(i + 1) * p].to_vec(),
            link_busy: self.link_busy[i],
            queue_depth: self.queue_depth[i],
        }
    }

    /// The final sample, if any (O(n·p) under delta encoding).
    pub fn last(&self) -> Option<ProbeSample> {
        (!self.is_empty()).then(|| self.get(self.len() - 1))
    }

    /// Iterates all samples in order, materializing each in O(p).
    pub fn iter(&self) -> ProbeIter<'_> {
        ProbeIter {
            series: self,
            i: 0,
            blocks: vec![0; self.p],
            tasks: vec![0; self.p],
        }
    }

    /// Appends one sample: scalars plus the per-worker counter slices and
    /// a useful-fraction generator evaluated for `0..p`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_sample(
        &mut self,
        time: f64,
        events: u64,
        remaining: usize,
        blocks: &[u64],
        tasks: &[u64],
        link_busy: f64,
        queue_depth: usize,
        useful: impl FnMut(usize) -> f64,
    ) {
        debug_assert_eq!(blocks.len(), tasks.len());
        if self.time.is_empty() {
            self.p = blocks.len();
        }
        debug_assert_eq!(blocks.len(), self.p, "worker count changed mid-series");
        self.time.push(time);
        self.events.push(events);
        self.remaining.push(remaining);
        self.link_busy.push(link_busy);
        self.queue_depth.push(queue_depth);
        self.useful.extend((0..self.p).map(useful));
        match &mut self.counters {
            Counters::Absolute {
                blocks: cb,
                tasks: ct,
            } => {
                cb.extend_from_slice(blocks);
                ct.extend_from_slice(tasks);
            }
            Counters::Delta {
                blocks: db,
                tasks: dt,
                last_blocks,
                last_tasks,
            } => {
                if last_blocks.is_empty() {
                    last_blocks.resize(self.p, 0);
                    last_tasks.resize(self.p, 0);
                }
                let delta32 = |cur: u64, last: u64| -> u32 {
                    u32::try_from(cur - last)
                        .expect("probe delta overflow: counter advanced by >= 2^32 between samples")
                };
                for k in 0..self.p {
                    db.push(delta32(blocks[k], last_blocks[k]));
                    dt.push(delta32(tasks[k], last_tasks[k]));
                    last_blocks[k] = blocks[k];
                    last_tasks[k] = tasks[k];
                }
            }
        }
    }
}

impl ProbeSeries {
    /// Pre-sizes every column for `samples` more samples of `p` workers
    /// each, so a probed run appends without reallocation-and-copy growth.
    pub(crate) fn reserve(&mut self, samples: usize, p: usize) {
        self.time.reserve(samples);
        self.events.reserve(samples);
        self.remaining.reserve(samples);
        self.link_busy.reserve(samples);
        self.queue_depth.reserve(samples);
        self.useful.reserve(samples * p);
        match &mut self.counters {
            Counters::Absolute { blocks, tasks } => {
                blocks.reserve(samples * p);
                tasks.reserve(samples * p);
            }
            Counters::Delta { blocks, tasks, .. } => {
                blocks.reserve(samples * p);
                tasks.reserve(samples * p);
            }
        }
    }
}

/// Sequential materializing iterator over a [`ProbeSeries`]; carries the
/// running counter absolutes so delta-encoded series decode in O(p) per
/// step.
pub struct ProbeIter<'a> {
    series: &'a ProbeSeries,
    i: usize,
    blocks: Vec<u64>,
    tasks: Vec<u64>,
}

impl Iterator for ProbeIter<'_> {
    type Item = ProbeSample;

    fn next(&mut self) -> Option<ProbeSample> {
        let s = self.series;
        let (i, p) = (self.i, s.p);
        if i >= s.len() {
            return None;
        }
        self.i += 1;
        match &s.counters {
            Counters::Absolute { blocks, tasks } => {
                self.blocks.copy_from_slice(&blocks[i * p..(i + 1) * p]);
                self.tasks.copy_from_slice(&tasks[i * p..(i + 1) * p]);
            }
            Counters::Delta { blocks, tasks, .. } => {
                for k in 0..p {
                    self.blocks[k] += u64::from(blocks[i * p + k]);
                    self.tasks[k] += u64::from(tasks[i * p + k]);
                }
            }
        }
        Some(ProbeSample {
            time: s.time[i],
            events: s.events[i],
            remaining: s.remaining[i],
            blocks_per_proc: self.blocks.clone(),
            tasks_per_proc: self.tasks.clone(),
            useful_fraction: s.useful[i * p..(i + 1) * p].to_vec(),
            link_busy: s.link_busy[i],
            queue_depth: s.queue_depth[i],
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.series.len() - self.i;
        (left, Some(left))
    }
}

/// Collects a [`Trace`] and a [`ProbeSeries`] for one run.
///
/// Attach with [`Engine::run_recorded`](crate::Engine::run_recorded) or the
/// [`run_configured_recorded`](crate::run_configured_recorded) convenience;
/// the engines emit every [`TraceEvent`] through it and it decides, per
/// [`ProbeConfig`], when to snapshot the run state. A fresh sample is
/// always taken at `t = 0` and at the end of the run, so trajectories are
/// anchored at both ends even with sampling disabled mid-run — unless the
/// config is fully [`disabled`](ProbeConfig::disabled), which suppresses
/// sampling entirely.
///
/// In the default buffered mode ([`Recorder::new`]) the whole trace stays
/// in memory and [`into_parts`](Recorder::into_parts) hands it back. In
/// streaming mode ([`Recorder::streaming`]) the trace buffer is flushed to
/// the sink every `chunk_events` events, so peak trace memory is bounded
/// by the chunk size; call [`finish`](Recorder::finish) to flush the tail
/// and recover the sink.
#[derive(Clone, Debug)]
pub struct Recorder<K: StreamingSink = NullSink> {
    cfg: ProbeConfig,
    trace: Trace,
    probes: ProbeSeries,
    alloc_events: u64,
    /// Allocation events left until the next event-cadence sample
    /// (`u64::MAX` when the event cadence is off) — a countdown instead of
    /// a modulo, keeping the per-event path division-free.
    events_until_sample: u64,
    next_sample_time: f64,
    last_phase: Option<u8>,
    sink: K,
    /// Flush threshold in events; 0 = buffered (never flush).
    chunk: usize,
    peak_events: usize,
    flushed_events: usize,
}

impl Recorder {
    /// Buffered recorder with the given probe cadence.
    pub fn new(cfg: ProbeConfig) -> Recorder<NullSink> {
        Recorder::with_sink(cfg, NullSink, 0)
    }
}

impl<K: StreamingSink> Recorder<K> {
    /// Streaming recorder: the trace buffer is flushed to `sink` whenever
    /// it holds `chunk_events` events (and once more, with the tail and
    /// the probe series, on [`finish`](Recorder::finish)).
    pub fn streaming(cfg: ProbeConfig, sink: K, chunk_events: usize) -> Recorder<K> {
        assert!(chunk_events > 0, "streaming chunk must hold >= 1 event");
        Recorder::with_sink(cfg, sink, chunk_events)
    }

    fn with_sink(cfg: ProbeConfig, sink: K, chunk: usize) -> Recorder<K> {
        Recorder {
            cfg,
            trace: Trace::new(),
            probes: if cfg.delta {
                ProbeSeries::with_delta_encoding()
            } else {
                ProbeSeries::new()
            },
            alloc_events: 0,
            events_until_sample: if cfg.every_events > 0 {
                cfg.every_events
            } else {
                u64::MAX
            },
            next_sample_time: if cfg.every_time > 0.0 {
                cfg.every_time
            } else {
                f64::INFINITY
            },
            last_phase: None,
            sink,
            chunk,
            peak_events: 0,
            flushed_events: 0,
        }
    }

    /// The trace recorded so far (in streaming mode: the unflushed tail).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The probe samples recorded so far.
    pub fn probes(&self) -> &ProbeSeries {
        &self.probes
    }

    /// High-water mark of the in-memory trace buffer, in events. Bounded
    /// by the chunk size in streaming mode.
    pub fn peak_buffered_events(&self) -> usize {
        self.peak_events
    }

    /// Events already handed to the sink (0 in buffered mode).
    pub fn flushed_events(&self) -> usize {
        self.flushed_events
    }

    /// Consumes the recorder, returning the trace and the probe series.
    /// In streaming mode the trace is only the unflushed tail — use
    /// [`finish`](Recorder::finish) there instead.
    pub fn into_parts(self) -> (Trace, ProbeSeries) {
        (self.trace, self.probes)
    }

    /// Consumes the recorder, returning just the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Flushes the remaining trace tail and the probe series to the sink
    /// and returns it. The sink's `finish` is called exactly once.
    pub fn finish(mut self) -> K {
        self.flush();
        self.sink.finish(&self.probes);
        self.sink
    }

    /// Pre-sizes the trace buffer and the probe columns: engines call
    /// this with their event estimate and worker count so recorded runs
    /// avoid reallocation-and-copy growth. In streaming mode the trace
    /// buffer never exceeds the chunk; the probe estimate covers the
    /// event-cadence samples plus the two anchor samples (the time
    /// cadence's sample count is unknown up front and grows normally).
    pub(crate) fn reserve_events(&mut self, n: usize, workers: usize) {
        let want = if self.chunk > 0 { self.chunk.min(n) } else { n };
        self.trace.reserve(want);
        if self.cfg.is_enabled() {
            let samples = (n as u64).checked_div(self.cfg.every_events).unwrap_or(0) + 2;
            self.probes.reserve(samples as usize, workers);
        }
    }

    fn flush(&mut self) {
        if !self.trace.is_empty() {
            self.sink.write_events(self.trace.events());
            self.flushed_events += self.trace.len();
            self.trace.clear();
        }
    }

    fn push_event(&mut self, ev: TraceEvent) {
        self.trace.push(ev);
        if self.trace.len() > self.peak_events {
            self.peak_events = self.trace.len();
        }
        if self.chunk > 0 && self.trace.len() >= self.chunk {
            self.flush();
        }
    }

    /// Feeds pre-built events (a merged tree-shard trace) through the
    /// normal event path, so streaming sinks see the usual chunked
    /// flushes. Probe cadence does not advance: the events were already
    /// recorded (or deliberately not sampled) by the engine that ran them.
    pub(crate) fn absorb_events(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        for ev in events {
            self.push_event(ev);
        }
    }

    /// Records one event and, for allocation events, advances the probe
    /// cadence (sampling the run state if a cadence point was reached).
    pub(crate) fn observe<S: Scheduler>(
        &mut self,
        ev: TraceEvent,
        sched: &S,
        ledger: &CommLedger,
        net: Option<&NetState>,
    ) {
        let now = ev.time;
        let is_alloc = ev.kind.is_allocation();
        self.push_event(ev);
        if !is_alloc {
            return;
        }
        self.alloc_events += 1;
        self.events_until_sample -= 1;
        let due_events = self.events_until_sample == 0;
        if due_events {
            self.events_until_sample = self.cfg.every_events;
        }
        let due_time = now >= self.next_sample_time;
        if due_time {
            while now >= self.next_sample_time {
                self.next_sample_time += self.cfg.every_time;
            }
        }
        if due_events || due_time {
            self.sample(now, sched, ledger, net);
        }
    }

    /// Emits a [`EventKind::PhaseSwitch`] event if the scheduler's phase
    /// changed since the last check. Engines call this right after
    /// [`Scheduler::on_request`], the only point a phase can flip.
    pub(crate) fn note_phase<S: Scheduler>(&mut self, now: f64, k: ProcId, sched: &S) {
        if let Some(phase) = sched.phase() {
            if self.last_phase.is_some_and(|prev| prev != phase) {
                self.push_event(TraceEvent {
                    kind: EventKind::PhaseSwitch,
                    time: now,
                    proc: k,
                    tasks: 0,
                    blocks: 0,
                    duration: 0.0,
                });
            }
            self.last_phase = Some(phase);
        }
    }

    /// Takes one snapshot unconditionally (engines use this for the
    /// anchoring samples at `t = 0` and at run end).
    pub(crate) fn sample<S: Scheduler>(
        &mut self,
        now: f64,
        sched: &S,
        ledger: &CommLedger,
        net: Option<&NetState>,
    ) {
        if !self.cfg.is_enabled() {
            return;
        }
        self.probes.push_sample(
            now,
            self.alloc_events,
            sched.remaining(),
            ledger.blocks_per_proc(),
            ledger.tasks_per_proc(),
            net.map_or(0.0, |n| n.master_busy()),
            net.map_or(0, |n| n.max_queue_depth()),
            |k| sched.useful_fraction(ProcId(k as u32)).unwrap_or(f64::NAN),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use rand::rngs::StdRng;

    /// Toy scheduler with a controllable phase and tracked fractions.
    struct Toy {
        remaining: usize,
        phase: u8,
    }

    impl Scheduler for Toy {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            let t = 1.min(self.remaining);
            self.remaining -= t;
            out.extend(std::iter::repeat_n(0, t));
            Allocation {
                tasks: t,
                blocks: t as u64,
            }
        }
        fn remaining(&self) -> usize {
            self.remaining
        }
        fn total_tasks(&self) -> usize {
            10
        }
        fn name(&self) -> &'static str {
            "Toy"
        }
        fn phase(&self) -> Option<u8> {
            Some(self.phase)
        }
        fn useful_fraction(&self, k: ProcId) -> Option<f64> {
            (k.idx() == 0).then_some(0.25)
        }
    }

    fn batch(time: f64) -> TraceEvent {
        TraceEvent {
            kind: EventKind::Batch,
            time,
            proc: ProcId(0),
            tasks: 1,
            blocks: 1,
            duration: 0.5,
        }
    }

    #[test]
    fn event_cadence_samples_every_n_allocations() {
        let mut rec = Recorder::new(ProbeConfig::by_events(2));
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(2);
        for i in 0..5 {
            rec.observe(batch(i as f64), &sched, &ledger, None);
        }
        assert_eq!(rec.probes().len(), 2, "samples at events 2 and 4");
        assert_eq!(rec.probes().get(0).events, 2);
        assert_eq!(rec.probes().get(1).events, 4);
        assert_eq!(rec.trace().len(), 5);
    }

    #[test]
    fn time_cadence_snaps_to_next_event() {
        let mut rec = Recorder::new(ProbeConfig::by_time(1.0));
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        for &t in &[0.2, 0.4, 1.7, 1.8, 3.5] {
            rec.observe(batch(t), &sched, &ledger, None);
        }
        // Grid points 1.0 and (2.0, 3.0 coalesced) are each taken once, at
        // the first event past them.
        let times: Vec<f64> = rec.probes().iter().map(|s| s.time).collect();
        assert_eq!(times, vec![1.7, 3.5]);
    }

    #[test]
    fn overlay_events_do_not_advance_the_cadence() {
        let mut rec = Recorder::new(ProbeConfig::by_events(1));
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        rec.observe(
            TraceEvent {
                kind: EventKind::Wait,
                time: 0.0,
                proc: ProcId(0),
                tasks: 0,
                blocks: 0,
                duration: 1.0,
            },
            &sched,
            &ledger,
            None,
        );
        assert_eq!(rec.probes().len(), 0);
        rec.observe(batch(1.0), &sched, &ledger, None);
        assert_eq!(rec.probes().len(), 1);
    }

    #[test]
    fn disabled_config_records_trace_only() {
        let mut rec = Recorder::new(ProbeConfig::disabled());
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        rec.observe(batch(0.0), &sched, &ledger, None);
        rec.sample(1.0, &sched, &ledger, None);
        assert_eq!(rec.trace().len(), 1);
        assert!(rec.probes().is_empty(), "disabled probes never sample");
    }

    #[test]
    fn phase_switch_emitted_once_per_transition() {
        let mut rec = Recorder::new(ProbeConfig::disabled());
        let mut sched = Toy {
            remaining: 7,
            phase: 1,
        };
        rec.note_phase(0.0, ProcId(0), &sched);
        rec.note_phase(0.5, ProcId(1), &sched);
        sched.phase = 2;
        rec.note_phase(1.0, ProcId(1), &sched);
        rec.note_phase(1.5, ProcId(0), &sched);
        let switches: Vec<_> = rec
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::PhaseSwitch)
            .collect();
        assert_eq!(switches.len(), 1);
        assert_eq!(switches[0].time, 1.0);
        assert_eq!(switches[0].proc, ProcId(1));
    }

    #[test]
    fn samples_carry_useful_fraction_and_nan_for_untracked() {
        let mut rec = Recorder::new(ProbeConfig::by_events(1));
        let sched = Toy {
            remaining: 3,
            phase: 1,
        };
        let ledger = CommLedger::new(2);
        rec.observe(batch(0.0), &sched, &ledger, None);
        let s = rec.probes().get(0);
        assert_eq!(s.useful_fraction[0], 0.25);
        assert!(s.useful_fraction[1].is_nan());
        assert_eq!(s.remaining, 3);
        assert_eq!(s.link_busy, 0.0);
        assert_eq!(s.queue_depth, 0);
    }

    #[test]
    fn delta_encoding_materializes_identically() {
        let mut abs = ProbeSeries::new();
        let mut del = ProbeSeries::with_delta_encoding();
        let rows: [(&[u64], &[u64]); 3] =
            [(&[3, 0], &[1, 0]), (&[3, 8], &[1, 4]), (&[10, 8], &[5, 4])];
        for (i, (b, t)) in rows.iter().enumerate() {
            for s in [&mut abs, &mut del] {
                s.push_sample(i as f64, i as u64, 9 - i, b, t, 0.5 * i as f64, i, |k| {
                    k as f64
                });
            }
        }
        assert!(del.delta_encoded() && !abs.delta_encoded());
        assert!(del.approx_bytes() < abs.approx_bytes());
        for (a, d) in abs.iter().zip(del.iter()) {
            assert_eq!(a.blocks_per_proc, d.blocks_per_proc);
            assert_eq!(a.tasks_per_proc, d.tasks_per_proc);
            assert_eq!(a.time, d.time);
            assert_eq!(a.useful_fraction, d.useful_fraction);
        }
        // Random access agrees with iteration.
        for i in 0..3 {
            assert_eq!(abs.get(i).blocks_per_proc, del.get(i).blocks_per_proc);
        }
        assert_eq!(del.last().unwrap().blocks_per_proc, vec![10, 8]);
    }

    /// Sink that remembers flushed chunk sizes.
    #[derive(Default)]
    struct CountChunks {
        chunks: Vec<usize>,
        probes: usize,
        finished: bool,
    }

    impl StreamingSink for CountChunks {
        fn write_events(&mut self, events: &[TraceEvent]) {
            self.chunks.push(events.len());
        }
        fn finish(&mut self, probes: &ProbeSeries) {
            self.probes = probes.len();
            self.finished = true;
        }
    }

    #[test]
    fn streaming_recorder_bounds_the_buffer_and_flushes_chunks() {
        let mut rec = Recorder::streaming(ProbeConfig::by_events(2), CountChunks::default(), 3);
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        for i in 0..8 {
            rec.observe(batch(i as f64), &sched, &ledger, None);
        }
        assert!(rec.peak_buffered_events() <= 3, "peak bounded by chunk");
        assert_eq!(rec.flushed_events(), 6, "two full chunks flushed");
        assert_eq!(rec.trace().len(), 2, "tail still buffered");
        let probes = rec.probes().len();
        let sink = rec.finish();
        assert_eq!(sink.chunks, vec![3, 3, 2], "tail flushed on finish");
        assert!(sink.finished);
        assert_eq!(sink.probes, probes);
    }

    #[test]
    fn buffered_recorder_never_flushes() {
        let mut rec = Recorder::new(ProbeConfig::disabled());
        let sched = Toy {
            remaining: 7,
            phase: 1,
        };
        let ledger = CommLedger::new(1);
        for i in 0..100 {
            rec.observe(batch(i as f64), &sched, &ledger, None);
        }
        assert_eq!(rec.flushed_events(), 0);
        assert_eq!(rec.peak_buffered_events(), 100);
        assert_eq!(rec.trace().len(), 100);
    }
}
