//! Master/worker wiring of the simulated platform.
//!
//! The paper's model is a star: one master serving every worker directly
//! ([`Topology::Flat`]). [`Topology::Tree`] adds one level of hierarchy: a
//! root partitions the task grid across `submasters` sub-masters (using the
//! optimal static column partition as the top-level split) and each
//! sub-master runs any flat strategy over its shard — see
//! [`crate::tree::run_tree`] for the execution semantics.

/// How the master/worker platform is wired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Topology {
    /// A single master serving every worker directly — the paper's model
    /// and the default.
    #[default]
    Flat,
    /// Two-level hierarchy: the root splits the task grid across
    /// `submasters` sub-masters; each serves a contiguous slice of the
    /// workers. With `submasters == 1` the tree collapses to [`Flat`]
    /// (bit-for-bit identical results).
    ///
    /// [`Flat`]: Topology::Flat
    Tree {
        /// Number of sub-masters (`1 ≤ submasters ≤ workers`).
        submasters: usize,
    },
}

impl Topology {
    /// `true` for the single-master star.
    pub fn is_flat(&self) -> bool {
        matches!(self, Topology::Flat)
    }

    /// Number of sub-masters the root fans out to (`1` for the flat
    /// topology, which is its own sub-master).
    pub fn submasters(&self) -> usize {
        match *self {
            Topology::Flat => 1,
            Topology::Tree { submasters } => submasters,
        }
    }

    /// Short scenario label (`"flat"` / `"tree"`).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Flat => "flat",
            Topology::Tree { .. } => "tree",
        }
    }

    /// Checks the topology against a platform of `workers` processors: a
    /// tree needs at least one sub-master and at least one worker per
    /// sub-master.
    pub fn validate(&self, workers: usize) -> Result<(), String> {
        match *self {
            Topology::Flat => Ok(()),
            Topology::Tree { submasters } => {
                if submasters == 0 {
                    return Err("tree topology needs at least one sub-master".into());
                }
                if submasters > workers {
                    return Err(format!(
                        "tree topology with {submasters} sub-masters needs at least \
                         {submasters} workers, platform has {workers}"
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_default_and_valid() {
        assert_eq!(Topology::default(), Topology::Flat);
        assert!(Topology::Flat.is_flat());
        assert_eq!(Topology::Flat.submasters(), 1);
        assert_eq!(Topology::Flat.name(), "flat");
        assert!(Topology::Flat.validate(1).is_ok());
    }

    #[test]
    fn tree_validation() {
        let t = Topology::Tree { submasters: 3 };
        assert!(!t.is_flat());
        assert_eq!(t.submasters(), 3);
        assert_eq!(t.name(), "tree");
        assert!(t.validate(3).is_ok());
        assert!(t.validate(10).is_ok());
        assert!(t.validate(2).is_err(), "more sub-masters than workers");
        assert!(Topology::Tree { submasters: 0 }.validate(4).is_err());
    }
}
