//! Hierarchical (tree) topology execution: root → sub-masters → workers.
//!
//! The flat engine ([`crate::Engine`]) is the paper's star: one master
//! serving every worker. This module composes it into a two-level tree:
//! the caller statically partitions the task grid into one shard per
//! sub-master (the top-level split; `hetsched-core` derives it from the
//! optimal static column partition), and `run_tree` runs one *unchanged*
//! flat engine per shard over that sub-master's contiguous slice of the
//! workers. The root only ships each shard's input blocks to its
//! sub-master once, up front; that inter-tier transfer is priced through
//! [`NetState`] under the run's network model, and a shard's clock starts
//! when its inputs arrive.
//!
//! **Identity guarantee:** with a single sub-master the tree collapses to
//! the flat engine bit for bit — same platform borrow, same RNG stream,
//! no tier transfers — so every flat golden keeps holding under
//! `Topology::Tree { submasters: 1 }`.

use crate::engine::{Engine, SimReport};
use crate::metrics::CommLedger;
use crate::scheduler::Scheduler;
use hetsched_net::{NetState, NetworkModel};
use hetsched_platform::{FailureModel, Platform, ProcId, SpeedModel};
use rand::rngs::StdRng;

/// One sub-master's share of a tree run: a flat scheduler over a
/// contiguous slice of the workers, plus the volume the root must ship it
/// before it can start.
///
/// The scheduler is index-local: its worker `ProcId(0)` is the global
/// worker `start`, and its task ids live in the shard's own `0..len` grid.
#[derive(Debug)]
pub struct ShardSpec<S> {
    /// The shard's flat strategy, already sized to the shard's task grid.
    pub scheduler: S,
    /// First global worker index served by this sub-master.
    pub start: usize,
    /// Number of (contiguous) workers served by this sub-master.
    pub len: usize,
    /// Blocks the root ships to the sub-master at `t = 0` (the shard's
    /// input footprint). Ignored — and free — with a single sub-master.
    pub input_blocks: u64,
    /// The shard's private run RNG. With a single sub-master this must be
    /// the flat run stream for bit-identity; with several, each shard gets
    /// its own derived stream.
    pub rng: StdRng,
}

/// Merged outcome of a tree run.
#[derive(Clone, Debug)]
pub struct TreeOutcome {
    /// Global report: per-worker ledger in global indices, makespan over
    /// the whole tree, `total_blocks` = worker volume + tier volume.
    pub report: SimReport,
    /// When each shard's inputs arrived (its local clock's origin on the
    /// global clock). All zeros with one sub-master or a free network.
    pub shard_starts: Vec<f64>,
    /// Each shard's local makespan (its sub-master's view).
    pub shard_makespans: Vec<f64>,
}

/// Runs one flat engine per shard and merges the results.
///
/// Shards must tile the platform contiguously: `start` values in order,
/// each `len ≥ 1`, jointly covering `0..platform.len()`.
///
/// With `shards.len() == 1` this is *exactly* the flat
/// `run_configured` path (same platform borrow, no tier pricing). With
/// more, the root first ships every shard's `input_blocks` over its own
/// [`NetState`] (one link per sub-master, latency = mean of the shard's
/// worker latencies, sends issued in shard order at `t = 0`); each shard
/// then runs on a sliced sub-platform with its failure scenario re-indexed
/// and shifted onto the shard's local clock.
///
/// # Panics
///
/// On a non-contiguous shard layout, an invalid network model, or a
/// failure scenario that kills *every* worker of some shard (each shard
/// needs a survivor, exactly like a flat platform).
pub fn run_tree<S: Scheduler>(
    platform: &Platform,
    model: SpeedModel,
    failures: &FailureModel,
    network: NetworkModel,
    shards: Vec<ShardSpec<S>>,
) -> (TreeOutcome, Vec<S>) {
    let p = platform.len();
    assert!(!shards.is_empty(), "tree run needs at least one shard");
    let mut cursor = 0usize;
    for (j, s) in shards.iter().enumerate() {
        assert_eq!(
            s.start, cursor,
            "shard {j} starts at worker {} but the previous shard ends at {cursor}",
            s.start
        );
        assert!(s.len >= 1, "shard {j} has no workers");
        cursor += s.len;
    }
    assert_eq!(cursor, p, "shards cover {cursor} workers, platform has {p}");

    if shards.len() == 1 {
        // Single sub-master: the tree *is* the flat run. Use the caller's
        // platform borrow and RNG directly so results are bit-for-bit
        // identical to the flat engine — no slicing, no tier transfers.
        let mut shard = shards.into_iter().next().expect("one shard");
        let (report, scheduler) = Engine::new(platform, model, shard.scheduler)
            .with_failures(failures)
            .with_network(network)
            .run(&mut shard.rng);
        let makespan = report.makespan;
        return (
            TreeOutcome {
                report,
                shard_starts: vec![0.0],
                shard_makespans: vec![makespan],
            },
            vec![scheduler],
        );
    }

    // Root tier: one priced link per sub-master. The tier link's latency is
    // the mean of the shard's worker latencies (the sub-master sits "in the
    // middle" of its workers); bandwidth is the model's uniform pricing.
    let latencies = platform.link_latencies();
    let tier_latency: Vec<f64> = shards
        .iter()
        .map(|s| latencies[s.start..s.start + s.len].iter().sum::<f64>() / s.len as f64)
        .collect();
    let mut tier = NetState::new(network, shards.len(), tier_latency);
    let mut tier_blocks = 0u64;
    let shard_starts: Vec<f64> = shards
        .iter()
        .enumerate()
        .map(|(j, s)| {
            tier_blocks += s.input_blocks;
            tier.send(ProcId(j as u32), s.input_blocks, 0.0).arrival
        })
        .collect();

    let mut ledger = CommLedger::new(p);
    let mut makespan = 0.0f64;
    let mut lost_tasks = 0;
    let mut reshipped_blocks = 0;
    let mut wasted_blocks = 0;
    let mut link_utilization = 0.0f64;
    let mut max_queue_depth = 0usize;
    let mut shard_makespans = Vec::with_capacity(shards.len());
    let mut schedulers = Vec::with_capacity(shards.len());

    for (j, mut shard) in shards.into_iter().enumerate() {
        let range = shard.start..shard.start + shard.len;
        let mut sub_pf = Platform::from_speeds(platform.speeds()[range.clone()].to_vec())
            .with_link_latencies(latencies[range.clone()].to_vec());
        if let Some(bws) = platform.link_bandwidths() {
            sub_pf = sub_pf.with_link_bandwidths(bws[range.clone()].to_vec());
        }

        // Re-index the failure scenario onto the shard and shift fail-stop
        // times onto the shard's local clock (which starts when its inputs
        // arrive). A global failure before the shard even starts becomes a
        // death at local t = 0.
        let mut sub_failures = FailureModel::none();
        for &(k, t) in failures.failures() {
            if range.contains(&k.idx()) {
                sub_failures = sub_failures.fail_at(
                    ProcId((k.idx() - shard.start) as u32),
                    (t - shard_starts[j]).max(0.0),
                );
            }
        }
        for &(k, f) in failures.stragglers() {
            if range.contains(&k.idx()) {
                sub_failures = sub_failures.slow_down(ProcId((k.idx() - shard.start) as u32), f);
            }
        }

        let (report, scheduler) = Engine::new(&sub_pf, model, shard.scheduler)
            .with_failures(&sub_failures)
            .with_network(network)
            .run(&mut shard.rng);

        ledger.absorb_at(shard.start, &report.ledger);
        makespan = makespan.max(shard_starts[j] + report.makespan);
        lost_tasks += report.lost_tasks;
        reshipped_blocks += report.reshipped_blocks;
        wasted_blocks += report.wasted_blocks;
        link_utilization = link_utilization.max(report.link_utilization);
        max_queue_depth = max_queue_depth.max(report.max_queue_depth);
        shard_makespans.push(report.makespan);
        schedulers.push(scheduler);
    }

    link_utilization = link_utilization.max(tier.utilization(makespan));
    max_queue_depth = max_queue_depth.max(tier.max_queue_depth());
    let total_blocks = ledger.total_blocks() + tier_blocks;
    let ledger_returned = ledger.total_returned_blocks();

    (
        TreeOutcome {
            report: SimReport {
                ledger,
                makespan,
                total_blocks,
                lost_tasks,
                reshipped_blocks,
                link_utilization,
                max_queue_depth,
                wasted_blocks,
                tier_blocks,
                returned_blocks: ledger_returned,
            },
            shard_starts,
            shard_makespans,
        },
        schedulers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use hetsched_util::rng::rng_for;

    /// Toy shard strategy: hands out single tasks, one block each.
    struct Pool {
        remaining: usize,
        total: usize,
    }

    fn pool(total: usize) -> Pool {
        Pool {
            remaining: total,
            total,
        }
    }

    impl Scheduler for Pool {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            if self.remaining == 0 {
                return Allocation::DONE;
            }
            self.remaining -= 1;
            out.push(self.remaining as u32);
            Allocation {
                tasks: 1,
                blocks: 1,
            }
        }
        fn on_tasks_lost(&mut self, ids: &[u32]) {
            self.remaining += ids.len();
        }
        fn remaining(&self) -> usize {
            self.remaining
        }
        fn total_tasks(&self) -> usize {
            self.total
        }
        fn name(&self) -> &'static str {
            "Pool"
        }
    }

    #[test]
    fn single_shard_is_bit_identical_to_flat() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let (flat, _) = crate::run(&pf, SpeedModel::Fixed, pool(300), &mut rng_for(3, 0x22));
        let shards = vec![ShardSpec {
            scheduler: pool(300),
            start: 0,
            len: 3,
            input_blocks: 999, // ignored with one shard
            rng: rng_for(3, 0x22),
        }];
        let (tree, _) = run_tree(
            &pf,
            SpeedModel::Fixed,
            &FailureModel::none(),
            NetworkModel::Infinite,
            shards,
        );
        assert_eq!(tree.report.makespan, flat.makespan);
        assert_eq!(tree.report.total_blocks, flat.total_blocks);
        assert_eq!(
            tree.report.ledger.tasks_per_proc(),
            flat.ledger.tasks_per_proc()
        );
        assert_eq!(tree.report.tier_blocks, 0);
        assert_eq!(tree.shard_starts, vec![0.0]);
    }

    #[test]
    fn two_shards_merge_into_global_indices() {
        let pf = Platform::from_speeds(vec![10.0, 10.0, 20.0, 20.0]);
        let shards = vec![
            ShardSpec {
                scheduler: pool(100),
                start: 0,
                len: 2,
                input_blocks: 10,
                rng: rng_for(7, 0),
            },
            ShardSpec {
                scheduler: pool(200),
                start: 2,
                len: 2,
                input_blocks: 20,
                rng: rng_for(7, 1),
            },
        ];
        let (tree, scheds) = run_tree(
            &pf,
            SpeedModel::Fixed,
            &FailureModel::none(),
            NetworkModel::Infinite,
            shards,
        );
        assert_eq!(scheds.len(), 2);
        let tasks = tree.report.ledger.tasks_per_proc();
        assert_eq!(tasks[0] + tasks[1], 100, "shard 0 on workers 0..2");
        assert_eq!(tasks[2] + tasks[3], 200, "shard 1 on workers 2..4");
        assert_eq!(tree.report.tier_blocks, 30);
        assert_eq!(tree.report.total_blocks, 300 + 30);
        // Free network: both shards start at t = 0 and the makespan is the
        // slower shard's local makespan.
        assert_eq!(tree.shard_starts, vec![0.0, 0.0]);
        assert_eq!(
            tree.report.makespan,
            tree.shard_makespans[0].max(tree.shard_makespans[1])
        );
    }

    #[test]
    fn one_port_tier_serializes_shard_starts() {
        let pf = Platform::homogeneous(4);
        let net = NetworkModel::OnePort { master_bw: 10.0 };
        let shards = vec![
            ShardSpec {
                scheduler: pool(50),
                start: 0,
                len: 2,
                input_blocks: 40,
                rng: rng_for(8, 0),
            },
            ShardSpec {
                scheduler: pool(50),
                start: 2,
                len: 2,
                input_blocks: 40,
                rng: rng_for(8, 1),
            },
        ];
        let (tree, _) = run_tree(&pf, SpeedModel::Fixed, &FailureModel::none(), net, shards);
        // The root's single channel ships shard 0's inputs (4 time units)
        // before shard 1's even start.
        assert_eq!(tree.shard_starts[0], 4.0);
        assert_eq!(tree.shard_starts[1], 8.0);
        assert!(tree.report.makespan >= 8.0);
        assert_eq!(tree.report.tier_blocks, 80);
    }

    #[test]
    fn shard_failures_are_reindexed_and_shifted() {
        let pf = Platform::from_speeds(vec![10.0, 10.0, 10.0, 10.0]);
        // Global worker 2 = shard 1's local worker 0 dies at t = 2.0.
        let failures = FailureModel::none().fail_at(ProcId(2), 2.0);
        let shards = vec![
            ShardSpec {
                scheduler: pool(60),
                start: 0,
                len: 2,
                input_blocks: 0,
                rng: rng_for(9, 0),
            },
            ShardSpec {
                scheduler: pool(60),
                start: 2,
                len: 2,
                input_blocks: 0,
                rng: rng_for(9, 1),
            },
        ];
        let (tree, _) = run_tree(
            &pf,
            SpeedModel::Fixed,
            &failures,
            NetworkModel::Infinite,
            shards,
        );
        assert!(tree.report.lost_tasks > 0, "the death lands mid-batch");
        assert_eq!(
            tree.report.ledger.lost_per_proc()[2],
            tree.report.lost_tasks
        );
        assert_eq!(tree.report.ledger.total_tasks(), 120, "all work completes");
        // The survivor of shard 1 (global worker 3) finishes the shard.
        assert!(tree.report.ledger.tasks_per_proc()[3] > 30);
    }

    #[test]
    #[should_panic(expected = "starts at worker")]
    fn non_contiguous_shards_rejected() {
        let pf = Platform::homogeneous(4);
        let shards = vec![
            ShardSpec {
                scheduler: pool(1),
                start: 0,
                len: 1,
                input_blocks: 0,
                rng: rng_for(0, 0),
            },
            ShardSpec {
                scheduler: pool(1),
                start: 2,
                len: 2,
                input_blocks: 0,
                rng: rng_for(0, 1),
            },
        ];
        let _ = run_tree(
            &pf,
            SpeedModel::Fixed,
            &FailureModel::none(),
            NetworkModel::Infinite,
            shards,
        );
    }
}
