//! Hierarchical (tree) topology execution: root → sub-masters → workers.
//!
//! The flat engine ([`crate::Engine`]) is the paper's star: one master
//! serving every worker. This module composes it into a two-level tree:
//! the caller statically partitions the task grid into one shard per
//! sub-master (the top-level split; `hetsched-core` derives it from the
//! optimal static column partition), and `run_tree` runs one *unchanged*
//! flat engine per shard over that sub-master's contiguous slice of the
//! workers. The root only ships each shard's input blocks to its
//! sub-master once, up front; that inter-tier transfer is priced through
//! [`NetState`] under the run's network model, and a shard's clock starts
//! when its inputs arrive.
//!
//! **Identity guarantee:** with a single sub-master the tree collapses to
//! the flat engine bit for bit — same platform borrow, same RNG stream,
//! no tier transfers — so every flat golden keeps holding under
//! `Topology::Tree { submasters: 1 }`.
//!
//! **Parallel execution.** Shards are independent logical processes: each
//! has its own scheduler, its own RNG stream, its own sliced platform and
//! its own priced link, and the only inter-shard coupling — the root
//! tier's input shipment — is resolved *before* any shard runs (the
//! lookahead of a conservative parallel discrete-event simulation, here
//! the full shipment schedule since shards never communicate mid-run).
//! [`run_tree_with`] therefore runs shard engines on
//! [`TreeOpts::threads`] crossbeam-scoped threads and merges reports in
//! shard order, so results are **bit-identical at any thread count**.

use crate::engine::{Engine, SimReport};
use crate::metrics::CommLedger;
use crate::probe::{ProbeConfig, Recorder};
use crate::scheduler::Scheduler;
use crate::sink::StreamingSink;
use crate::trace::{Trace, TraceEvent};
use hetsched_net::{NetState, NetworkModel};
use hetsched_platform::{FailureModel, Platform, ProcId, SpeedModel};
use rand::rngs::StdRng;

/// One sub-master's share of a tree run: a flat scheduler over a
/// contiguous slice of the workers, plus the volume the root must ship it
/// before it can start.
///
/// The scheduler is index-local: its worker `ProcId(0)` is the global
/// worker `start`, and its task ids live in the shard's own `0..len` grid.
#[derive(Debug)]
pub struct ShardSpec<S> {
    /// The shard's flat strategy, already sized to the shard's task grid.
    pub scheduler: S,
    /// First global worker index served by this sub-master.
    pub start: usize,
    /// Number of (contiguous) workers served by this sub-master.
    pub len: usize,
    /// Blocks the root ships to the sub-master at `t = 0` (the shard's
    /// input footprint). Ignored — and free — with a single sub-master.
    pub input_blocks: u64,
    /// The shard's private run RNG. With a single sub-master this must be
    /// the flat run stream for bit-identity; with several, each shard gets
    /// its own derived stream.
    pub rng: StdRng,
}

/// Execution knobs for a tree run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeOpts {
    /// Worker threads for the shard engines. `None` (the default) runs
    /// shards serially on the caller's thread — tree runs usually sit
    /// inside an already-parallel trial sweep, where extra threads would
    /// oversubscribe the machine. `Some(t)` fans the shards across `t`
    /// crossbeam-scoped threads; results are bit-identical for every
    /// value because shards are merged in shard order, never in
    /// completion order.
    pub threads: Option<usize>,
}

/// Merged outcome of a tree run.
#[derive(Clone, Debug)]
pub struct TreeOutcome {
    /// Global report: per-worker ledger in global indices, makespan over
    /// the whole tree, `total_blocks` = worker volume + tier volume.
    pub report: SimReport,
    /// When each shard's inputs arrived (its local clock's origin on the
    /// global clock). All zeros with one sub-master or a free network.
    pub shard_starts: Vec<f64>,
    /// Each shard's local makespan (its sub-master's view).
    pub shard_makespans: Vec<f64>,
}

/// Runs one flat engine per shard and merges the results.
///
/// Shards must tile the platform contiguously: `start` values in order,
/// each `len ≥ 1`, jointly covering `0..platform.len()`.
///
/// With `shards.len() == 1` this is *exactly* the flat
/// `run_configured` path (same platform borrow, no tier pricing). With
/// more, the root first ships every shard's `input_blocks` over its own
/// [`NetState`] (one link per sub-master, latency = mean of the shard's
/// worker latencies, sends issued in shard order at `t = 0`); each shard
/// then runs on a sliced sub-platform with its failure scenario re-indexed
/// and shifted onto the shard's local clock.
///
/// # Panics
///
/// On a non-contiguous shard layout, an invalid network model, or a
/// failure scenario that kills *every* worker of some shard (each shard
/// needs a survivor, exactly like a flat platform).
pub fn run_tree<S: Scheduler + Send>(
    platform: &Platform,
    model: SpeedModel,
    failures: &FailureModel,
    network: NetworkModel,
    shards: Vec<ShardSpec<S>>,
) -> (TreeOutcome, Vec<S>) {
    run_tree_with(
        platform,
        model,
        failures,
        network,
        shards,
        TreeOpts::default(),
        None::<&mut Recorder>,
    )
}

/// [`run_tree`] with execution knobs and an optional [`Recorder`].
///
/// With a single shard the caller's recorder is handed straight to the
/// flat engine — full trace *and* probe support, bit-identical to a flat
/// recorded run. With several shards each engine records its own
/// shard-local trace (probes stay off: a probe sample is a per-worker
/// column snapshot sized to one engine's worker count, and samples from
/// shards of different widths do not merge soundly); the shard traces are
/// then re-indexed onto global worker ids, shifted onto the global clock
/// by the shard's input-arrival time, merged by a stable sort on event
/// time (ties keep shard order) and pushed through `rec`'s normal event
/// path, so streaming sinks see the same chunked flushes as a flat run.
/// The merged trace is identical for every `opts.threads` value.
pub fn run_tree_with<S: Scheduler + Send, K: StreamingSink>(
    platform: &Platform,
    model: SpeedModel,
    failures: &FailureModel,
    network: NetworkModel,
    shards: Vec<ShardSpec<S>>,
    opts: TreeOpts,
    mut rec: Option<&mut Recorder<K>>,
) -> (TreeOutcome, Vec<S>) {
    let p = platform.len();
    assert!(!shards.is_empty(), "tree run needs at least one shard");
    let mut cursor = 0usize;
    for (j, s) in shards.iter().enumerate() {
        assert_eq!(
            s.start, cursor,
            "shard {j} starts at worker {} but the previous shard ends at {cursor}",
            s.start
        );
        assert!(s.len >= 1, "shard {j} has no workers");
        cursor += s.len;
    }
    assert_eq!(cursor, p, "shards cover {cursor} workers, platform has {p}");

    if shards.len() == 1 {
        // Single sub-master: the tree *is* the flat run. Use the caller's
        // platform borrow and RNG directly so results are bit-for-bit
        // identical to the flat engine — no slicing, no tier transfers.
        let mut shard = shards.into_iter().next().expect("one shard");
        let engine = Engine::new(platform, model, shard.scheduler)
            .with_failures(failures)
            .with_network(network);
        let (report, scheduler) = match rec.as_deref_mut() {
            Some(r) => engine.run_recorded(&mut shard.rng, r),
            None => engine.run(&mut shard.rng),
        };
        let makespan = report.makespan;
        return (
            TreeOutcome {
                report,
                shard_starts: vec![0.0],
                shard_makespans: vec![makespan],
            },
            vec![scheduler],
        );
    }

    // Root tier: one priced link per sub-master. The tier link's latency is
    // the mean of the shard's worker latencies (the sub-master sits "in the
    // middle" of its workers); bandwidth is the model's uniform pricing.
    let latencies = platform.link_latencies();
    let tier_latency: Vec<f64> = shards
        .iter()
        .map(|s| latencies[s.start..s.start + s.len].iter().sum::<f64>() / s.len as f64)
        .collect();
    let mut tier = NetState::new(network, shards.len(), tier_latency);
    let mut tier_blocks = 0u64;
    let shard_starts: Vec<f64> = shards
        .iter()
        .enumerate()
        .map(|(j, s)| {
            tier_blocks += s.input_blocks;
            tier.send(ProcId(j as u32), s.input_blocks, 0.0).arrival
        })
        .collect();

    // Shard spans survive the move of `shards` into the parallel map (the
    // trace merge needs each shard's global worker offset afterwards).
    let spans: Vec<(usize, usize)> = shards.iter().map(|s| (s.start, s.len)).collect();
    let want_trace = rec.is_some();

    // Every shard's inputs are already scheduled (`shard_starts` above), so
    // the shard bodies share nothing mutable: each builds its sliced
    // platform, re-indexes its failures, and runs its own flat engine.
    // `shard_parallel_map` returns results in shard order whatever thread
    // ran them, which is the whole determinism argument.
    let results = shard_parallel_map(shards, opts.threads, |j, mut shard| {
        let range = shard.start..shard.start + shard.len;
        let mut sub_pf = Platform::from_speeds(platform.speeds()[range.clone()].to_vec())
            .with_link_latencies(latencies[range.clone()].to_vec());
        if let Some(bws) = platform.link_bandwidths() {
            sub_pf = sub_pf.with_link_bandwidths(bws[range.clone()].to_vec());
        }

        // Re-index the failure scenario onto the shard and shift fail-stop
        // times onto the shard's local clock (which starts when its inputs
        // arrive). A global failure before the shard even starts becomes a
        // death at local t = 0.
        let mut sub_failures = FailureModel::none();
        for &(k, t) in failures.failures() {
            if range.contains(&k.idx()) {
                sub_failures = sub_failures.fail_at(
                    ProcId((k.idx() - shard.start) as u32),
                    (t - shard_starts[j]).max(0.0),
                );
            }
        }
        for &(k, f) in failures.stragglers() {
            if range.contains(&k.idx()) {
                sub_failures = sub_failures.slow_down(ProcId((k.idx() - shard.start) as u32), f);
            }
        }

        let engine = Engine::new(&sub_pf, model, shard.scheduler)
            .with_failures(&sub_failures)
            .with_network(network);
        if want_trace {
            // Shard-local trace only; probes are merged-unsound across
            // shards of different widths, so they stay disabled here.
            let mut shard_rec = Recorder::new(ProbeConfig::disabled());
            let (report, scheduler) = engine.run_recorded(&mut shard.rng, &mut shard_rec);
            (report, scheduler, Some(shard_rec.into_trace()))
        } else {
            let (report, scheduler) = engine.run(&mut shard.rng);
            (report, scheduler, None)
        }
    });

    let mut ledger = CommLedger::new(p);
    let mut makespan = 0.0f64;
    let mut lost_tasks = 0;
    let mut reshipped_blocks = 0;
    let mut wasted_blocks = 0;
    let mut max_queue_depth = 0usize;
    let mut shard_makespans = Vec::with_capacity(results.len());
    let mut schedulers = Vec::with_capacity(results.len());
    let mut traces: Vec<Option<Trace>> = Vec::with_capacity(results.len());

    for (j, (report, scheduler, trace)) in results.into_iter().enumerate() {
        ledger.absorb_at(spans[j].0, &report.ledger);
        makespan = makespan.max(shard_starts[j] + report.makespan);
        lost_tasks += report.lost_tasks;
        reshipped_blocks += report.reshipped_blocks;
        wasted_blocks += report.wasted_blocks;
        max_queue_depth = max_queue_depth.max(report.max_queue_depth);
        shard_makespans.push(report.makespan);
        traces.push(trace);
        schedulers.push((report.link_utilization, scheduler));
    }

    // A shard reports its link utilization over its *local* makespan; the
    // merged figure must use the global clock, like a flat run would.
    // busy_j = util_j · local_makespan_j, so the renormalized utilization
    // of shard j's link is busy_j / global_makespan.
    let mut link_utilization = 0.0f64;
    if makespan > 0.0 {
        for (j, &(local_util, _)) in schedulers.iter().enumerate() {
            link_utilization = link_utilization.max(local_util * shard_makespans[j] / makespan);
        }
    }
    let schedulers: Vec<S> = schedulers.into_iter().map(|(_, s)| s).collect();

    link_utilization = link_utilization.max(tier.utilization(makespan));
    max_queue_depth = max_queue_depth.max(tier.max_queue_depth());
    let total_blocks = ledger.total_blocks() + tier_blocks;
    let ledger_returned = ledger.total_returned_blocks();

    if let Some(r) = rec {
        // Merge the shard traces onto the global clock and worker ids.
        // The sort is stable and keyed on time only, so simultaneous
        // events keep shard order — independent of which thread ran what.
        let mut events: Vec<TraceEvent> = Vec::new();
        for (j, trace) in traces.into_iter().enumerate() {
            let trace = trace.expect("shard trace recorded");
            events.reserve(trace.len());
            for &ev in trace.events() {
                let mut ev = ev;
                ev.time += shard_starts[j];
                ev.proc = ProcId((ev.proc.idx() + spans[j].0) as u32);
                events.push(ev);
            }
        }
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        r.reserve_events(events.len(), p);
        r.absorb_events(events);
    }

    (
        TreeOutcome {
            report: SimReport {
                ledger,
                makespan,
                total_blocks,
                lost_tasks,
                reshipped_blocks,
                link_utilization,
                max_queue_depth,
                wasted_blocks,
                tier_blocks,
                returned_blocks: ledger_returned,
            },
            shard_starts,
            shard_makespans,
        },
        schedulers,
    )
}

/// Maps owned shards to results, preserving input order in the output.
///
/// With `threads` ≤ 1 (or a single item) this is a plain serial loop on the
/// caller's thread. Otherwise the items are split into contiguous chunks
/// across `threads` crossbeam-scoped threads; each thread writes into its
/// own slice of the result vector, so the collected order is the input
/// order no matter how the threads interleave. This mirrors the sweep-level
/// `parallel_map` in `hetsched-core`, but takes items by value — a shard's
/// scheduler and RNG move into the engine that runs it.
fn shard_parallel_map<T: Send, R: Send>(
    items: Vec<T>,
    threads: Option<usize>,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = threads.unwrap_or(1).clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk_len = n.div_ceil(threads);
    let f = &f;
    crossbeam::thread::scope(|scope| {
        for (t, (in_chunk, out_chunk)) in items
            .chunks_mut(chunk_len)
            .zip(slots.chunks_mut(chunk_len))
            .enumerate()
        {
            let base = t * chunk_len;
            scope.spawn(move |_| {
                for (off, (item, slot)) in in_chunk.iter_mut().zip(out_chunk.iter_mut()).enumerate()
                {
                    *slot = Some(f(base + off, item.take().expect("item present")));
                }
            });
        }
    })
    .expect("tree shard worker panicked");
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Allocation;
    use hetsched_util::rng::rng_for;

    /// Toy shard strategy: hands out single tasks, one block each.
    struct Pool {
        remaining: usize,
        total: usize,
    }

    fn pool(total: usize) -> Pool {
        Pool {
            remaining: total,
            total,
        }
    }

    impl Scheduler for Pool {
        fn on_request(&mut self, _k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            if self.remaining == 0 {
                return Allocation::DONE;
            }
            self.remaining -= 1;
            out.push(self.remaining as u32);
            Allocation {
                tasks: 1,
                blocks: 1,
            }
        }
        fn on_tasks_lost(&mut self, ids: &[u32]) {
            self.remaining += ids.len();
        }
        fn remaining(&self) -> usize {
            self.remaining
        }
        fn total_tasks(&self) -> usize {
            self.total
        }
        fn name(&self) -> &'static str {
            "Pool"
        }
    }

    #[test]
    fn single_shard_is_bit_identical_to_flat() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let (flat, _) = crate::run(&pf, SpeedModel::Fixed, pool(300), &mut rng_for(3, 0x22));
        let shards = vec![ShardSpec {
            scheduler: pool(300),
            start: 0,
            len: 3,
            input_blocks: 999, // ignored with one shard
            rng: rng_for(3, 0x22),
        }];
        let (tree, _) = run_tree(
            &pf,
            SpeedModel::Fixed,
            &FailureModel::none(),
            NetworkModel::Infinite,
            shards,
        );
        assert_eq!(tree.report.makespan, flat.makespan);
        assert_eq!(tree.report.total_blocks, flat.total_blocks);
        assert_eq!(
            tree.report.ledger.tasks_per_proc(),
            flat.ledger.tasks_per_proc()
        );
        assert_eq!(tree.report.tier_blocks, 0);
        assert_eq!(tree.shard_starts, vec![0.0]);
    }

    #[test]
    fn two_shards_merge_into_global_indices() {
        let pf = Platform::from_speeds(vec![10.0, 10.0, 20.0, 20.0]);
        let shards = vec![
            ShardSpec {
                scheduler: pool(100),
                start: 0,
                len: 2,
                input_blocks: 10,
                rng: rng_for(7, 0),
            },
            ShardSpec {
                scheduler: pool(200),
                start: 2,
                len: 2,
                input_blocks: 20,
                rng: rng_for(7, 1),
            },
        ];
        let (tree, scheds) = run_tree(
            &pf,
            SpeedModel::Fixed,
            &FailureModel::none(),
            NetworkModel::Infinite,
            shards,
        );
        assert_eq!(scheds.len(), 2);
        let tasks = tree.report.ledger.tasks_per_proc();
        assert_eq!(tasks[0] + tasks[1], 100, "shard 0 on workers 0..2");
        assert_eq!(tasks[2] + tasks[3], 200, "shard 1 on workers 2..4");
        assert_eq!(tree.report.tier_blocks, 30);
        assert_eq!(tree.report.total_blocks, 300 + 30);
        // Free network: both shards start at t = 0 and the makespan is the
        // slower shard's local makespan.
        assert_eq!(tree.shard_starts, vec![0.0, 0.0]);
        assert_eq!(
            tree.report.makespan,
            tree.shard_makespans[0].max(tree.shard_makespans[1])
        );
    }

    #[test]
    fn one_port_tier_serializes_shard_starts() {
        let pf = Platform::homogeneous(4);
        let net = NetworkModel::OnePort { master_bw: 10.0 };
        let shards = vec![
            ShardSpec {
                scheduler: pool(50),
                start: 0,
                len: 2,
                input_blocks: 40,
                rng: rng_for(8, 0),
            },
            ShardSpec {
                scheduler: pool(50),
                start: 2,
                len: 2,
                input_blocks: 40,
                rng: rng_for(8, 1),
            },
        ];
        let (tree, _) = run_tree(&pf, SpeedModel::Fixed, &FailureModel::none(), net, shards);
        // The root's single channel ships shard 0's inputs (4 time units)
        // before shard 1's even start.
        assert_eq!(tree.shard_starts[0], 4.0);
        assert_eq!(tree.shard_starts[1], 8.0);
        assert!(tree.report.makespan >= 8.0);
        assert_eq!(tree.report.tier_blocks, 80);
    }

    #[test]
    fn shard_failures_are_reindexed_and_shifted() {
        let pf = Platform::from_speeds(vec![10.0, 10.0, 10.0, 10.0]);
        // Global worker 2 = shard 1's local worker 0 dies at t = 2.0.
        let failures = FailureModel::none().fail_at(ProcId(2), 2.0);
        let shards = vec![
            ShardSpec {
                scheduler: pool(60),
                start: 0,
                len: 2,
                input_blocks: 0,
                rng: rng_for(9, 0),
            },
            ShardSpec {
                scheduler: pool(60),
                start: 2,
                len: 2,
                input_blocks: 0,
                rng: rng_for(9, 1),
            },
        ];
        let (tree, _) = run_tree(
            &pf,
            SpeedModel::Fixed,
            &failures,
            NetworkModel::Infinite,
            shards,
        );
        assert!(tree.report.lost_tasks > 0, "the death lands mid-batch");
        assert_eq!(
            tree.report.ledger.lost_per_proc()[2],
            tree.report.lost_tasks
        );
        assert_eq!(tree.report.ledger.total_tasks(), 120, "all work completes");
        // The survivor of shard 1 (global worker 3) finishes the shard.
        assert!(tree.report.ledger.tasks_per_proc()[3] > 30);
    }

    #[test]
    fn link_utilization_is_renormalized_over_the_global_makespan() {
        // Two single-worker shards on a priced network, no tier traffic
        // (zero input blocks on zero-latency links → both shards start at
        // t = 0 and the tier link stays idle). Each shard is then exactly
        // a one-worker flat run, so the flat engine is the oracle for the
        // per-shard (local) utilizations and makespans.
        let net = NetworkModel::OnePort { master_bw: 5.0 };
        let (fast, _) = crate::run_configured(
            &Platform::from_speeds(vec![100.0]),
            SpeedModel::Fixed,
            pool(40),
            &FailureModel::none(),
            net,
            &mut rng_for(5, 0),
        );
        let (slow, _) = crate::run_configured(
            &Platform::from_speeds(vec![10.0]),
            SpeedModel::Fixed,
            pool(40),
            &FailureModel::none(),
            net,
            &mut rng_for(5, 1),
        );

        let pf = Platform::from_speeds(vec![100.0, 10.0]);
        let shards = vec![
            ShardSpec {
                scheduler: pool(40),
                start: 0,
                len: 1,
                input_blocks: 0,
                rng: rng_for(5, 0),
            },
            ShardSpec {
                scheduler: pool(40),
                start: 1,
                len: 1,
                input_blocks: 0,
                rng: rng_for(5, 1),
            },
        ];
        let (tree, _) = run_tree(&pf, SpeedModel::Fixed, &FailureModel::none(), net, shards);

        let mk = fast.makespan.max(slow.makespan);
        assert_eq!(tree.report.makespan.to_bits(), mk.to_bits());
        // Each shard's busy time (util · local makespan) re-expressed over
        // the global makespan — NOT the raw max of the local utilizations,
        // whose denominators differ.
        let expected = (fast.link_utilization * fast.makespan / mk)
            .max(slow.link_utilization * slow.makespan / mk);
        assert_eq!(tree.report.link_utilization.to_bits(), expected.to_bits());
        assert!(
            tree.report.link_utilization < fast.link_utilization.max(slow.link_utilization),
            "renormalized figure must sit below the raw local max \
             (tree {} vs raw max {})",
            tree.report.link_utilization,
            fast.link_utilization.max(slow.link_utilization)
        );
    }

    #[test]
    fn tree_runs_are_bit_identical_at_any_thread_count() {
        // Three unevenly-sized shards, priced network, a mid-run death and
        // a straggler: every merge path is exercised. Reports and merged
        // traces must agree bit for bit whatever the thread count.
        let pf = Platform::from_speeds(vec![10.0, 25.0, 40.0, 15.0, 30.0, 20.0, 12.0]);
        let net = NetworkModel::OnePort { master_bw: 50.0 };
        let failures = FailureModel::none()
            .fail_at(ProcId(3), 1.5)
            .slow_down(ProcId(5), 2.0);
        let shards = |seed: u64| {
            vec![
                ShardSpec {
                    scheduler: pool(120),
                    start: 0,
                    len: 3,
                    input_blocks: 30,
                    rng: rng_for(seed, 0),
                },
                ShardSpec {
                    scheduler: pool(80),
                    start: 3,
                    len: 2,
                    input_blocks: 20,
                    rng: rng_for(seed, 1),
                },
                ShardSpec {
                    scheduler: pool(60),
                    start: 5,
                    len: 2,
                    input_blocks: 15,
                    rng: rng_for(seed, 2),
                },
            ]
        };
        let run_at = |threads: Option<usize>| {
            let mut rec = Recorder::new(ProbeConfig::disabled());
            let (tree, _) = run_tree_with(
                &pf,
                SpeedModel::Fixed,
                &failures,
                net,
                shards(0xA11),
                TreeOpts { threads },
                Some(&mut rec),
            );
            (tree, rec.into_trace())
        };

        let (base, base_trace) = run_at(None);
        assert!(!base_trace.is_empty(), "recorded tree run produced a trace");
        for threads in [Some(1), Some(2), Some(3), Some(8)] {
            let (tree, trace) = run_at(threads);
            assert_eq!(
                tree.report.makespan.to_bits(),
                base.report.makespan.to_bits(),
                "makespan at {threads:?}"
            );
            assert_eq!(
                tree.report.link_utilization.to_bits(),
                base.report.link_utilization.to_bits(),
                "utilization at {threads:?}"
            );
            assert_eq!(tree.report.total_blocks, base.report.total_blocks);
            assert_eq!(tree.report.lost_tasks, base.report.lost_tasks);
            assert_eq!(
                tree.report.ledger.tasks_per_proc(),
                base.report.ledger.tasks_per_proc()
            );
            assert_eq!(tree.shard_starts, base.shard_starts);
            assert_eq!(
                trace.events(),
                base_trace.events(),
                "merged trace at {threads:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "starts at worker")]
    fn non_contiguous_shards_rejected() {
        let pf = Platform::homogeneous(4);
        let shards = vec![
            ShardSpec {
                scheduler: pool(1),
                start: 0,
                len: 1,
                input_blocks: 0,
                rng: rng_for(0, 0),
            },
            ShardSpec {
                scheduler: pool(1),
                start: 2,
                len: 2,
                input_blocks: 0,
                rng: rng_for(0, 1),
            },
        ];
        let _ = run_tree(
            &pf,
            SpeedModel::Fixed,
            &FailureModel::none(),
            NetworkModel::Infinite,
            shards,
        );
    }
}
