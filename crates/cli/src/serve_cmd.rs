//! Service-mode subcommands: `serve` runs the daemon, `submit`/`status`/
//! `logs`/`drain` talk to one over its Unix socket.
//!
//! Job specs are whitespace-separated `key=value` tokens (see
//! [`hetsched_core::parse_job_spec`]) rather than `--flag value` pairs, so
//! a whole experiment rides in one positional string:
//! `hetsched submit n=64 p=16 net=one-port bandwidth=4`.

use crate::args::Args;
use hetsched_serve::client;
use hetsched_serve::proto::{f64_field, str_field, u64_field};
use hetsched_serve::{serve, Policy, ServeOpts};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn wfmt(e: std::fmt::Error) -> String {
    format!("internal: failed to format command output: {e}")
}

fn socket_path(args: &Args) -> PathBuf {
    PathBuf::from(args.get("socket").unwrap_or("hetsched.sock"))
}

/// Sends one request and unwraps the `ok` envelope into `Ok(reply)` /
/// `Err(error message)`.
fn ask(socket: &Path, payload: &str) -> Result<String, String> {
    let reply = client::request(socket, payload).map_err(|e| {
        format!(
            "cannot reach daemon at {:?}: {e} (is `hetsched serve` running?)",
            socket.display()
        )
    })?;
    if reply.contains(r#""ok":true"#) {
        Ok(reply)
    } else {
        Err(str_field(&reply, "error").unwrap_or_else(|| format!("daemon refused: {reply}")))
    }
}

pub fn serve_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&[
        "socket",
        "log",
        "results-dir",
        "policy",
        "workers",
        "lease-ttl",
        "max-retries",
        "store",
        "compact-threshold",
    ])?;
    let policy =
        Policy::parse(args.get("policy").unwrap_or("fifo")).map_err(|e| format!("--{e}"))?;
    let workers: usize = args.get_or("workers", 2)?;
    if workers == 0 {
        return Err("--workers: need at least 1 worker, got 0".into());
    }
    let lease_ttl: f64 = args.get_or("lease-ttl", 300.0)?;
    if !lease_ttl.is_finite() || lease_ttl <= 0.0 {
        return Err(format!("--lease-ttl: must be > 0 seconds, got {lease_ttl}"));
    }
    let opts = ServeOpts {
        socket: socket_path(args),
        log: PathBuf::from(args.get("log").unwrap_or("hetsched-events.jsonl")),
        results_dir: PathBuf::from(args.get("results-dir").unwrap_or("hetsched-results")),
        policy,
        workers,
        lease_ttl: Duration::from_secs_f64(lease_ttl),
        max_retries: args.get_or("max-retries", 2)?,
        store: args.get("store").map(PathBuf::from),
        compact_threshold: args.get_or("compact-threshold", 64)?,
    };
    let socket = opts.socket.clone();
    serve(opts).map_err(|e| format!("serve: {e}"))?;
    Ok(format!(
        "daemon drained and shut down (socket {} removed)\n",
        socket.display()
    ))
}

pub fn submit_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["socket"])?;
    let spec = args.positionals()[1..].join(" ");
    if spec.is_empty() {
        return Err(
            "submit needs a job spec: hetsched submit [--socket PATH] key=value … \
             (e.g. `hetsched submit n=64 p=16 trials=5`)"
                .into(),
        );
    }
    // Parse locally first: a malformed spec should fail fast with the
    // same message whether or not a daemon is listening.
    hetsched_core::parse_job_spec(&spec)?;
    let socket = socket_path(args);
    let payload = format!(
        r#"{{"cmd":"submit","spec":"{}"}}"#,
        hetsched_core::provenance::json_escape(&spec)
    );
    let reply = ask(&socket, &payload)?;
    let job = u64_field(&reply, "job").ok_or("daemon reply missing job id")?;
    let predicted = f64_field(&reply, "predicted").unwrap_or(f64::NAN);
    Ok(format!(
        "submitted job {job} (predicted makespan bound {predicted:.3})\n"
    ))
}

pub fn status_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["socket"])?;
    let reply = ask(&socket_path(args), r#"{"cmd":"status"}"#)?;
    let mut out = String::new();
    writeln!(
        out,
        "policy {}, draining: {}",
        str_field(&reply, "policy").unwrap_or_default(),
        reply.contains(r#""draining":true"#),
    )
    .map_err(wfmt)?;
    writeln!(
        out,
        "queued {}  leased {}  done {}  failed {}",
        u64_field(&reply, "queued").unwrap_or(0),
        u64_field(&reply, "leased").unwrap_or(0),
        u64_field(&reply, "done").unwrap_or(0),
        u64_field(&reply, "failed").unwrap_or(0),
    )
    .map_err(wfmt)?;
    for job in job_objects(&reply) {
        let id = u64_field(job, "job").unwrap_or(0);
        let name = str_field(job, "name").unwrap_or_default();
        let state = str_field(job, "state").unwrap_or_default();
        write!(out, "job {id:>3}  {name:<12} {state:<7}").map_err(wfmt)?;
        if let Some(makespan) = f64_field(job, "makespan_mean") {
            write!(out, "  makespan {makespan:.3}").map_err(wfmt)?;
        }
        if let Some(error) = str_field(job, "error") {
            write!(out, "  error: {error}").map_err(wfmt)?;
        }
        out.push('\n');
    }
    Ok(out)
}

/// Splits the `"jobs":[{…},{…}]` array of a status reply into its flat
/// per-job objects. The objects contain no nested braces, so scanning
/// for `},{` outside strings reduces to a plain split.
fn job_objects(reply: &str) -> Vec<&str> {
    let Some(start) = reply.find(r#""jobs":["#) else {
        return Vec::new();
    };
    let body = &reply[start + r#""jobs":["#.len()..];
    let Some(end) = body.rfind(']') else {
        return Vec::new();
    };
    let body = &body[..end];
    if body.is_empty() {
        return Vec::new();
    }
    body.split("},{").collect()
}

pub fn logs_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["socket", "tail"])?;
    let tail: u64 = args.get_or("tail", 20)?;
    let reply = ask(
        &socket_path(args),
        &format!(r#"{{"cmd":"logs","tail":{tail}}}"#),
    )?;
    let text = str_field(&reply, "text").unwrap_or_default();
    let total = u64_field(&reply, "total").unwrap_or(0);
    let shown = u64_field(&reply, "shown").unwrap_or(0);
    let mut out = format!("event log: showing {shown} of {total} events\n");
    if !text.is_empty() {
        out.push_str(&text);
        out.push('\n');
    }
    Ok(out)
}

pub fn drain_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["socket"])?;
    let reply = ask(&socket_path(args), r#"{"cmd":"drain"}"#)?;
    Ok(format!(
        "drained: {} done, {} failed; daemon shut down\n",
        u64_field(&reply, "done").unwrap_or(0),
        u64_field(&reply, "failed").unwrap_or(0),
    ))
}
