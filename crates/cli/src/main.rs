//! `hetsched` — the command-line face of the workspace.
//!
//! See `hetsched help` (or [`commands::usage`]) for the command reference.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(argv) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
