//! `hetsched` — the command-line face of the workspace.
//!
//! See `hetsched help` (or [`commands::usage`]) for the command reference.

mod args;
mod commands;
mod serve_cmd;
mod store_cmd;

use std::io::Write as _;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(argv) {
        Ok(out) => {
            let mut stdout = std::io::stdout().lock();
            if let Err(e) = stdout
                .write_all(out.as_bytes())
                .and_then(|()| stdout.flush())
            {
                // A closed pipe (`hetsched … | head`) is a normal way for
                // output to end, not a failure of the command itself.
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    return;
                }
                eprintln!("error: cannot write output: {e}");
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
