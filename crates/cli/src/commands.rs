//! The CLI's subcommands. Each returns its output as a `String` so the
//! unit tests can assert on it; `main` just prints.

use crate::args::Args;
use hetsched_analysis::{MatmulAnalysis, OuterAnalysis};
use hetsched_core::{
    render_trace, run_trials_collected, stream_trace, BetaChoice, ExperimentConfig, Kernel,
    Strategy, Topology, TraceFormat,
};
use hetsched_dag::{cholesky_graph, qr_graph, simulate, Policy};
use hetsched_net::NetworkModel;
use hetsched_partition::optimal_column_partition;
use hetsched_platform::{FailureModel, Platform, ProcId, Scenario, SpeedDistribution};
use hetsched_sim::ProbeConfig;
use hetsched_util::rng::rng_for;
use std::fmt::Write as _;

/// Surfaces a `write!`-into-`String` error (infallible in practice) as a
/// command error instead of a panic, keeping output assembly panic-free.
fn wfmt(e: std::fmt::Error) -> String {
    format!("internal: failed to format command output: {e}")
}

/// Top-level dispatch.
pub fn run(argv: Vec<String>) -> Result<String, String> {
    let args = Args::parse(argv)?;
    let Some(cmd) = args.positionals().first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "simulate" => simulate_cmd(&args),
        "analyze" => analyze_cmd(&args),
        "partition" => partition_cmd(&args),
        "dag" => dag_cmd(&args),
        "figures" => figures_cmd(&args),
        "serve" => crate::serve_cmd::serve_cmd(&args),
        "submit" => crate::serve_cmd::submit_cmd(&args),
        "status" => crate::serve_cmd::status_cmd(&args),
        "logs" => crate::serve_cmd::logs_cmd(&args),
        "drain" => crate::serve_cmd::drain_cmd(&args),
        "query" => crate::store_cmd::query_cmd(&args),
        "stats" => crate::store_cmd::stats_cmd(&args),
        "ingest" => crate::store_cmd::ingest_cmd(&args),
        "compact" => crate::store_cmd::compact_cmd(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// Help text.
pub fn usage() -> String {
    "\
hetsched — dynamic scheduling strategies on heterogeneous platforms
(Beaumont & Marchal, HPDC 2014, reproduced in Rust)

USAGE: hetsched <command> [flags]

COMMANDS
  simulate   run one strategy and report communication/makespan
             --kernel outer|matmul (outer)   --n BLOCKS (100)
             --p WORKERS (20)                --strategy random|sorted|dynamic|two-phase|static (two-phase)
             --beta analytic|homogeneous|FLOAT (analytic)
             --trials N (10)                 --seed S (0xC0FFEE)
             --scenario unif.1|unif.2|set.3|set.5|dyn.5|dyn.20
             --speeds S1,S2,…                (fixed platform; overrides --p)
             --fail K@T,…                    (worker K dies at time T; tasks re-allocated)
             --fail-exp K@MEAN,…             (worker K dies at an Exp(MEAN)-drawn time, seeded per run)
             --straggler K@F,…               (worker K permanently F× slower)
             --net infinite|one-port|multiport (infinite)
             --bandwidth B                   (master link, blocks/unit time; required unless infinite)
             --worker-bw B|B1,B2,…           (worker caps, multiport only; a list is per-worker)
             --latency L                     (per-worker link latency, priced models only)
             --price-returns                 (price C-block write-back on the master link; priced flat nets only)
             --topology flat|tree (flat)     (tree = hierarchical multi-master sharding)
             --submasters K (2)              (sub-masters under --topology tree)
             --threads T                     (run the tree shards on T threads; bit-identical for any T)
             --trace-out PATH                (write the first trial's event trace)
             --trace-format jsonl|chrome     (jsonl; chrome loads in Perfetto)
             --probe-every N                 (sample engine state every N allocations)
             --probe-delta                   (store probe counters as u32 deltas)
             --trace-buffer N                (stream the trace in N-event chunks; bounds memory)
             --store DIR                     (ingest summary/report/probe rows into a trace-analytics store)
             --campaign NAME (default)       (campaign key for --store)
  analyze    query the analytic model (β*, threshold, ratio landscape)
             --kernel outer|matmul (outer)   --n BLOCKS (100)
             --p WORKERS (20)                --speeds S1,S2,…
  partition  static square partition for given speeds (7/4-approximation)
             --speeds S1,S2,… (required)     --n BLOCKS (optional grid)
  dag        schedule a tiled factorization DAG
             --kernel cholesky|qr (cholesky) --t TILES (16)
             --p WORKERS (8)                 --policy random|data-aware|cp|critical-path (data-aware)
             --seed S (1)
  figures    regenerate paper figures / extension experiments
             positional ids (fig1 … fig11, extA … extG) --quick --trials N --seed S
             --trace-out PATH --trace-format jsonl|chrome --probe-every N
             --probe-delta --trace-buffer N
             (trace one representative run alongside the figures)
             --store DIR --campaign NAME (figures)
             (ingest every generated figure point into a trace-analytics store)
  serve      run the scheduler daemon: durable job queue over a Unix socket,
             drained via `hetsched drain`
             --socket PATH (hetsched.sock)   --log PATH (hetsched-events.jsonl)
             --results-dir DIR (hetsched-results)
             --policy fifo|spf|fair (fifo)   --workers N (2)
             --lease-ttl SECS (300)          --max-retries N (2)
             --store DIR                     (ingest each completed job's report into a
                                              trace-analytics store; replay-safe)
             --compact-threshold N (64)      (compact the store between jobs once N small
                                              segments accumulate; 0 disables)
  submit     queue a job on a running daemon; the spec is positional
             `key=value` tokens mirroring the simulate flags, plus
             name=… group=… (fair-share group)
             e.g. `hetsched submit n=64 p=16 net=one-port bandwidth=4`
             --socket PATH (hetsched.sock)
  status     queue depth + per-job state     --socket PATH
  logs       tail the daemon's event log     --socket PATH --tail N (20)
  drain      finish queued jobs, then shut the daemon down  --socket PATH
  query      scan a trace-analytics store (columnar, written by --store)
             --store DIR (required)          --select col1,col2,…
             --where \"kind=report,metric=makespan,value>=1\"  (= != < <= > >=)
             (numeric ranges: value=2..5 half-open, value=2..=5 inclusive)
             --group-by strategy             --agg count,mean(value),p95(value)
             --format csv|jsonl (csv)        --limit N
             --threads T                     (scan chunks on T threads; output is
                                              byte-identical for any T; default all cores)
             columns: campaign run kind strategy metric series config seed
                      worker events remaining blocks tasks queue_depth
                      t value sigma useful link_busy beta
  stats      canned campaign summaries over a store: per-strategy makespan
             distribution, link utilization vs β, probe-overhead trend
             --store DIR (required)          --threads T
  ingest     append artifact files to a store; the type is detected from the
             content: JSONL trace, figure CSV, serve event log, BENCH_*.json
             --store DIR (required)          --campaign NAME (default)
             positional: one or more files
  compact    merge small store segments into full-chunk segments; queries and
             replay dedupe are unchanged, only the file count drops
             --store DIR (required)          --max-segment-rows N (65536)
  help       this text
"
    .to_string()
}

fn parse_strategy(args: &Args) -> Result<Strategy, String> {
    let beta = args.get("beta").unwrap_or("analytic");
    let choice = match beta {
        "analytic" => BetaChoice::Analytic,
        "homogeneous" | "hom" => BetaChoice::Homogeneous,
        v => BetaChoice::Fixed(
            v.parse()
                .map_err(|_| format!("--beta: expected analytic|homogeneous|FLOAT, got {v:?}"))?,
        ),
    };
    match args.get("strategy").unwrap_or("two-phase") {
        "random" => Ok(Strategy::Random),
        "sorted" => Ok(Strategy::Sorted),
        "dynamic" => Ok(Strategy::Dynamic),
        "two-phase" | "2phase" | "two_phase" => Ok(Strategy::TwoPhase(choice)),
        "static" => Ok(Strategy::Static),
        other => Err(format!(
            "--strategy: expected random|sorted|dynamic|two-phase|static, got {other:?}"
        )),
    }
}

fn parse_scenario(name: &str) -> Result<Scenario, String> {
    Scenario::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or(format!(
            "--scenario: expected one of unif.1, unif.2, set.3, set.5, dyn.5, dyn.20; got {name:?}"
        ))
}

/// Parses a `--fail`/`--straggler` list: comma-separated `WORKER@VALUE`
/// pairs, e.g. `0@1.5,3@2.0`.
fn parse_worker_value_list(args: &Args, key: &str) -> Result<Vec<(usize, f64)>, String> {
    let Some(spec) = args.get(key) else {
        return Ok(Vec::new());
    };
    spec.split(',')
        .map(|item| {
            let (w, v) = item
                .trim()
                .split_once('@')
                .ok_or(format!("--{key}: expected WORKER@VALUE, got {item:?}"))?;
            let worker: usize = w
                .parse()
                .map_err(|_| format!("--{key}: bad worker index {w:?}"))?;
            let value: f64 = v.parse().map_err(|_| format!("--{key}: bad value {v:?}"))?;
            Ok((worker, value))
        })
        .collect()
}

fn parse_failures(args: &Args) -> Result<FailureModel, String> {
    let mut failures = FailureModel::none();
    for (worker, time) in parse_worker_value_list(args, "fail")? {
        if !time.is_finite() || time < 0.0 {
            return Err(format!("--fail: failure time must be ≥ 0, got {time}"));
        }
        failures = failures.fail_at(ProcId(worker as u32), time);
    }
    for (worker, mean) in parse_worker_value_list(args, "fail-exp")? {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!(
                "--fail-exp: mean failure time must be > 0, got {mean}"
            ));
        }
        failures = failures.fail_exponential(ProcId(worker as u32), mean);
    }
    for (worker, factor) in parse_worker_value_list(args, "straggler")? {
        if !factor.is_finite() || factor < 1.0 {
            return Err(format!("--straggler: factor must be ≥ 1, got {factor}"));
        }
        failures = failures.slow_down(ProcId(worker as u32), factor);
    }
    Ok(failures)
}

/// Parses `--net`/`--bandwidth`/`--worker-bw`/`--latency` into a network
/// model, a uniform link latency, and (when `--worker-bw` was a list) the
/// per-worker bandwidth caps.
fn parse_network(args: &Args) -> Result<(NetworkModel, f64, Option<Vec<f64>>), String> {
    let bandwidth: Option<f64> = match args.get("bandwidth") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--bandwidth: bad number {v:?}"))?,
        ),
        None => None,
    };
    // `--worker-bw B` keeps the uniform cap; `--worker-bw B1,B2,…` prices
    // each worker's link individually (the model's nominal cap becomes the
    // list maximum — per-link pricing takes over from there).
    let worker_bws = args.get_f64_list("worker-bw")?;
    let (worker_bw, per_worker): (Option<f64>, Option<Vec<f64>>) = match worker_bws {
        None => (None, None),
        Some(bws) if bws.len() == 1 => (Some(bws[0]), None),
        Some(bws) => {
            if bws.iter().any(|b| !b.is_finite() || *b <= 0.0) {
                return Err("--worker-bw: bandwidths must be positive and finite".into());
            }
            let max = bws.iter().cloned().fold(f64::MIN, f64::max);
            (Some(max), Some(bws))
        }
    };
    let latency: f64 = match args.get("latency") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--latency: bad number {v:?}"))?,
        None => 0.0,
    };
    let net = match args.get("net").unwrap_or("infinite") {
        "infinite" => {
            if bandwidth.is_some() || worker_bw.is_some() || latency != 0.0 {
                return Err(
                    "--bandwidth/--worker-bw/--latency only apply to priced models; \
                     pass --net one-port or --net multiport"
                        .into(),
                );
            }
            NetworkModel::Infinite
        }
        "one-port" | "oneport" | "1port" => {
            if worker_bw.is_some() {
                return Err("--worker-bw only applies to --net multiport".into());
            }
            NetworkModel::OnePort {
                master_bw: bandwidth.ok_or("--net one-port needs --bandwidth B")?,
            }
        }
        "multiport" => NetworkModel::BoundedMultiport {
            master_bw: bandwidth.ok_or("--net multiport needs --bandwidth B")?,
            worker_bw: worker_bw.ok_or("--net multiport needs --worker-bw B")?,
        },
        other => {
            return Err(format!(
                "--net: expected infinite|one-port|multiport, got {other:?}"
            ))
        }
    };
    net.validate()?;
    if !latency.is_finite() || latency < 0.0 {
        return Err(format!("--latency: must be ≥ 0, got {latency}"));
    }
    Ok((net, latency, per_worker))
}

/// Parses `--topology`/`--submasters` into a [`Topology`].
fn parse_topology(args: &Args) -> Result<Topology, String> {
    match args.get("topology").unwrap_or("flat") {
        "flat" => {
            if args.get("submasters").is_some() {
                return Err("--submasters only applies to --topology tree".into());
            }
            Ok(Topology::Flat)
        }
        "tree" => {
            let submasters: usize = args.get_or("submasters", 2)?;
            if submasters == 0 {
                return Err("--submasters: need at least 1 sub-master, got 0".into());
            }
            Ok(Topology::Tree { submasters })
        }
        other => Err(format!("--topology: expected flat|tree, got {other:?}")),
    }
}

/// Everything `--trace-out` and its companion flags request.
struct TraceRequest {
    path: String,
    format: TraceFormat,
    probe: ProbeConfig,
    /// `--trace-buffer N`: stream in N-event chunks instead of buffering
    /// the whole trace.
    buffer: Option<usize>,
}

/// Parses `--trace-out`/`--trace-format`/`--probe-every`/`--probe-delta`/
/// `--trace-buffer`. Returns the trace request (`None` when no trace was
/// requested) plus the parsed probe cadence. `--trace-format` and
/// `--trace-buffer` are only legal alongside `--trace-out`; the probe
/// flags additionally make sense with `--store` (probe rows land in the
/// warehouse even when no trace file is written), which the caller
/// signals via `probe_without_trace_ok`.
fn parse_trace_flags(
    args: &Args,
    probe_without_trace_ok: bool,
) -> Result<(Option<TraceRequest>, ProbeConfig), String> {
    let format = match args.get("trace-format") {
        Some(v) => TraceFormat::parse(v).map_err(|e| format!("--trace-format: {e}"))?,
        None => TraceFormat::Jsonl,
    };
    let mut probe = match args.get("probe-every") {
        Some(v) => {
            let every: u64 = v
                .parse()
                .map_err(|_| format!("--probe-every: bad count {v:?}"))?;
            ProbeConfig::by_events(every)
        }
        None => ProbeConfig::disabled(),
    };
    if args.switch("probe-delta") {
        if !probe.is_enabled() {
            return Err("--probe-delta needs a probe cadence (--probe-every N)".into());
        }
        probe = probe.with_delta_encoding();
    }
    let buffer = match args.get("trace-buffer") {
        Some(v) => {
            let chunk: usize = v
                .parse()
                .map_err(|_| format!("--trace-buffer: bad chunk size {v:?}"))?;
            if chunk == 0 {
                return Err("--trace-buffer: chunk size must be ≥ 1".into());
            }
            Some(chunk)
        }
        None => None,
    };
    match args.get("trace-out") {
        Some(path) => Ok((
            Some(TraceRequest {
                path: path.to_string(),
                format,
                probe,
                buffer,
            }),
            probe,
        )),
        None => {
            if args.get("trace-format").is_some() || args.get("trace-buffer").is_some() {
                return Err(
                    "--trace-format/--trace-buffer only apply together with --trace-out PATH"
                        .into(),
                );
            }
            if !probe_without_trace_ok
                && (args.get("probe-every").is_some() || args.switch("probe-delta"))
            {
                return Err(
                    "--probe-every/--probe-delta only apply together with --trace-out PATH \
                     (or --store DIR, which ingests the probe series)"
                        .into(),
                );
            }
            Ok((None, probe))
        }
    }
}

/// Traces one run of `cfg` (the first trial's seed stream) and writes it
/// to `path`. Returns the report line for the command output.
///
/// Without `--trace-buffer` the whole trace is rendered in memory and
/// written at once; with it, events stream to the file in fixed-size
/// chunks and peak trace memory stays O(chunk) however long the run.
/// Both paths produce byte-identical files.
fn write_trace_file(
    cfg: &ExperimentConfig,
    seed: u64,
    req: &TraceRequest,
) -> Result<String, String> {
    let seed = hetsched_core::runner::trial_seed(seed, 0);
    let path = req.path.as_str();
    let fmt_blurb = match req.format {
        TraceFormat::Jsonl => "jsonl: one JSON object per line",
        TraceFormat::Chrome => "chrome: load in Perfetto / chrome://tracing",
    };
    match req.buffer {
        None => {
            let body = render_trace(cfg, seed, req.probe, req.format);
            std::fs::write(path, &body)
                .map_err(|e| format!("--trace-out: cannot write {path:?}: {e}"))?;
            Ok(format!(
                "trace written            : {path} ({} bytes, {fmt_blurb})\n",
                body.len()
            ))
        }
        Some(chunk) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("--trace-out: cannot create {path:?}: {e}"))?;
            let mut out = std::io::BufWriter::new(file);
            let streamed = stream_trace(cfg, seed, req.probe, req.format, chunk, &mut out)
                .map_err(|e| format!("--trace-out: cannot write {path:?}: {e}"))?;
            std::io::Write::flush(&mut out)
                .map_err(|e| format!("--trace-out: cannot write {path:?}: {e}"))?;
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            Ok(format!(
                "trace written            : {path} ({bytes} bytes, {fmt_blurb})\n\
                 trace streaming          : {} events in ≤{chunk}-event chunks \
                 (peak buffered: {})\n",
                streamed.flushed_events, streamed.peak_buffered_events
            ))
        }
    }
}

fn simulate_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&[
        "kernel",
        "n",
        "p",
        "strategy",
        "beta",
        "trials",
        "seed",
        "scenario",
        "speeds",
        "fail",
        "fail-exp",
        "straggler",
        "net",
        "bandwidth",
        "worker-bw",
        "latency",
        "price-returns",
        "topology",
        "submasters",
        "threads",
        "trace-out",
        "trace-format",
        "probe-every",
        "probe-delta",
        "trace-buffer",
        "store",
        "campaign",
    ])?;
    let n: usize = args.get_or("n", 100)?;
    let kernel = match args.get("kernel").unwrap_or("outer") {
        "outer" => Kernel::Outer { n },
        "matmul" => Kernel::Matmul { n },
        other => return Err(format!("--kernel: expected outer|matmul, got {other:?}")),
    };
    let strategy = parse_strategy(args)?;
    let trials: usize = args.get_or("trials", 10)?;
    if trials == 0 {
        return Err("--trials: need at least 1 trial, got 0".into());
    }
    let seed: u64 = args.get_or("seed", 0xC0FFEE)?;

    let mut cfg = ExperimentConfig {
        kernel,
        strategy,
        processors: args.get_or("p", 20)?,
        ..Default::default()
    };
    if let Some(name) = args.get("scenario") {
        let sc = parse_scenario(name)?;
        cfg.distribution = sc.distribution();
        cfg.speed_model = sc.speed_model();
    }
    if let Some(speeds) = args.get_f64_list("speeds")? {
        cfg.processors = speeds.len();
        cfg.platform = Some(Platform::from_speeds(speeds));
    }
    cfg.failures = parse_failures(args)?;
    let (network, latency, per_worker_bw) = parse_network(args)?;
    cfg.network = network;
    cfg.link_latency = latency;
    cfg.link_bandwidths = per_worker_bw;
    cfg.price_returns = args.switch("price-returns");
    cfg.topology = parse_topology(args)?;
    cfg.tree_threads = match args.get("threads") {
        Some(v) => {
            let t: usize = v
                .parse()
                .map_err(|_| format!("--threads: bad count {v:?}"))?;
            if t == 0 {
                return Err("--threads: need at least 1 shard thread, got 0".into());
            }
            if cfg.topology.is_flat() {
                return Err("--threads only applies to --topology tree: it fans the \
                     shard engines across threads (flat trial sweeps are \
                     already parallel)"
                    .into());
            }
            Some(t)
        }
        None => None,
    };
    cfg.validate()?;
    if args.get("campaign").is_some() && args.get("store").is_none() {
        return Err("--campaign only applies together with --store DIR".into());
    }
    let (trace, probe) = parse_trace_flags(args, args.get("store").is_some())?;
    // Probes are flat-only: whether headed for a trace file or the store,
    // a probe sample snapshots ONE engine's per-worker state, and samples
    // from shards of different widths do not merge.
    if probe.is_enabled() && cfg.topology.submasters() > 1 {
        return Err(
            "--probe-every is not supported with multiple sub-masters: a probe \
             sample is a per-worker snapshot of one engine, and samples from \
             shards of different widths do not merge (merging columnar probe \
             series across differently-sized shard engines is an open ROADMAP \
             follow-up); drop --probe-every to record the merged event trace"
                .into(),
        );
    }

    // With explicit shard threads the trial sweep runs serially — the
    // parallelism budget goes to the shards, not multiplied on top of it.
    let sweep_threads = if cfg.tree_threads.is_some() {
        Some(1)
    } else {
        None
    };
    let (results, sum) = run_trials_collected(&cfg, trials, seed, sweep_threads);
    let mut out = String::new();
    writeln!(
        out,
        "{} on {:?}, p = {}, {} tasks, {} trials",
        strategy.label(kernel),
        kernel,
        cfg.processors,
        kernel.total_tasks(),
        trials
    )
    .map_err(wfmt)?;
    if let Topology::Tree { submasters } = cfg.topology {
        let mut line = format!(
            "topology                 : tree, {submasters} sub-masters (column-partitioned shards)"
        );
        if let Some(t) = cfg.tree_threads {
            write!(line, ", {t} shard threads").map_err(wfmt)?;
        }
        writeln!(out, "{line}").map_err(wfmt)?;
    }
    writeln!(
        out,
        "normalized communication : {:.3} ± {:.3}  (1.0 = lower bound)",
        sum.normalized_comm.mean(),
        sum.normalized_comm.std_dev()
    )
    .map_err(wfmt)?;
    writeln!(
        out,
        "total blocks shipped     : {:.0} ± {:.0}",
        sum.total_blocks.mean(),
        sum.total_blocks.std_dev()
    )
    .map_err(wfmt)?;
    writeln!(out, "simulated makespan       : {:.3}", sum.makespan.mean()).map_err(wfmt)?;
    if sum.beta_used.count() > 0 {
        writeln!(
            out,
            "β used                   : {:.4}",
            sum.beta_used.mean()
        )
        .map_err(wfmt)?;
    }
    if !cfg.failures.is_none() {
        writeln!(
            out,
            "tasks lost to failures   : {:.1} (re-shipped {:.1} blocks to recover)",
            sum.lost_tasks.mean(),
            sum.reshipped_blocks.mean()
        )
        .map_err(wfmt)?;
    }
    if !cfg.network.is_infinite() {
        let mut desc = format!(
            "{}, {} blocks/unit time",
            cfg.network.name(),
            cfg.network.master_bw().unwrap_or(f64::INFINITY)
        );
        if cfg.link_latency > 0.0 {
            write!(desc, ", latency {}", cfg.link_latency).map_err(wfmt)?;
        }
        writeln!(out, "network model            : {desc}").map_err(wfmt)?;
        let util = sum.link_utilization.mean();
        writeln!(
            out,
            "master-link utilization  : {:.1}% ± {:.1}%",
            100.0 * util,
            100.0 * sum.link_utilization.std_dev()
        )
        .map_err(wfmt)?;
        writeln!(
            out,
            "worker transfer wait     : {:.3} (summed over workers)",
            sum.transfer_wait.mean()
        )
        .map_err(wfmt)?;
        if cfg.price_returns {
            writeln!(
                out,
                "returned C blocks        : {:.0} (write-back priced on the master link; \
                 not counted in shipped blocks)",
                sum.returned_blocks.mean()
            )
            .map_err(wfmt)?;
        }
        // The one-line diagnosis the sweep in EXPERIMENTS.md elaborates on:
        // a saturated master link means volume, not speed, sets the
        // makespan.
        let regime = if util >= 0.9 {
            "comm-bound — the master link is the bottleneck; lower-volume \
             strategies win makespan here"
        } else if util <= 0.5 {
            "compute-bound — the link is mostly idle; volume barely affects \
             makespan"
        } else {
            "near the crossover between comm-bound and compute-bound"
        };
        writeln!(out, "regime                   : {regime}").map_err(wfmt)?;
        if cfg.price_returns {
            writeln!(
                out,
                "                           (utilization includes C-block write-back: the \
                 link saturates — and the comm-bound regime onsets — at lower input volume \
                 than input-only pricing suggests)"
            )
            .map_err(wfmt)?;
        }
    }
    if let Some(req) = trace {
        out.push_str(&write_trace_file(&cfg, seed, &req)?);
    }
    if let Some(dir) = args.get("store") {
        let campaign = args.get("campaign").unwrap_or("default");
        out.push_str(&crate::store_cmd::simulate_store_ingest(
            dir, campaign, &cfg, seed, trials, &results, &sum, probe,
        )?);
    }
    Ok(out)
}

fn analyze_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["kernel", "n", "p", "speeds"])?;
    let n: usize = args.get_or("n", 100)?;
    let p: usize = args.get_or("p", 20)?;
    let rs: Vec<f64> = match args.get_f64_list("speeds")? {
        Some(speeds) => Platform::from_speeds(speeds).relative_speeds(),
        None => vec![1.0 / p as f64; p],
    };
    let pp = rs.len();

    let mut out = String::new();
    let (kernel_name, beta, ratio, threshold, curve): (_, f64, f64, usize, Vec<(f64, f64)>) =
        match args.get("kernel").unwrap_or("outer") {
            "outer" => {
                let m = OuterAnalysis::from_relative_speeds(rs, n);
                let (b, r) = m.optimal_beta();
                let th = m.phase2_tasks(b) as usize;
                let curve = (2..=16)
                    .map(|i| {
                        let beta = i as f64 * 0.5;
                        (beta, m.ratio(beta))
                    })
                    .collect();
                ("outer product", b, r, th, curve)
            }
            "matmul" => {
                let m = MatmulAnalysis::from_relative_speeds(rs, n);
                let (b, r) = m.optimal_beta();
                let th = m.phase2_tasks(b) as usize;
                let curve = (2..=16)
                    .map(|i| {
                        let beta = i as f64 * 0.5;
                        (beta, m.ratio(beta))
                    })
                    .collect();
                ("matrix multiplication", b, r, th, curve)
            }
            other => return Err(format!("--kernel: expected outer|matmul, got {other:?}")),
        };

    writeln!(out, "analytic model: {kernel_name}, p = {pp}, n = {n}").map_err(wfmt)?;
    writeln!(out, "optimal β                : {beta:.4}").map_err(wfmt)?;
    writeln!(
        out,
        "predicted comm ratio     : {ratio:.4}  (1.0 = lower bound)"
    )
    .map_err(wfmt)?;
    writeln!(out, "switch when tasks remain : {threshold}").map_err(wfmt)?;
    writeln!(out, "\n{:>6}  {:>10}", "β", "ratio").map_err(wfmt)?;
    for (b, r) in curve {
        writeln!(out, "{b:>6.1}  {r:>10.4}").map_err(wfmt)?;
    }
    Ok(out)
}

fn partition_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["speeds", "n"])?;
    let speeds = args
        .get_f64_list("speeds")?
        .ok_or("partition needs --speeds S1,S2,…")?;
    let platform = Platform::from_speeds(speeds);
    let areas = platform.relative_speeds();
    let part = optimal_column_partition(&areas);

    let mut out = String::new();
    writeln!(
        out,
        "column partition: {} rectangles in {} columns",
        part.rects.len(),
        part.columns
    )
    .map_err(wfmt)?;
    writeln!(
        out,
        "half-perimeter cost {:.4}, lower bound {:.4}, ratio {:.4} (≤ 1.75 guaranteed)",
        part.cost,
        hetsched_partition::ColumnPartition::lower_bound(&areas),
        part.approximation_ratio(&areas)
    )
    .map_err(wfmt)?;
    writeln!(
        out,
        "\n{:>6} {:>10} {:>10} {:>10} {:>10}",
        "owner", "x", "y", "w", "h"
    )
    .map_err(wfmt)?;
    for r in &part.rects {
        writeln!(
            out,
            "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            r.owner, r.x, r.y, r.w, r.h
        )
        .map_err(wfmt)?;
    }
    if let Some(n) = args.get("n") {
        let n: usize = n.parse().map_err(|_| "--n: bad number")?;
        let grid = hetsched_partition::GridPartition::from_continuous(&part, n);
        writeln!(
            out,
            "\non the {n}×{n} block grid: {} tasks, {} blocks of static communication",
            grid.total_tasks(),
            grid.total_comm()
        )
        .map_err(wfmt)?;
    }
    Ok(out)
}

fn dag_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["kernel", "t", "p", "policy", "seed"])?;
    let t: usize = args.get_or("t", 16)?;
    let p: usize = args.get_or("p", 8)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let graph = match args.get("kernel").unwrap_or("cholesky") {
        "cholesky" => cholesky_graph(t),
        "qr" => qr_graph(t),
        other => return Err(format!("--kernel: expected cholesky|qr, got {other:?}")),
    };
    let policy = match args.get("policy").unwrap_or("data-aware") {
        "random" => Policy::Random,
        "data-aware" | "dataaware" => Policy::DataAware,
        "cp" | "data-aware-cp" => Policy::DataAwareCp,
        "critical-path" => Policy::CriticalPath,
        other => {
            return Err(format!(
                "--policy: expected random|data-aware|cp|critical-path, got {other:?}"
            ))
        }
    };
    let platform = Platform::sample(
        p,
        &SpeedDistribution::paper_default(),
        &mut rng_for(seed, 0),
    );
    let r = simulate(&graph, &platform, policy, &mut rng_for(seed, 1));

    let mut out = String::new();
    writeln!(
        out,
        "{} on {t}×{t} tiles: {} tasks, critical path {:.2}",
        policy.label(),
        graph.len(),
        graph.critical_path()
    )
    .map_err(wfmt)?;
    writeln!(
        out,
        "blocks shipped  : {} ({:.2}/task)",
        r.total_blocks,
        r.comm_per_task()
    )
    .map_err(wfmt)?;
    writeln!(
        out,
        "makespan        : {:.4} ({:.3}× the max(work, CP) bound)",
        r.makespan,
        r.makespan_ratio(&graph, &platform)
    )
    .map_err(wfmt)?;
    writeln!(out, "tasks per worker: {:?}", r.tasks_per_worker).map_err(wfmt)?;
    Ok(out)
}

fn figures_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&[
        "quick",
        "trials",
        "seed",
        "trace-out",
        "trace-format",
        "probe-every",
        "probe-delta",
        "trace-buffer",
        "store",
        "campaign",
    ])?;
    let mut opts = hetsched_core::figures::FigOpts::paper();
    if args.switch("quick") {
        opts = hetsched_core::figures::FigOpts::quick();
    }
    opts.trials = args.get_or("trials", opts.trials)?;
    if opts.trials == 0 {
        return Err("--trials: need at least 1 trial, got 0".into());
    }
    opts.seed = args.get_or("seed", opts.seed)?;
    if args.get("campaign").is_some() && args.get("store").is_none() {
        return Err("--campaign only applies together with --store DIR".into());
    }
    let (trace, _probe) = parse_trace_flags(args, false)?;

    let ids: Vec<&String> = args.positionals().iter().skip(1).collect();
    if ids.is_empty() {
        return Err("figures: give at least one id (fig1 … fig11, extA … extG)".into());
    }
    let mut out = String::new();
    let mut csvs = Vec::new();
    for id in ids {
        let fig = hetsched_core::figures::by_id(id, &opts)
            .or_else(|| hetsched_core::extensions::by_id(id, &opts))
            .ok_or(format!("unknown figure id {id:?} (fig3 is a schematic)"))?;
        out.push_str(&fig.to_table());
        out.push('\n');
        if args.get("store").is_some() {
            csvs.push(fig.to_csv());
        }
    }
    if let Some(dir) = args.get("store") {
        let campaign = args.get("campaign").unwrap_or("figures");
        out.push_str(&crate::store_cmd::figures_store_ingest(
            dir, campaign, &csvs,
        )?);
    }
    if let Some(req) = trace {
        // One representative run of the paper's default experiment at the
        // figures' scale, so the sweep's tables come with an inspectable
        // schedule.
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer {
                n: if opts.quick { 40 } else { 100 },
            },
            processors: if opts.quick { 8 } else { 20 },
            ..Default::default()
        };
        out.push_str(&write_trace_file(&cfg, opts.seed, &req)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, String> {
        run(s.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_str("help").unwrap().contains("USAGE"));
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(run(vec![]).is_err());
    }

    #[test]
    fn simulate_outer_two_phase() {
        let out = run_str("simulate --n 30 --p 5 --trials 3 --seed 7").unwrap();
        assert!(out.contains("DynamicOuter2Phases"), "{out}");
        assert!(out.contains("normalized communication"));
        assert!(out.contains("β used"));
    }

    #[test]
    fn simulate_with_explicit_speeds_and_static() {
        let out =
            run_str("simulate --strategy static --speeds 10,20,70 --n 40 --trials 2").unwrap();
        assert!(out.contains("StaticOuter"), "{out}");
    }

    #[test]
    fn simulate_scenario_and_matmul() {
        let out = run_str(
            "simulate --kernel matmul --n 10 --p 4 --strategy dynamic --trials 2 --scenario dyn.5",
        )
        .unwrap();
        assert!(out.contains("DynamicMatrix"), "{out}");
        assert!(run_str("simulate --scenario nope").is_err());
        assert!(run_str("simulate --kernel cube").is_err());
        assert!(run_str("simulate --strategy static --kernel matmul --n 8 --p 2").is_err());
    }

    #[test]
    fn simulate_with_failures_and_stragglers() {
        let out =
            run_str("simulate --n 20 --p 4 --strategy random --trials 2 --seed 3 --fail 1@0.5")
                .unwrap();
        assert!(out.contains("tasks lost to failures"), "{out}");
        let out =
            run_str("simulate --n 20 --p 4 --strategy dynamic --trials 2 --straggler 0@4.0,2@2.0")
                .unwrap();
        assert!(out.contains("tasks lost to failures"), "{out}");

        // Bad specs and invalid scenarios are rejected.
        assert!(run_str("simulate --fail 1").is_err());
        assert!(run_str("simulate --fail abc@1.0").is_err());
        assert!(run_str("simulate --straggler 0@0.5").is_err());
        assert!(
            run_str("simulate --p 4 --fail 9@1.0").is_err(),
            "out of range"
        );
        assert!(
            run_str("simulate --strategy static --speeds 10,20 --fail 0@1.0").is_err(),
            "static cannot recover lost tasks"
        );
    }

    #[test]
    fn simulate_with_network_models() {
        let out = run_str(
            "simulate --n 20 --p 4 --strategy dynamic --trials 2 --net one-port --bandwidth 5",
        )
        .unwrap();
        assert!(out.contains("network model"), "{out}");
        assert!(out.contains("one-port"), "{out}");
        assert!(out.contains("master-link utilization"), "{out}");
        assert!(
            out.contains("comm-bound"),
            "tight link must be diagnosed: {out}"
        );

        let out = run_str(
            "simulate --n 20 --p 4 --strategy dynamic --trials 2 --net one-port \
             --bandwidth 100000 --latency 0.01",
        )
        .unwrap();
        assert!(out.contains("compute-bound"), "{out}");

        let out = run_str(
            "simulate --n 20 --p 4 --trials 2 --net multiport --bandwidth 40 --worker-bw 10",
        )
        .unwrap();
        assert!(out.contains("multiport"), "{out}");

        // Default (infinite) prints no network diagnostics.
        let out = run_str("simulate --n 20 --p 4 --trials 2").unwrap();
        assert!(!out.contains("network model"), "{out}");
    }

    #[test]
    fn simulate_tree_topology() {
        let out = run_str(
            "simulate --n 24 --p 6 --strategy dynamic --trials 2 --topology tree --submasters 3",
        )
        .unwrap();
        assert!(out.contains("tree, 3 sub-masters"), "{out}");
        assert!(out.contains("normalized communication"), "{out}");

        // Default sub-master count is 2.
        let out = run_str("simulate --n 24 --p 6 --trials 2 --topology tree").unwrap();
        assert!(out.contains("tree, 2 sub-masters"), "{out}");

        // Flat output is unchanged (no topology line).
        let out = run_str("simulate --n 24 --p 6 --trials 2").unwrap();
        assert!(!out.contains("topology"), "{out}");

        // Tree composes with a priced network.
        let out = run_str(
            "simulate --n 24 --p 6 --strategy random --trials 2 --topology tree \
             --submasters 2 --net one-port --bandwidth 50",
        )
        .unwrap();
        assert!(out.contains("tree, 2 sub-masters"), "{out}");
        assert!(out.contains("master-link utilization"), "{out}");
    }

    #[test]
    fn bad_topology_specs_are_clean_errors() {
        assert!(run_str("simulate --topology ring").is_err());
        assert!(
            run_str("simulate --p 4 --submasters 2").is_err(),
            "--submasters needs --topology tree"
        );
        assert!(
            run_str("simulate --p 4 --topology tree --submasters 9").is_err(),
            "more sub-masters than workers"
        );
        assert!(
            run_str("simulate --p 4 --topology tree --submasters 0").is_err(),
            "need at least one sub-master"
        );
        assert!(
            run_str("simulate --strategy static --topology tree --submasters 2").is_err(),
            "static is flat-only"
        );
        let err = run_str("simulate --p 4 --topology tree --submasters 0").unwrap_err();
        assert!(err.contains("--submasters"), "{err}");
        // Probes are per-engine snapshots and do not merge across shards.
        let err = run_str(
            "simulate --n 20 --p 4 --topology tree --submasters 2 \
             --trace-out /tmp/x.jsonl --probe-every 8",
        )
        .unwrap_err();
        assert!(err.contains("sub-masters"), "{err}");
        // A failure scenario that wipes out one whole shard is a clean
        // error, not an engine panic deep inside the run.
        let err = run_str(
            "simulate --n 20 --p 4 --topology tree --submasters 2 \
             --fail 0@0.0,1@0.0 --trials 1",
        )
        .unwrap_err();
        assert!(err.contains("survivor"), "{err}");
    }

    #[test]
    fn tree_shard_threads_flag() {
        // Bit-identical across thread counts: same summary line for 1/2/4.
        let base = "simulate --n 24 --p 6 --strategy dynamic --trials 2 --topology tree \
                    --submasters 3 --seed 11";
        let serial = run_str(base).unwrap();
        for t in [1, 2, 4] {
            let out = run_str(&format!("{base} --threads {t}")).unwrap();
            assert!(out.contains("tree, 3 sub-masters"), "{out}");
            assert!(out.contains(&format!("{t} shard threads")), "{out}");
            let pick = |s: &str| {
                s.lines()
                    .filter(|l| l.contains("normalized communication") || l.contains("makespan"))
                    .map(String::from)
                    .collect::<Vec<_>>()
            };
            assert_eq!(pick(&out), pick(&serial), "threads {t}");
        }

        assert!(
            run_str("simulate --n 24 --p 6 --trials 2 --threads 2").is_err(),
            "--threads needs --topology tree"
        );
        let err = run_str(&format!("{base} --threads 0")).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn tree_trace_out_writes_merged_trace() {
        let dir = std::env::temp_dir().join("hetsched-cli-tree-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.jsonl");
        let path_s = path.to_str().unwrap();
        let base = format!(
            "simulate --n 24 --p 6 --strategy dynamic --trials 1 --seed 3 \
             --topology tree --submasters 3 --trace-out {path_s}"
        );
        let out = run_str(&base).unwrap();
        assert!(out.contains("trace written"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 10, "trace has events");
        // The merged trace is identical whatever the shard thread count.
        let body_mt = {
            let out = run_str(&format!("{base} --threads 2")).unwrap();
            assert!(out.contains("trace written"), "{out}");
            std::fs::read_to_string(&path).unwrap()
        };
        assert_eq!(body, body_mt, "trace bytes differ across --threads");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn per_worker_bandwidth_lists() {
        let out = run_str(
            "simulate --n 20 --p 4 --trials 2 --net multiport --bandwidth 40 \
             --worker-bw 10,5,20,10",
        )
        .unwrap();
        assert!(out.contains("multiport"), "{out}");

        assert!(
            run_str(
                "simulate --n 20 --p 4 --trials 2 --net multiport --bandwidth 40 \
                 --worker-bw 10,5"
            )
            .is_err(),
            "list length must match the worker count"
        );
        assert!(
            run_str(
                "simulate --n 20 --p 4 --trials 2 --net one-port --bandwidth 40 \
                 --worker-bw 10,5,20,10"
            )
            .is_err(),
            "per-worker caps are multiport-only"
        );
        assert!(run_str(
            "simulate --n 20 --p 4 --trials 2 --net multiport --bandwidth 40 \
             --worker-bw 10,0,20,10"
        )
        .is_err());
    }

    #[test]
    fn bad_network_specs_are_clean_errors() {
        assert!(run_str("simulate --net nope").is_err());
        assert!(run_str("simulate --net one-port").is_err(), "no bandwidth");
        assert!(run_str("simulate --net one-port --bandwidth 0").is_err());
        assert!(run_str("simulate --net one-port --bandwidth abc").is_err());
        assert!(
            run_str("simulate --net one-port --bandwidth 10 --worker-bw 5").is_err(),
            "worker-bw is multiport-only"
        );
        assert!(
            run_str("simulate --net multiport --bandwidth 10").is_err(),
            "multiport needs worker-bw"
        );
        assert!(run_str("simulate --bandwidth 10").is_err(), "needs --net");
        assert!(run_str("simulate --net one-port --bandwidth 10 --latency -1").is_err());
    }

    #[test]
    fn analyze_outputs_beta() {
        let out = run_str("analyze --n 100 --p 20").unwrap();
        assert!(out.contains("optimal β"), "{out}");
        // β for (20, 100) is ≈ 4.18 under the uniform-draw phase-2 model;
        // check the digits appear.
        assert!(out.contains("4.1") || out.contains("4.2"), "{out}");
        let mm = run_str("analyze --kernel matmul --n 40 --p 100").unwrap();
        assert!(mm.contains("matrix multiplication"));
    }

    #[test]
    fn partition_outputs_rects() {
        let out = run_str("partition --speeds 25,25,25,25 --n 10").unwrap();
        assert!(out.contains("4 rectangles in 2 columns"), "{out}");
        assert!(out.contains("ratio 1.0000"), "{out}");
        assert!(out.contains("100 tasks"));
        assert!(run_str("partition").is_err());
    }

    #[test]
    fn dag_runs() {
        let out = run_str("dag --t 6 --p 3 --policy cp").unwrap();
        assert!(out.contains("DataAwareCpDag"), "{out}");
        assert!(out.contains("blocks shipped"));
        let qr = run_str("dag --kernel qr --t 4 --p 2 --policy random").unwrap();
        assert!(qr.contains("RandomDag"));
        assert!(run_str("dag --policy nope").is_err());
    }

    #[test]
    fn figures_quick() {
        let out = run_str("figures fig1 --quick --trials 2").unwrap();
        assert!(out.contains("fig1"), "{out}");
        assert!(run_str("figures").is_err());
        assert!(run_str("figures fig3 --quick").is_err());
    }

    #[test]
    fn simulate_writes_trace_files() {
        let dir = std::env::temp_dir().join("hetsched-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("t.jsonl");
        let chrome = dir.join("t.json");

        let out = run_str(&format!(
            "simulate --n 20 --p 4 --strategy dynamic --trials 2 --seed 5 \
             --trace-out {} --probe-every 16",
            jsonl.display()
        ))
        .unwrap();
        assert!(out.contains("trace written"), "{out}");
        let body = std::fs::read_to_string(&jsonl).unwrap();
        let first = body.lines().next().unwrap();
        assert!(first.contains("\"manifest\""), "{first}");
        assert!(first.contains("\"seed\""), "{first}");
        assert!(body.lines().any(|l| l.contains("\"kind\":\"batch\"")));
        assert!(body.lines().any(|l| l.contains("\"type\":\"probe\"")));

        let out = run_str(&format!(
            "simulate --n 20 --p 4 --strategy dynamic --trials 2 --seed 5 \
             --trace-out {} --trace-format chrome",
            chrome.display()
        ))
        .unwrap();
        assert!(out.contains("Perfetto"), "{out}");
        let body = std::fs::read_to_string(&chrome).unwrap();
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"manifest\""));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn figures_trace_flag_writes_a_representative_run() {
        let dir = std::env::temp_dir().join("hetsched-cli-figtrace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig.jsonl");
        let out = run_str(&format!(
            "figures fig1 --quick --trials 2 --trace-out {} --probe-every 32",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("trace written"), "{out}");
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .any(|l| l.contains("\"type\":\"probe\"")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_buffer_streams_byte_identical_files() {
        let dir = std::env::temp_dir().join("hetsched-cli-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let buffered = dir.join("buf.jsonl");
        let streamed = dir.join("stream.jsonl");
        let base = "simulate --n 20 --p 4 --strategy dynamic --trials 2 --seed 5 --probe-every 16";
        run_str(&format!("{base} --trace-out {}", buffered.display())).unwrap();
        let out = run_str(&format!(
            "{base} --trace-out {} --trace-buffer 32",
            streamed.display()
        ))
        .unwrap();
        assert!(out.contains("trace streaming"), "{out}");
        assert!(out.contains("peak buffered"), "{out}");
        assert_eq!(
            std::fs::read(&buffered).unwrap(),
            std::fs::read(&streamed).unwrap(),
            "streamed file must be byte-identical to the buffered one"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_delta_renders_the_same_bytes() {
        let dir = std::env::temp_dir().join("hetsched-cli-delta-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("plain.jsonl");
        let delta = dir.join("delta.jsonl");
        let base = "simulate --n 20 --p 4 --strategy dynamic --trials 1 --seed 9 --probe-every 8";
        run_str(&format!("{base} --trace-out {}", plain.display())).unwrap();
        run_str(&format!(
            "{base} --probe-delta --trace-out {}",
            delta.display()
        ))
        .unwrap();
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&delta).unwrap(),
            "delta encoding is a storage choice, never a rendering one"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_flags_require_trace_out() {
        assert!(run_str("simulate --n 20 --p 4 --trace-format chrome").is_err());
        assert!(run_str("simulate --n 20 --p 4 --probe-every 8").is_err());
        assert!(run_str("simulate --n 20 --p 4 --trace-buffer 64").is_err());
        assert!(run_str("simulate --n 20 --p 4 --probe-delta --trace-out /tmp/x").is_err());
        assert!(run_str("simulate --n 20 --p 4 --trace-out /tmp/x --trace-format xml").is_err());
        assert!(run_str("simulate --n 20 --p 4 --trace-out /tmp/x --probe-every abc").is_err());
        assert!(run_str("simulate --n 20 --p 4 --trace-out /tmp/x --trace-buffer 0").is_err());
        assert!(run_str("simulate --n 20 --p 4 --trace-out /tmp/x --trace-buffer xyz").is_err());
    }

    #[test]
    fn zero_trials_is_a_clean_error() {
        let err = run_str("simulate --n 20 --p 4 --trials 0").unwrap_err();
        assert!(err.contains("at least 1 trial"), "{err}");
        let err = run_str("figures fig1 --quick --trials 0").unwrap_err();
        assert!(err.contains("at least 1 trial"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(run_str("simulate --bogus 3").is_err());
        assert!(run_str("analyze --whatever yes").is_err());
    }

    #[test]
    fn simulate_store_round_trip_and_dedupe() {
        let dir = std::env::temp_dir().join("hetsched-cli-store-sim");
        let _ = std::fs::remove_dir_all(&dir);
        let base = format!(
            "simulate --n 24 --p 4 --trials 2 --seed 11 --probe-every 8 --store {} --campaign unit",
            dir.display()
        );
        let out = run_str(&base).unwrap();
        assert!(out.contains("ingested"), "{out}");
        // Replaying the exact same run must skip, not duplicate.
        let again = run_str(&base).unwrap();
        assert!(again.contains("skipping"), "{again}");

        let q = format!(
            "query --store {} --where kind=report,metric=makespan --group-by strategy --agg count,mean(value)",
            dir.display()
        );
        let res = run_str(&q).unwrap();
        assert!(res.contains("DynamicOuter2Phases"), "{res}");
        assert!(res.contains(",2,"), "two trials expected: {res}");
        // Probe samples landed too.
        let probes = run_str(&format!(
            "query --store {} --where kind=probe --agg count",
            dir.display()
        ))
        .unwrap();
        let n: u64 = probes.lines().nth(1).unwrap().parse().unwrap();
        assert!(n > 0, "{probes}");
        let stats = run_str(&format!("stats --store {}", dir.display())).unwrap();
        assert!(stats.contains("makespan"), "{stats}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn figures_store_ingests_points() {
        let dir = std::env::temp_dir().join("hetsched-cli-store-fig");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_str(&format!(
            "figures fig6 --quick --trials 1 --seed 5 --store {} --campaign figs",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("figure row(s)"), "{out}");
        let res = run_str(&format!(
            "query --store {} --where kind=figure --select series,t,value --limit 3",
            dir.display()
        ))
        .unwrap();
        assert!(res.lines().count() >= 2, "{res}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_requires_store() {
        let err = run_str("simulate --n 20 --p 4 --campaign lone").unwrap_err();
        assert!(err.contains("--store"), "{err}");
        let err = run_str("figures fig1 --quick --campaign lone").unwrap_err();
        assert!(err.contains("--store"), "{err}");
    }

    #[test]
    fn query_errors_are_contextful() {
        let dir = std::env::temp_dir().join("hetsched-cli-store-err");
        let _ = std::fs::remove_dir_all(&dir);
        run_str(&format!(
            "simulate --n 20 --p 4 --trials 1 --store {}",
            dir.display()
        ))
        .unwrap();
        let err = run_str(&format!(
            "query --store {} --select nosuchcol",
            dir.display()
        ))
        .unwrap_err();
        assert!(err.contains("unknown column"), "{err}");
        let err = run_str(&format!(
            "query --store {} --where kind~probe",
            dir.display()
        ))
        .unwrap_err();
        assert!(err.contains("malformed predicate"), "{err}");
        assert!(run_str("query").is_err());
        assert!(run_str("stats").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_detects_artifact_shapes() {
        let dir = std::env::temp_dir().join("hetsched-cli-store-ing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run.jsonl");
        run_str(&format!(
            "simulate --n 24 --p 4 --trials 1 --seed 9 --probe-every 8 --trace-out {} --trace-format jsonl",
            trace.display()
        ))
        .unwrap();
        let store = dir.join("store");
        let out = run_str(&format!(
            "ingest --store {} --campaign reingest {}",
            store.display(),
            trace.display()
        ))
        .unwrap();
        assert!(out.contains("trace row(s)"), "{out}");
        // Same file again: content-addressed segments make this idempotent.
        run_str(&format!(
            "ingest --store {} --campaign reingest {}",
            store.display(),
            trace.display()
        ))
        .unwrap();
        let count = run_str(&format!(
            "query --store {} --where kind=probe --agg count",
            store.display()
        ))
        .unwrap();
        let n1: u64 = count.lines().nth(1).unwrap().parse().unwrap();
        assert!(n1 > 0);
        let err = run_str(&format!("ingest --store {}", store.display())).unwrap_err();
        assert!(err.contains("at least one file"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
