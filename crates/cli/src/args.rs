//! A small flag parser: `--key value`, `--flag`, and positionals.
//!
//! The approved dependency list has no CLI crate; the surface we need —
//! typed lookups with defaults and good error messages — is ~100 lines.

use std::collections::BTreeMap;

/// Parsed arguments: flags (`--key value` / bare `--switch`) plus
/// positionals, in order.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// A bare `--switch` (no value) is stored with this marker.
const SWITCH: &str = "\u{1}";

impl Args {
    /// Parses a raw argument list. Values never start with `--` (write
    /// `--delta -- -1` is unsupported; none of our values are negative).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("stray `--`".into());
                }
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        if out.flags.insert(key.to_string(), v).is_some() {
                            return Err(format!("duplicate flag --{key}"));
                        }
                    }
                    _ => {
                        if out.flags.insert(key.to_string(), SWITCH.into()).is_some() {
                            return Err(format!("duplicate flag --{key}"));
                        }
                        out.switches.push(key.to_string());
                    }
                }
            } else {
                out.positionals.push(a);
            }
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// True if `--key` appeared without a value.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.get(key).map(|v| v == SWITCH).unwrap_or(false)
    }

    /// String value of `--key`, if present (and not a bare switch).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .map(|s| s.as_str())
            .filter(|s| *s != SWITCH)
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Required typed value.
    #[allow(dead_code)] // part of the parser's surface; exercised in tests
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let v = self.get(key).ok_or(format!("missing required --{key}"))?;
        v.parse()
            .map_err(|_| format!("--{key}: cannot parse {v:?}"))
    }

    /// Comma-separated `f64` list.
    pub fn get_f64_list(&self, key: &str) -> Result<Option<Vec<f64>>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("--{key}: bad number {s:?}"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .map(Some),
        }
    }

    /// Rejects unknown flags (call after reading all expected ones).
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag --{k} (expected one of: {})",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parse")
    }

    #[test]
    fn flags_values_positionals() {
        // Note the grammar: a bare switch must be followed by another flag
        // or the end of the line ("--quick extra" would read `extra` as
        // the switch's value).
        let a = parse("simulate extra --kernel outer --trials 10 --quick");
        assert_eq!(a.positionals(), &["simulate", "extra"]);
        assert_eq!(a.get("kernel"), Some("outer"));
        assert_eq!(a.get_or("trials", 0usize).unwrap(), 10);
        assert!(a.switch("quick"));
        assert!(!a.switch("kernel"));
        assert_eq!(a.get("quick"), None, "switches have no value");
    }

    #[test]
    fn defaults_and_requires() {
        let a = parse("x --n 50");
        assert_eq!(a.get_or("n", 7usize).unwrap(), 50);
        assert_eq!(a.get_or("p", 7usize).unwrap(), 7);
        assert!(a.require::<usize>("missing").is_err());
        assert!(a.get_or::<usize>("n", 0).is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(Args::parse(["--".to_string()]).is_err());
        assert!(Args::parse(["--a".into(), "1".into(), "--a".into(), "2".into()]).is_err());
        let a = parse("x --n abc");
        assert!(a.get_or("n", 1usize).is_err());
    }

    #[test]
    fn f64_lists() {
        let a = parse("x --speeds 10,20.5,70");
        assert_eq!(
            a.get_f64_list("speeds").unwrap().unwrap(),
            vec![10.0, 20.5, 70.0]
        );
        assert!(parse("x").get_f64_list("speeds").unwrap().is_none());
        assert!(parse("x --speeds 1,oops").get_f64_list("speeds").is_err());
    }

    #[test]
    fn unknown_flag_detection() {
        let a = parse("x --good 1 --bad 2");
        assert!(a.ensure_known(&["good"]).is_err());
        assert!(a.ensure_known(&["good", "bad"]).is_ok());
    }
}
