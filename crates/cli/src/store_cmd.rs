//! `hetsched query` / `stats` / `ingest` — the trace-analytics warehouse
//! commands — plus the `--store` ingest hooks `simulate` and `figures`
//! call after a run.

use crate::args::Args;
use hetsched_core::{ExperimentConfig, RunResult, TrialSummary};
use hetsched_sim::ProbeConfig;
use hetsched_store::{
    build_query, figure_csv_rows, probe_rows, report_rows, rows_for_text, run_query_with,
    sim_run_id, stats_report_with, summary_rows, RunKey, Store, CHUNK_ROWS,
};
use std::path::Path;

fn open_store(args: &Args, cmd: &str) -> Result<Store, String> {
    let dir = args.get("store").ok_or(format!(
        "{cmd} needs --store DIR (a trace-analytics store directory)"
    ))?;
    Store::open(Path::new(dir)).map_err(|e| format!("--store: cannot open {dir:?}: {e}"))
}

/// Parses `--threads` for the scan commands: absent = all cores.
fn parse_threads(args: &Args) -> Result<Option<usize>, String> {
    match args.get("threads") {
        None => Ok(None),
        Some(v) => {
            let t: usize = v
                .parse()
                .map_err(|_| format!("--threads: bad count {v:?}"))?;
            if t == 0 {
                return Err("--threads: must be at least 1".into());
            }
            Ok(Some(t))
        }
    }
}

/// `hetsched query --store DIR [--select …] [--where …] [--group-by …]
/// [--agg …] [--format csv|jsonl] [--limit N] [--threads T]`.
pub fn query_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&[
        "store", "select", "where", "group-by", "agg", "format", "limit", "threads",
    ])?;
    let store = open_store(args, "query")?;
    let limit: Option<usize> = match args.get("limit") {
        Some(v) => Some(v.parse().map_err(|_| format!("--limit: bad count {v:?}"))?),
        None => None,
    };
    let q = build_query(
        args.get("select"),
        args.get("where"),
        args.get("group-by"),
        args.get("agg"),
        limit,
    )?;
    let res = run_query_with(&store, &q, parse_threads(args)?)?;
    match args.get("format").unwrap_or("csv") {
        "csv" => Ok(res.to_csv()),
        "jsonl" => Ok(res.to_jsonl()),
        other => Err(format!("--format: expected csv|jsonl, got {other:?}")),
    }
}

/// `hetsched stats --store DIR [--threads T]` — the canned campaign
/// summaries.
pub fn stats_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["store", "threads"])?;
    let store = open_store(args, "stats")?;
    stats_report_with(&store, parse_threads(args)?)
}

/// `hetsched compact --store DIR [--max-segment-rows N]` — merge small
/// segments (written one per job by `serve --store`, one per run by
/// `simulate --store`) into full-chunk segments. Queries and replay
/// dedupe see identical data; only the file count changes.
pub fn compact_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["store", "max-segment-rows"])?;
    let store = open_store(args, "compact")?;
    let max_rows: usize = match args.get("max-segment-rows") {
        Some(v) => {
            let n = v
                .parse()
                .map_err(|_| format!("--max-segment-rows: bad count {v:?}"))?;
            if n == 0 {
                return Err("--max-segment-rows: must be at least 1".into());
            }
            n
        }
        None => CHUNK_ROWS,
    };
    let report = store.compact(max_rows)?;
    let mut out = String::new();
    if report.tmp_cleaned > 0 {
        out.push_str(&format!(
            "removed {} stale temp file(s) from crashed writers\n",
            report.tmp_cleaned
        ));
    }
    if report.merged == 0 {
        out.push_str(&format!(
            "nothing to compact: {} segment(s), none below {max_rows} rows (or only one)\n",
            report.segments_before
        ));
    } else {
        out.push_str(&format!(
            "compacted {}: merged {} segment(s) ({} rows) — {} segment(s) before, {} after\n",
            store.dir().display(),
            report.merged,
            report.rows,
            report.segments_before,
            report.segments_after
        ));
    }
    Ok(out)
}

/// `hetsched ingest --store DIR [--campaign NAME] FILE…` — append
/// artifact files (type detected by shape) to a store.
pub fn ingest_cmd(args: &Args) -> Result<String, String> {
    args.ensure_known(&["store", "campaign"])?;
    let store = open_store(args, "ingest")?;
    let campaign = args.get("campaign").unwrap_or("default");
    let files: Vec<&String> = args.positionals().iter().skip(1).collect();
    if files.is_empty() {
        return Err(
            "ingest needs at least one file (a JSONL trace, figure CSV, serve event log, \
             or BENCH_*.json)"
                .into(),
        );
    }
    let mut out = String::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("ingest: cannot read {file:?}: {e}"))?;
        let (rows, kind) =
            rows_for_text(campaign, &text).map_err(|e| format!("ingest {file:?}: {e}"))?;
        let count = rows.len();
        let mut batch = store.batch();
        batch.push_all(rows);
        batch.commit()?;
        out.push_str(&format!(
            "ingested {file}: {count} {kind} row(s) into {} (campaign {campaign})\n",
            store.dir().display()
        ));
    }
    Ok(out)
}

/// The `simulate --store` hook: summary + per-trial report rows, plus a
/// probed observation of the first trial when a probe cadence was given.
/// Replay-safe: an already-ingested `(campaign, run, config)` key skips
/// cleanly instead of appending duplicates.
#[allow(clippy::too_many_arguments)]
pub fn simulate_store_ingest(
    dir: &str,
    campaign: &str,
    cfg: &ExperimentConfig,
    seed: u64,
    trials: usize,
    results: &[RunResult],
    sum: &TrialSummary,
    probe: ProbeConfig,
) -> Result<String, String> {
    let store =
        Store::open(Path::new(dir)).map_err(|e| format!("--store: cannot open {dir:?}: {e}"))?;
    let run_id = sim_run_id(seed, trials);
    let key = RunKey::new(campaign, &run_id, seed, cfg);
    if store.contains_run(&key.campaign, &key.run, &key.config)? {
        return Ok(format!(
            "store                    : {run_id} already ingested (campaign {campaign}, \
             config {}); skipping\n",
            key.config
        ));
    }
    let strategy = cfg.strategy.label(cfg.kernel);
    let mut batch = store.batch();
    batch.push_all(summary_rows(&key, strategy, sum));
    for (i, r) in results.iter().enumerate() {
        let trial_seed = hetsched_core::runner::trial_seed(seed, i);
        batch.push_all(report_rows(&key, strategy, i, trial_seed, r));
    }
    if probe.is_enabled() {
        let obs = hetsched_core::run_once_observed(
            cfg,
            hetsched_core::runner::trial_seed(seed, 0),
            probe,
        );
        let beta = results
            .first()
            .and_then(|r| r.beta_used)
            .unwrap_or(f64::NAN);
        batch.push_all(probe_rows(&key, strategy, beta, &obs.probes));
    }
    let count = batch.len();
    batch.commit()?;
    Ok(format!(
        "store                    : ingested {count} row(s) into {dir} \
         (campaign {campaign}, run {run_id}, config {})\n",
        key.config
    ))
}

/// The `figures --store` hook: every generated figure's CSV becomes
/// per-point rows. Identical re-runs are idempotent (content-addressed
/// segments).
pub fn figures_store_ingest(dir: &str, campaign: &str, csvs: &[String]) -> Result<String, String> {
    let store =
        Store::open(Path::new(dir)).map_err(|e| format!("--store: cannot open {dir:?}: {e}"))?;
    let mut batch = store.batch();
    for csv in csvs {
        batch.push_all(figure_csv_rows(campaign, csv)?);
    }
    let count = batch.len();
    batch.commit()?;
    Ok(format!(
        "store: ingested {count} figure row(s) from {} figure(s) into {dir} (campaign {campaign})\n",
        csvs.len()
    ))
}
