//! End-to-end tests that drive the compiled `hetsched` binary the way a
//! shell user would: real argv, real exit codes, captured stdout/stderr.
//!
//! Cargo exposes the binary path via `CARGO_BIN_EXE_hetsched`, so these run
//! under a plain `cargo test` with no extra tooling.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output};
use std::time::{Duration, Instant};

fn hetsched(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetsched"))
        .args(args)
        .output()
        .expect("failed to spawn hetsched binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_lists_every_subcommand_and_flag_group() {
    let out = hetsched(&["help"]);
    assert!(out.status.success(), "help must exit 0: {}", stderr(&out));
    let text = stdout(&out);

    for cmd in [
        "simulate",
        "analyze",
        "partition",
        "dag",
        "figures",
        "serve",
        "submit",
        "status",
        "logs",
        "drain",
        "query",
        "stats",
        "ingest",
        "compact",
        "help",
    ] {
        assert!(text.contains(cmd), "help must list `{cmd}`:\n{text}");
    }
    for flag in [
        "--store",
        "--campaign",
        "--select",
        "--where",
        "--group-by",
        "--agg",
        "--kernel",
        "--fail-exp",
        "--price-returns",
        "--socket",
        "--lease-ttl",
        "--n",
        "--p",
        "--strategy",
        "--beta",
        "--trials",
        "--seed",
        "--scenario",
        "--speeds",
        "--fail",
        "--straggler",
        "--net",
        "--bandwidth",
        "--worker-bw",
        "--latency",
        "--policy",
        "--quick",
        "--threads",
        "--max-segment-rows",
        "--compact-threshold",
    ] {
        assert!(text.contains(flag), "help must list `{flag}`:\n{text}");
    }
}

#[test]
fn no_arguments_is_an_error_that_shows_usage() {
    let out = hetsched(&[]);
    assert!(!out.status.success(), "bare invocation must be an error");
    let err = stderr(&out);
    assert!(err.contains("USAGE"), "usage must be shown: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn tiny_simulate_run_exits_zero() {
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--strategy",
        "dynamic",
        "--trials",
        "2",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("makespan"), "report incomplete:\n{text}");
}

#[test]
fn tiny_networked_run_exits_zero() {
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--trials",
        "2",
        "--net",
        "one-port",
        "--bandwidth",
        "8",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("network model"),
        "diagnostics missing:\n{text}"
    );
    assert!(text.contains("master-link utilization"), "{text}");
}

#[test]
fn unknown_command_is_a_clean_error() {
    let out = hetsched(&["simulat"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("error:"), "expected error prefix, got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn invalid_fail_spec_is_a_clean_error() {
    for spec in ["3", "3@", "@1.0", "3@abc", "notanumber@1.0"] {
        let out = hetsched(&["simulate", "--n", "12", "--p", "4", "--fail", spec]);
        assert!(!out.status.success(), "`--fail {spec}` must be rejected");
        let err = stderr(&out);
        assert!(err.contains("error:"), "`--fail {spec}`: {err}");
        assert!(!err.contains("panicked"), "`--fail {spec}` panicked: {err}");
    }
}

#[test]
fn tree_topology_traces_and_probes_reject_cleanly() {
    // Tree tracing is supported: the merged shard trace lands on disk.
    let path = std::env::temp_dir().join(format!(
        "hetsched-cli-{}-tree-trace.jsonl",
        std::process::id()
    ));
    let path_s = path.to_str().unwrap();
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--trials",
        "1",
        "--topology",
        "tree",
        "--trace-out",
        path_s,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("trace written"), "{}", stdout(&out));
    let meta = std::fs::metadata(&path).expect("trace file written");
    assert!(meta.len() > 0, "trace file is empty");
    std::fs::remove_file(&path).ok();

    // Probes stay flat-only under multiple sub-masters: per-worker probe
    // snapshots of differently-sized shard engines do not merge.
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--topology",
        "tree",
        "--trace-out",
        "/tmp/never-written.jsonl",
        "--probe-every",
        "8",
    ]);
    assert!(!out.status.success(), "tree + probes must be rejected");
    let err = stderr(&out);
    assert!(err.contains("sub-masters"), "must say why: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn bad_submasters_and_doomed_shards_are_clean_errors() {
    for submasters in ["0", "9"] {
        let out = hetsched(&[
            "simulate",
            "--n",
            "12",
            "--p",
            "4",
            "--topology",
            "tree",
            "--submasters",
            submasters,
        ]);
        assert!(
            !out.status.success(),
            "--submasters {submasters} on p=4 must be rejected"
        );
        let err = stderr(&out);
        assert!(err.contains("error:"), "expected error prefix: {err}");
        assert!(!err.contains("panicked"), "must not panic: {err}");
    }

    // Killing every worker of shard 0 (workers 0..2 of a 2-shard split)
    // used to trip the engine's survivor assert mid-run; now it is a
    // clean up-front error.
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--topology",
        "tree",
        "--submasters",
        "2",
        "--fail",
        "0@0.0,1@0.0",
    ]);
    assert!(!out.status.success(), "doomed shard must be rejected");
    let err = stderr(&out);
    assert!(
        err.contains("survivor"),
        "must explain the shard rule: {err}"
    );
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

// ---------------------------------------------------------------------------
// Service mode: daemon + client subcommands over the Unix socket.

/// A scratch directory plus the daemon flags pointing into it.
struct ServeDir {
    dir: PathBuf,
}

impl ServeDir {
    fn new(name: &str) -> ServeDir {
        let dir = std::env::temp_dir().join(format!("hetsched-cli-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ServeDir { dir }
    }

    fn socket(&self) -> PathBuf {
        self.dir.join("daemon.sock")
    }

    fn log(&self) -> PathBuf {
        self.dir.join("events.jsonl")
    }

    fn results(&self) -> PathBuf {
        self.dir.join("results")
    }

    /// Spawns `hetsched serve` pointed at this directory and waits for
    /// the socket to appear (the daemon's readiness signal).
    fn spawn_daemon(&self, workers: &str) -> Child {
        let child = Command::new(env!("CARGO_BIN_EXE_hetsched"))
            .args([
                "serve",
                "--socket",
                self.socket().to_str().unwrap(),
                "--log",
                self.log().to_str().unwrap(),
                "--results-dir",
                self.results().to_str().unwrap(),
                "--workers",
                workers,
            ])
            .spawn()
            .expect("spawn daemon");
        wait_until("daemon socket", || self.socket().exists());
        child
    }

    fn client(&self, args: &[&str]) -> Output {
        let mut argv = args.to_vec();
        let socket = self.socket();
        argv.push("--socket");
        argv.push(socket.to_str().unwrap());
        hetsched(&argv)
    }
}

impl Drop for ServeDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_for_exit(mut child: Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("timed out waiting for {what} to exit");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn serve_round_trip_submit_status_logs_drain() {
    let dir = ServeDir::new("roundtrip");
    let daemon = dir.spawn_daemon("2");

    let out = dir.client(&["submit", "n=16", "p=4", "trials=2", "seed=3", "name=alpha"]);
    assert!(out.status.success(), "submit: {}", stderr(&out));
    assert!(stdout(&out).contains("submitted job 1"), "{}", stdout(&out));

    let out = dir.client(&[
        "submit",
        "n=24",
        "p=4",
        "trials=2",
        "seed=4",
        "name=beta",
        "strategy=random",
    ]);
    assert!(out.status.success(), "submit: {}", stderr(&out));
    assert!(stdout(&out).contains("submitted job 2"), "{}", stdout(&out));

    // A malformed spec is refused client-side with a clean error.
    let out = dir.client(&["submit", "warp=9"]);
    assert!(!out.status.success(), "bad spec must be rejected");
    assert!(!stderr(&out).contains("panicked"), "{}", stderr(&out));

    let out = dir.client(&["status"]);
    assert!(out.status.success(), "status: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("alpha") && text.contains("beta"), "{text}");

    // Drain blocks until both jobs are terminal, then stops the daemon.
    let out = dir.client(&["drain"]);
    assert!(out.status.success(), "drain: {}", stderr(&out));
    assert!(
        stdout(&out).contains("2 done, 0 failed"),
        "{}",
        stdout(&out)
    );
    wait_for_exit(daemon, "drained daemon");

    // The event log reconciles with the emitted result manifests.
    let log = std::fs::read_to_string(dir.log()).expect("event log");
    assert_eq!(log.matches(r#""event":"done""#).count(), 2, "{log}");
    assert!(log.trim_end().ends_with(r#"{"event":"drained"}"#), "{log}");
    for id in [1, 2] {
        let manifest = dir.results().join(format!("job-{id}.json"));
        assert!(manifest.exists(), "missing {}", manifest.display());
    }
    assert!(!dir.socket().exists(), "socket removed on clean shutdown");
}

/// Reads the per-job result manifests a drained campaign left behind.
fn manifests(results: &Path, jobs: u64) -> Vec<Vec<u8>> {
    (1..=jobs)
        .map(|id| {
            let path = results.join(format!("job-{id}.json"));
            std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        })
        .collect()
}

const RECOVERY_JOBS: &[&[&str]] = &[
    &["submit", "n=16", "p=4", "trials=2", "seed=21", "name=quick"],
    &[
        "submit",
        "n=48",
        "p=8",
        "trials=30",
        "seed=22",
        "name=heavy",
    ],
    &["submit", "n=32", "p=8", "trials=10", "seed=23", "name=tail"],
];

#[test]
fn crash_recovery_replays_to_identical_results() {
    // Baseline: the same three jobs on an uninterrupted single-worker
    // daemon. FIFO + one worker makes the execution order deterministic.
    let baseline = ServeDir::new("recovery-baseline");
    let daemon = baseline.spawn_daemon("1");
    for job in RECOVERY_JOBS {
        let out = baseline.client(job);
        assert!(out.status.success(), "baseline submit: {}", stderr(&out));
    }
    let out = baseline.client(&["drain"]);
    assert!(out.status.success(), "baseline drain: {}", stderr(&out));
    wait_for_exit(daemon, "baseline daemon");
    let expected = manifests(&baseline.results(), 3);

    // Crash run: same jobs, but the daemon is SIGKILLed as soon as the
    // first manifest lands — mid-campaign, with work still queued.
    let crashed = ServeDir::new("recovery-crash");
    let mut daemon = crashed.spawn_daemon("1");
    for job in RECOVERY_JOBS {
        let out = crashed.client(job);
        assert!(out.status.success(), "crash-run submit: {}", stderr(&out));
    }
    wait_until("first manifest", || {
        crashed.results().join("job-1.json").exists()
    });
    daemon.kill().expect("kill daemon");
    let _ = daemon.wait();
    // SIGKILL leaves the socket file behind; remove it so the restarted
    // daemon's freshly-bound socket is what the readiness wait sees.
    let _ = std::fs::remove_file(crashed.socket());

    // Restart over the same log + results dir: replay re-queues whatever
    // was interrupted, re-runs it deterministically, and drains to the
    // same final state.
    let daemon = crashed.spawn_daemon("1");
    let out = crashed.client(&["drain"]);
    assert!(out.status.success(), "recovered drain: {}", stderr(&out));
    assert!(
        stdout(&out).contains("3 done, 0 failed"),
        "{}",
        stdout(&out)
    );
    wait_for_exit(daemon, "recovered daemon");

    let recovered = manifests(&crashed.results(), 3);
    for (i, (a, b)) in expected.iter().zip(&recovered).enumerate() {
        assert_eq!(
            a,
            b,
            "job {} manifest differs between uninterrupted and recovered runs",
            i + 1
        );
    }
    let log = std::fs::read_to_string(crashed.log()).expect("event log");
    assert_eq!(
        log.matches(r#""event":"daemon_start""#).count(),
        2,
        "one start, one restart: {log}"
    );
    assert_eq!(
        log.matches(r#""event":"done""#).count(),
        3,
        "every job reaches done exactly once across both lives: {log}"
    );
}

// ---------------------------------------------------------------------------
// Trace-analytics warehouse: query / stats / ingest against a real store.

/// A scratch directory holding a store populated by one probed
/// `simulate --store` run.
fn populated_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetsched-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = hetsched(&[
        "simulate",
        "--n",
        "24",
        "--p",
        "4",
        "--trials",
        "2",
        "--seed",
        "17",
        "--probe-every",
        "8",
        "--store",
        dir.to_str().unwrap(),
        "--campaign",
        "itest",
    ]);
    assert!(out.status.success(), "populate: {}", stderr(&out));
    assert!(stdout(&out).contains("ingested"), "{}", stdout(&out));
    dir
}

#[test]
fn store_query_and_stats_over_a_simulated_campaign() {
    let dir = populated_store("store-query");
    let store = dir.to_str().unwrap();

    let query = [
        "query",
        "--store",
        store,
        "--where",
        "kind=report,metric=makespan",
        "--group-by",
        "strategy",
        "--agg",
        "count,mean(value),p50(value)",
    ];
    let out = hetsched(&query);
    assert!(out.status.success(), "query: {}", stderr(&out));
    let first = stdout(&out);
    assert!(first.contains("DynamicOuter2Phases"), "{first}");
    assert!(
        first.starts_with("strategy,count,mean(value),p50(value)"),
        "{first}"
    );

    // Golden byte-stability: the same query twice gives identical bytes.
    let again = hetsched(&query);
    assert!(again.status.success(), "repeat query: {}", stderr(&again));
    assert_eq!(first, stdout(&again), "query output must be byte-stable");

    // JSONL rendering of the same result is also available.
    let mut jsonl = query.to_vec();
    jsonl.extend_from_slice(&["--format", "jsonl"]);
    let out = hetsched(&jsonl);
    assert!(out.status.success(), "jsonl query: {}", stderr(&out));
    assert!(stdout(&out).contains(r#""strategy":"#), "{}", stdout(&out));

    // The canned summaries see the same campaign.
    let out = hetsched(&["stats", "--store", store]);
    assert!(out.status.success(), "stats: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("makespan"), "{text}");
    assert!(!text.contains("store is empty"), "{text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_merges_fragmented_store_without_changing_query_output() {
    let dir =
        std::env::temp_dir().join(format!("hetsched-cli-{}-store-compact", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap().to_string();

    // Several small simulate runs, each committing its own segment(s).
    for seed in ["3", "5", "7", "11"] {
        let out = hetsched(&[
            "simulate",
            "--n",
            "24",
            "--p",
            "4",
            "--trials",
            "2",
            "--seed",
            seed,
            "--probe-every",
            "8",
            "--store",
            &store,
            "--campaign",
            "frag",
        ]);
        assert!(out.status.success(), "seed {seed}: {}", stderr(&out));
    }
    let segments = |dir: &std::path::Path| -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter(|e| {
                let name = e.as_ref().unwrap().file_name();
                let name = name.to_string_lossy();
                name.starts_with("seg-") && name.ends_with(".hsc")
            })
            .count()
    };
    let before = segments(&dir);
    assert!(
        before >= 4,
        "expected a fragmented store, got {before} segments"
    );

    // Golden query with association-free aggregates (count/min/max/pNN are
    // exact whatever the chunk layout, so bytes must survive compaction).
    let query = [
        "query",
        "--store",
        store.as_str(),
        "--where",
        "kind=report,metric=makespan",
        "--group-by",
        "strategy",
        "--agg",
        "count,min(value),max(value),p50(value)",
    ];
    let out = hetsched(&query);
    assert!(out.status.success(), "golden query: {}", stderr(&out));
    let golden = stdout(&out);
    assert!(golden.contains("DynamicOuter2Phases"), "{golden}");

    // The same query through the parallel scanner is byte-identical.
    for threads in ["1", "2", "8"] {
        let mut mt = query.to_vec();
        mt.extend_from_slice(&["--threads", threads]);
        let out = hetsched(&mt);
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            stderr(&out)
        );
        assert_eq!(
            stdout(&out),
            golden,
            "--threads {threads} must not change output bytes"
        );
    }

    let out = hetsched(&["compact", "--store", &store]);
    assert!(out.status.success(), "compact: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("compacted"), "{text}");
    let after = segments(&dir);
    assert!(
        after < before,
        "compaction must shrink the store: {before} -> {after}"
    );

    let out = hetsched(&query);
    assert!(out.status.success(), "post-compact query: {}", stderr(&out));
    assert_eq!(
        stdout(&out),
        golden,
        "compaction must not change query output"
    );

    // A second pass finds nothing left to merge.
    let out = hetsched(&["compact", "--store", &store]);
    assert!(out.status.success(), "re-compact: {}", stderr(&out));
    assert!(
        stdout(&out).contains("nothing to compact"),
        "{}",
        stdout(&out)
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_rejects_invalid_thread_counts_and_percentiles() {
    let dir = populated_store("store-bad-flags");
    let store = dir.to_str().unwrap();

    let out = hetsched(&[
        "query",
        "--store",
        store,
        "--agg",
        "count",
        "--threads",
        "0",
    ]);
    assert!(!out.status.success(), "--threads 0 must be rejected");
    let err = stderr(&out);
    assert!(err.contains("--threads"), "{err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");

    let out = hetsched(&["query", "--store", store, "--agg", "p101(value)"]);
    assert!(!out.status.success(), "p101 must be rejected");
    let err = stderr(&out);
    assert!(err.contains("[0, 100]"), "{err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_rejects_unknown_columns_and_malformed_predicates() {
    let dir = populated_store("store-errors");
    let store = dir.to_str().unwrap();

    let out = hetsched(&["query", "--store", store, "--select", "flavour"]);
    assert!(!out.status.success(), "unknown column must be rejected");
    let err = stderr(&out);
    assert!(err.contains("unknown column"), "{err}");
    assert!(err.contains("flavour"), "must name the column: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");

    let out = hetsched(&["query", "--store", store, "--where", "kind~probe"]);
    assert!(
        !out.status.success(),
        "malformed predicate must be rejected"
    );
    let err = stderr(&out);
    assert!(err.contains("malformed predicate"), "{err}");
    assert!(err.contains("kind~probe"), "must quote the input: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");

    let out = hetsched(&["query", "--store", store, "--agg", "median(value)"]);
    assert!(!out.status.success(), "unknown aggregate must be rejected");
    assert!(!stderr(&out).contains("panicked"), "{}", stderr(&out));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_store_exits_cleanly() {
    let dir = std::env::temp_dir().join(format!("hetsched-cli-{}-store-empty", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap();

    let out = hetsched(&["query", "--store", store, "--select", "campaign,run"]);
    assert!(out.status.success(), "empty query: {}", stderr(&out));
    assert_eq!(stdout(&out), "campaign,run\n", "header only, no rows");

    let out = hetsched(&["stats", "--store", store]);
    assert!(out.status.success(), "empty stats: {}", stderr(&out));
    assert!(stdout(&out).contains("store is empty"), "{}", stdout(&out));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ingest_round_trips_a_trace_file() {
    let dir = std::env::temp_dir().join(format!("hetsched-cli-{}-store-trace", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.jsonl");
    let store = dir.join("store");

    let out = hetsched(&[
        "simulate",
        "--n",
        "24",
        "--p",
        "4",
        "--trials",
        "1",
        "--seed",
        "5",
        "--probe-every",
        "8",
        "--trace-out",
        trace.to_str().unwrap(),
        "--trace-format",
        "jsonl",
    ]);
    assert!(out.status.success(), "trace run: {}", stderr(&out));

    let out = hetsched(&[
        "ingest",
        "--store",
        store.to_str().unwrap(),
        "--campaign",
        "replayed",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "ingest: {}", stderr(&out));
    assert!(stdout(&out).contains("trace row(s)"), "{}", stdout(&out));

    let out = hetsched(&[
        "query",
        "--store",
        store.to_str().unwrap(),
        "--where",
        "kind=probe",
        "--agg",
        "count",
    ]);
    assert!(out.status.success(), "count query: {}", stderr(&out));
    let text = stdout(&out);
    let n: u64 = text.lines().nth(1).unwrap_or("0").parse().unwrap();
    assert!(n > 0, "probe samples must survive the round trip: {text}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn invalid_bandwidth_spec_is_a_clean_error() {
    let cases: &[&[&str]] = &[
        &["--net", "one-port"],                        // missing --bandwidth
        &["--net", "one-port", "--bandwidth", "zero"], // not a number
        &["--net", "one-port", "--bandwidth", "-3"],   // non-positive
        &["--net", "warp-drive", "--bandwidth", "10"], // unknown model
        &["--bandwidth", "10"],                        // bandwidth without --net
        &["--net", "multiport", "--bandwidth", "10"],  // missing --worker-bw
    ];
    for extra in cases {
        let mut args = vec!["simulate", "--n", "12", "--p", "4"];
        args.extend_from_slice(extra);
        let out = hetsched(&args);
        assert!(!out.status.success(), "{extra:?} must be rejected");
        let err = stderr(&out);
        assert!(err.contains("error:"), "{extra:?}: {err}");
        assert!(!err.contains("panicked"), "{extra:?} panicked: {err}");
    }
}
