//! End-to-end tests that drive the compiled `hetsched` binary the way a
//! shell user would: real argv, real exit codes, captured stdout/stderr.
//!
//! Cargo exposes the binary path via `CARGO_BIN_EXE_hetsched`, so these run
//! under a plain `cargo test` with no extra tooling.

use std::process::{Command, Output};

fn hetsched(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hetsched"))
        .args(args)
        .output()
        .expect("failed to spawn hetsched binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_lists_every_subcommand_and_flag_group() {
    let out = hetsched(&["help"]);
    assert!(out.status.success(), "help must exit 0: {}", stderr(&out));
    let text = stdout(&out);

    for cmd in ["simulate", "analyze", "partition", "dag", "figures", "help"] {
        assert!(text.contains(cmd), "help must list `{cmd}`:\n{text}");
    }
    for flag in [
        "--kernel",
        "--n",
        "--p",
        "--strategy",
        "--beta",
        "--trials",
        "--seed",
        "--scenario",
        "--speeds",
        "--fail",
        "--straggler",
        "--net",
        "--bandwidth",
        "--worker-bw",
        "--latency",
        "--policy",
        "--quick",
    ] {
        assert!(text.contains(flag), "help must list `{flag}`:\n{text}");
    }
}

#[test]
fn no_arguments_is_an_error_that_shows_usage() {
    let out = hetsched(&[]);
    assert!(!out.status.success(), "bare invocation must be an error");
    let err = stderr(&out);
    assert!(err.contains("USAGE"), "usage must be shown: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn tiny_simulate_run_exits_zero() {
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--strategy",
        "dynamic",
        "--trials",
        "2",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("makespan"), "report incomplete:\n{text}");
}

#[test]
fn tiny_networked_run_exits_zero() {
    let out = hetsched(&[
        "simulate",
        "--n",
        "12",
        "--p",
        "4",
        "--trials",
        "2",
        "--net",
        "one-port",
        "--bandwidth",
        "8",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("network model"),
        "diagnostics missing:\n{text}"
    );
    assert!(text.contains("master-link utilization"), "{text}");
}

#[test]
fn unknown_command_is_a_clean_error() {
    let out = hetsched(&["simulat"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("error:"), "expected error prefix, got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
}

#[test]
fn invalid_fail_spec_is_a_clean_error() {
    for spec in ["3", "3@", "@1.0", "3@abc", "notanumber@1.0"] {
        let out = hetsched(&["simulate", "--n", "12", "--p", "4", "--fail", spec]);
        assert!(!out.status.success(), "`--fail {spec}` must be rejected");
        let err = stderr(&out);
        assert!(err.contains("error:"), "`--fail {spec}`: {err}");
        assert!(!err.contains("panicked"), "`--fail {spec}` panicked: {err}");
    }
}

#[test]
fn invalid_bandwidth_spec_is_a_clean_error() {
    let cases: &[&[&str]] = &[
        &["--net", "one-port"],                        // missing --bandwidth
        &["--net", "one-port", "--bandwidth", "zero"], // not a number
        &["--net", "one-port", "--bandwidth", "-3"],   // non-positive
        &["--net", "warp-drive", "--bandwidth", "10"], // unknown model
        &["--bandwidth", "10"],                        // bandwidth without --net
        &["--net", "multiport", "--bandwidth", "10"],  // missing --worker-bw
    ];
    for extra in cases {
        let mut args = vec!["simulate", "--n", "12", "--p", "4"];
        args.extend_from_slice(extra);
        let out = hetsched(&args);
        assert!(!out.status.success(), "{extra:?} must be rejected");
        let err = stderr(&out);
        assert!(err.contains("error:"), "{extra:?}: {err}");
        assert!(!err.contains("panicked"), "{extra:?} panicked: {err}");
    }
}
