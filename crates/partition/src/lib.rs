//! The static comparison baseline: square partitioning by columns.
//!
//! §3.1 of the paper normalizes every result by the lower bound
//! `2n·Σ√rs_k` and notes that *"the best known static algorithm (based on a
//! complete knowledge of all relative speeds) has an approximation ratio of
//! 7/4"* — the column-based partition of Beaumont, Boudet, Rastello &
//! Robert, *"Partitioning a square into rectangles: NP-completeness and
//! approximation algorithms"*, Algorithmica 34(3), 2002 (the paper's
//! reference \[2\]). The paper uses it as a conceptual comparison basis but
//! does not implement it; we do, so the dynamic/static trade-off can be
//! measured instead of cited:
//!
//! * [`column::optimal_column_partition`] — the optimal *column-structured*
//!   partition of the unit square into `p` rectangles with prescribed
//!   areas, by dynamic programming over speed-sorted prefixes (this is the
//!   7/4-approximation of the unrestricted optimum);
//! * [`grid::GridPartition`] — its discretization onto the `n × n` block
//!   grid (exact cover, integer rectangles);
//! * [`scheduler::StaticOuter`] — a [`Scheduler`](hetsched_sim::Scheduler)
//!   that pins each worker to its rectangle. Communication-optimal up to
//!   7/4 when speeds are exact and stable; brittle when they drift — the
//!   trade-off the paper's dynamic strategies are designed to win.

pub mod column;
pub mod grid;
pub mod scheduler;

pub use column::{optimal_column_partition, ColumnPartition, Rect};
pub use grid::{GridPartition, GridRect};
pub use scheduler::StaticOuter;
