//! Optimal column-structured partition of the unit square (Beaumont et
//! al. 2002).
//!
//! Problem: partition the unit square into `p` rectangles with prescribed
//! areas `a_1 … a_p` (the relative speeds), minimizing the total
//! half-perimeter `Σ (w_k + h_k)` — which is exactly the communication
//! volume of a static outer-product allocation, normalized to `n = 1`.
//!
//! General optimal partition is NP-complete; restricting to *column*
//! structure (vertical slices, each sliced horizontally) admits an exact
//! polynomial algorithm and is a 7/4-approximation of the unrestricted
//! lower bound `2Σ√a_k`. Structure of the optimum:
//!
//! * a column of width `w` containing `k` rectangles stacked to height 1
//!   contributes `k·w + 1` to the objective (`Σ h = 1` per column);
//! * in an optimal solution the areas can be taken sorted in
//!   non-increasing order with each column a *contiguous* run of that
//!   order (an exchange argument: bigger areas go to wider columns);
//! * hence dynamic programming over sorted prefixes:
//!   `f(i) = min_{j<i} f(j) + (i−j)·(S_i − S_j) + 1`, where `S` are prefix
//!   sums — `O(p²)` time, `O(p)` space.

/// A rectangle of the unit square, axis-aligned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
    /// Index of the processor this rectangle belongs to.
    pub owner: usize,
}

impl Rect {
    /// Half-perimeter (the communication cost of the rectangle).
    pub fn half_perimeter(&self) -> f64 {
        self.w + self.h
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// A column-structured partition of the unit square.
#[derive(Clone, Debug)]
pub struct ColumnPartition {
    /// All rectangles, exactly one per input area, indexed by owner.
    pub rects: Vec<Rect>,
    /// Number of columns used.
    pub columns: usize,
    /// Owners in each column, top-to-bottom (preserves the column
    /// structure for exact grid discretization).
    pub column_owners: Vec<Vec<usize>>,
    /// Width of each column (sums to 1).
    pub column_widths: Vec<f64>,
    /// Total half-perimeter `Σ (w_k + h_k)`.
    pub cost: f64,
}

impl ColumnPartition {
    /// The unrestricted lower bound `2Σ√a_k` this partition approximates.
    pub fn lower_bound(areas: &[f64]) -> f64 {
        2.0 * areas.iter().map(|a| a.sqrt()).sum::<f64>()
    }

    /// `cost / lower_bound` — guaranteed ≤ 7/4 by the 2002 paper.
    pub fn approximation_ratio(&self, areas: &[f64]) -> f64 {
        self.cost / Self::lower_bound(areas)
    }
}

/// Computes the optimal column-structured partition for `areas`
/// (positive, summing to 1 within floating-point tolerance).
///
/// # Examples
///
/// ```
/// use hetsched_partition::optimal_column_partition;
///
/// // Four equal-speed workers tile the square 2×2 — exactly optimal.
/// let part = optimal_column_partition(&[0.25; 4]);
/// assert_eq!(part.columns, 2);
/// assert!((part.cost - 4.0).abs() < 1e-12);
/// assert!(part.approximation_ratio(&[0.25; 4]) <= 1.75);
/// ```
pub fn optimal_column_partition(areas: &[f64]) -> ColumnPartition {
    let p = areas.len();
    assert!(p >= 1, "need at least one area");
    let total: f64 = areas.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "areas must sum to 1, got {total}"
    );
    assert!(areas.iter().all(|&a| a > 0.0), "areas must be positive");

    // Sort areas in non-increasing order, remembering owners.
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&i, &j| areas[j].partial_cmp(&areas[i]).expect("finite areas"));
    let sorted: Vec<f64> = order.iter().map(|&i| areas[i]).collect();

    // Prefix sums S[i] = a_1 + … + a_i of the sorted areas.
    let mut prefix = vec![0.0; p + 1];
    for i in 0..p {
        prefix[i + 1] = prefix[i] + sorted[i];
    }

    // DP over prefixes: f[i] = best cost for the first i sorted areas,
    // cut[i] = start index of the last column.
    let mut f = vec![f64::INFINITY; p + 1];
    let mut cut = vec![0usize; p + 1];
    f[0] = 0.0;
    for i in 1..=p {
        for j in 0..i {
            let width = prefix[i] - prefix[j];
            let cost = f[j] + (i - j) as f64 * width + 1.0;
            if cost < f[i] {
                f[i] = cost;
                cut[i] = j;
            }
        }
    }

    // Reconstruct the columns (right to left), then lay out rectangles.
    let mut bounds = Vec::new();
    let mut i = p;
    while i > 0 {
        bounds.push((cut[i], i));
        i = cut[i];
    }
    bounds.reverse();

    let mut rects = Vec::with_capacity(p);
    let mut column_owners = Vec::with_capacity(bounds.len());
    let mut column_widths = Vec::with_capacity(bounds.len());
    let mut x = 0.0;
    for &(start, end) in &bounds {
        let width = prefix[end] - prefix[start];
        let mut y = 0.0;
        let mut owners = Vec::with_capacity(end - start);
        for s in start..end {
            let h = sorted[s] / width;
            rects.push(Rect {
                x,
                y,
                w: width,
                h,
                owner: order[s],
            });
            owners.push(order[s]);
            y += h;
        }
        column_owners.push(owners);
        column_widths.push(width);
        x += width;
    }
    // Keep rectangles in owner order for direct indexing.
    rects.sort_by_key(|r| r.owner);

    ColumnPartition {
        rects,
        columns: bounds.len(),
        column_owners,
        column_widths,
        cost: f[p],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn normalize(mut v: Vec<f64>) -> Vec<f64> {
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= s);
        v
    }

    fn check_geometry(p: &ColumnPartition, areas: &[f64]) {
        // One rect per area, exact areas, inside the unit square.
        assert_eq!(p.rects.len(), areas.len());
        for (k, r) in p.rects.iter().enumerate() {
            assert_eq!(r.owner, k);
            assert!((r.area() - areas[k]).abs() < 1e-9, "area of rect {k}");
            assert!(r.x >= -1e-12 && r.x + r.w <= 1.0 + 1e-9);
            assert!(r.y >= -1e-12 && r.y + r.h <= 1.0 + 1e-9);
        }
        // Cost is consistent with the rectangles.
        let sum: f64 = p.rects.iter().map(Rect::half_perimeter).sum();
        assert!((sum - p.cost).abs() < 1e-9, "{} vs {}", sum, p.cost);
    }

    #[test]
    fn single_processor_is_the_whole_square() {
        let part = optimal_column_partition(&[1.0]);
        check_geometry(&part, &[1.0]);
        assert_eq!(part.columns, 1);
        assert!((part.cost - 2.0).abs() < 1e-12);
        assert!((part.approximation_ratio(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_equal_processors_form_a_2x2_grid() {
        let areas = [0.25; 4];
        let part = optimal_column_partition(&areas);
        check_geometry(&part, &areas);
        // Optimal: two columns of two squares → cost 4·(1/2+1/2) = 4 = LB.
        assert_eq!(part.columns, 2);
        assert!((part.cost - 4.0).abs() < 1e-12);
    }

    #[test]
    fn nine_equal_processors_form_a_3x3_grid() {
        let areas = [1.0 / 9.0; 9];
        let part = optimal_column_partition(&areas);
        check_geometry(&part, &areas);
        assert_eq!(part.columns, 3);
        assert!((part.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn two_processors_single_column_when_very_unbalanced() {
        // Areas 0.9 / 0.1: two stacked slabs (1 column) cost 2·1+1 = 3;
        // two columns cost (0.9+1)+(0.1+1) = 3. Tie — but with 0.99/0.01
        // a single column (cost 3) beats two columns (cost 3) ... both are
        // 2·1 + C; for p=2 cost = 2·Σw over ... check DP just returns ≤
        // both.
        let areas = normalize(vec![0.99, 0.01]);
        let part = optimal_column_partition(&areas);
        check_geometry(&part, &areas);
        assert!(part.cost <= 3.0 + 1e-12);
    }

    #[test]
    fn respects_seven_fourths_bound_on_random_instances() {
        let mut rng = hetsched_util::rng::rng_for(1, 0);
        for p in [2usize, 5, 10, 20, 100, 333] {
            for _ in 0..5 {
                let areas = normalize((0..p).map(|_| rng.gen_range(10.0..100.0)).collect());
                let part = optimal_column_partition(&areas);
                check_geometry(&part, &areas);
                let ratio = part.approximation_ratio(&areas);
                assert!(ratio <= 1.75 + 1e-9, "p={p}: ratio {ratio} above 7/4");
                assert!(ratio >= 1.0 - 1e-9, "p={p}: ratio {ratio} below LB");
            }
        }
    }

    #[test]
    fn near_homogeneous_is_near_optimal() {
        // For p = k² equal areas the column partition is exactly optimal,
        // so the ratio tends to 1.
        let areas = normalize(vec![1.0; 64]);
        let part = optimal_column_partition(&areas);
        assert!(part.approximation_ratio(&areas) < 1.01);
    }

    #[test]
    fn columns_cover_the_square_exactly() {
        let areas = normalize(vec![5.0, 3.0, 2.0, 2.0, 1.0]);
        let part = optimal_column_partition(&areas);
        check_geometry(&part, &areas);
        let total_area: f64 = part.rects.iter().map(Rect::area).sum();
        assert!((total_area - 1.0).abs() < 1e-9);
        // Rectangles must not overlap: pairwise disjoint interiors.
        for (i, a) in part.rects.iter().enumerate() {
            for b in part.rects.iter().skip(i + 1) {
                let x_overlap = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let y_overlap = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                assert!(
                    x_overlap <= 1e-9 || y_overlap <= 1e-9,
                    "rects of {} and {} overlap",
                    a.owner,
                    b.owner
                );
            }
        }
    }
}
