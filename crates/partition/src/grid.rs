//! Discretization of a unit-square column partition onto the `n × n`
//! block grid.
//!
//! The continuous partition prescribes real widths/heights; the scheduler
//! needs integer block rectangles that cover the grid exactly. Column
//! widths are apportioned to integer column counts by largest-remainder
//! rounding, then each column's stack of heights likewise — so the cover is
//! exact by construction and the per-worker block share deviates from its
//! speed share by at most one row/column.

use crate::column::ColumnPartition;

/// An integer rectangle of the block grid: rows `r0..r1`, columns
/// `c0..c1` (half-open).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridRect {
    pub r0: u32,
    pub r1: u32,
    pub c0: u32,
    pub c1: u32,
}

impl GridRect {
    /// Number of block tasks in the rectangle.
    pub fn tasks(&self) -> usize {
        ((self.r1 - self.r0) as usize) * ((self.c1 - self.c0) as usize)
    }

    /// Static communication cost in blocks: the rows of `a` plus the
    /// columns of `b` this rectangle needs.
    pub fn comm_blocks(&self) -> usize {
        (self.r1 - self.r0) as usize + (self.c1 - self.c0) as usize
    }

    /// True if the rectangle contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.r0 == self.r1 || self.c0 == self.c1
    }
}

/// The discretized partition: one grid rectangle per worker.
#[derive(Clone, Debug)]
pub struct GridPartition {
    /// Grid size (blocks per dimension).
    pub n: usize,
    /// Worker `k`'s rectangle (possibly empty for very slow workers on
    /// coarse grids).
    pub rects: Vec<GridRect>,
}

/// Largest-remainder apportionment of `total` integer units to `weights`.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut alloc: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let mut given: usize = alloc.iter().sum();
    // Hand out the remaining units by descending fractional part.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let fi = quotas[i] - quotas[i].floor();
        let fj = quotas[j] - quotas[j].floor();
        fj.partial_cmp(&fi).expect("finite quotas")
    });
    let mut it = order.iter().cycle();
    while given < total {
        let &i = it.next().expect("non-empty order");
        alloc[i] += 1;
        given += 1;
    }
    alloc
}

impl GridPartition {
    /// Discretizes `partition` (over `p` workers) onto an `n × n` grid.
    ///
    /// Columns of the continuous partition map to runs of grid columns;
    /// workers stack vertically inside them. Workers in columns that round
    /// to zero width get empty rectangles.
    pub fn from_continuous(partition: &ColumnPartition, n: usize) -> Self {
        let p = partition.rects.len();
        let mut rects = vec![
            GridRect {
                r0: 0,
                r1: 0,
                c0: 0,
                c1: 0
            };
            p
        ];

        let col_blocks = apportion(&partition.column_widths, n);
        let mut c0 = 0usize;
        for (col, owners) in partition.column_owners.iter().enumerate() {
            let width = col_blocks[col];
            let c1 = c0 + width;
            if width > 0 {
                // Apportion the n rows of this column to its owners by
                // their areas (heights are proportional to areas within a
                // column).
                let heights: Vec<f64> = owners.iter().map(|&o| partition.rects[o].h).collect();
                let row_blocks = apportion(&heights, n);
                let mut r0 = 0usize;
                for (slot, &owner) in owners.iter().enumerate() {
                    let r1 = r0 + row_blocks[slot];
                    rects[owner] = GridRect {
                        r0: r0 as u32,
                        r1: r1 as u32,
                        c0: c0 as u32,
                        c1: c1 as u32,
                    };
                    r0 = r1;
                }
                debug_assert_eq!(r0, n);
            }
            c0 = c1;
        }
        debug_assert_eq!(c0, n);

        GridPartition { n, rects }
    }

    /// Total tasks across all rectangles (must be `n²`).
    pub fn total_tasks(&self) -> usize {
        self.rects.iter().map(GridRect::tasks).sum()
    }

    /// Static communication volume in blocks.
    pub fn total_comm(&self) -> usize {
        self.rects
            .iter()
            .filter(|r| !r.is_empty())
            .map(GridRect::comm_blocks)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::optimal_column_partition;
    use rand::Rng;

    fn normalize(mut v: Vec<f64>) -> Vec<f64> {
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= s);
        v
    }

    fn exact_cover(g: &GridPartition) {
        let n = g.n;
        let mut seen = vec![false; n * n];
        for r in &g.rects {
            for row in r.r0..r.r1 {
                for col in r.c0..r.c1 {
                    let idx = row as usize * n + col as usize;
                    assert!(!seen[idx], "cell ({row},{col}) covered twice");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "grid not fully covered");
    }

    #[test]
    fn apportion_conserves_total() {
        assert_eq!(apportion(&[1.0, 1.0, 1.0], 10), vec![4, 3, 3]);
        assert_eq!(apportion(&[0.5, 0.5], 7).iter().sum::<usize>(), 7);
        assert_eq!(apportion(&[1.0], 5), vec![5]);
    }

    #[test]
    fn equal_speeds_tile_exactly() {
        let areas = normalize(vec![1.0; 4]);
        let part = optimal_column_partition(&areas);
        let g = GridPartition::from_continuous(&part, 10);
        exact_cover(&g);
        assert_eq!(g.total_tasks(), 100);
        // 2×2 tiling of 5×5 rectangles: comm = 4 · (5+5) = 40 = LB.
        assert_eq!(g.total_comm(), 40);
    }

    #[test]
    fn random_speeds_cover_exactly() {
        let mut rng = hetsched_util::rng::rng_for(2, 0);
        for p in [3usize, 7, 20] {
            for n in [10usize, 37, 100] {
                let areas = normalize((0..p).map(|_| rng.gen_range(10.0..100.0)).collect());
                let part = optimal_column_partition(&areas);
                let g = GridPartition::from_continuous(&part, n);
                exact_cover(&g);
                assert_eq!(g.total_tasks(), n * n, "p={p}, n={n}");
            }
        }
    }

    #[test]
    fn discrete_comm_close_to_continuous_cost() {
        let mut rng = hetsched_util::rng::rng_for(3, 0);
        let areas = normalize((0..20).map(|_| rng.gen_range(10.0..100.0)).collect());
        let part = optimal_column_partition(&areas);
        let n = 200;
        let g = GridPartition::from_continuous(&part, n);
        let continuous = part.cost * n as f64;
        let discrete = g.total_comm() as f64;
        assert!(
            (discrete - continuous).abs() / continuous < 0.05,
            "discrete {discrete} vs continuous {continuous}"
        );
    }

    #[test]
    fn more_workers_than_blocks_leaves_empties() {
        let areas = normalize(vec![1.0; 30]);
        let part = optimal_column_partition(&areas);
        let g = GridPartition::from_continuous(&part, 4);
        exact_cover(&g);
        assert_eq!(g.total_tasks(), 16);
        assert!(g.rects.iter().any(|r| r.is_empty()));
    }

    #[test]
    fn task_share_tracks_speed_share() {
        let areas = normalize(vec![10.0, 20.0, 30.0, 40.0]);
        let part = optimal_column_partition(&areas);
        let n = 100;
        let g = GridPartition::from_continuous(&part, n);
        for (k, r) in g.rects.iter().enumerate() {
            let share = r.tasks() as f64 / (n * n) as f64;
            assert!(
                (share - areas[k]).abs() < 0.03,
                "worker {k}: share {share} vs speed {}",
                areas[k]
            );
        }
    }
}
