//! `StaticOuter`: the speed-aware static allocation as a [`Scheduler`].
//!
//! Each worker is pinned to its grid rectangle; per request the master
//! hands it a run of its own tasks. Blocks ship once per (worker,
//! row/column) — so total communication equals the partition's
//! half-perimeter sum, within 7/4 of the lower bound and typically *below*
//! the dynamic strategies. The price: no stealing — if a worker's actual
//! speed deviates from the speed the partition assumed, everyone else
//! finishes and idles while the straggler grinds through its rectangle.
//! The `hetsched-core` extension experiments measure exactly that
//! trade-off.

use crate::column::optimal_column_partition;
use crate::grid::{GridPartition, GridRect};
use hetsched_platform::{Platform, ProcId};
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Static outer-product scheduler: rectangle per worker, computed from the
/// platform's relative speeds (this strategy, unlike the paper's dynamic
/// ones, *requires* speed knowledge).
#[derive(Clone, Debug)]
pub struct StaticOuter {
    n: usize,
    rects: Vec<GridRect>,
    /// Next task offset within each worker's rectangle.
    cursor: Vec<usize>,
    /// Tasks handed out per request (row-sized batches keep request counts
    /// comparable with the dynamic strategies).
    batch: usize,
    remaining: usize,
    /// Whether each worker has been shipped its rows/columns yet.
    shipped: Vec<bool>,
}

impl StaticOuter {
    /// Builds the partition from `platform`'s relative speeds for an
    /// `n × n` task grid.
    pub fn new(n: usize, platform: &Platform) -> Self {
        let partition = optimal_column_partition(&platform.relative_speeds());
        let grid = GridPartition::from_continuous(&partition, n);
        Self::from_grid(grid)
    }

    /// Builds directly from a precomputed grid partition.
    pub fn from_grid(grid: GridPartition) -> Self {
        let n = grid.n;
        let p = grid.rects.len();
        StaticOuter {
            n,
            rects: grid.rects,
            cursor: vec![0; p],
            batch: n.max(1),
            remaining: n * n,
            shipped: vec![false; p],
        }
    }

    /// Worker `k`'s rectangle.
    pub fn rect(&self, k: ProcId) -> GridRect {
        self.rects[k.idx()]
    }

    /// The static plan's total communication volume in blocks.
    pub fn planned_comm(&self) -> usize {
        self.rects
            .iter()
            .filter(|r| !r.is_empty())
            .map(GridRect::comm_blocks)
            .sum()
    }
}

impl Scheduler for StaticOuter {
    fn on_request(&mut self, k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        let rect = self.rects[k.idx()];
        let total = rect.tasks();
        let done = self.cursor[k.idx()];
        if done >= total {
            // Rectangle finished (or empty): the worker idles. This is the
            // static strategy's defining behaviour — no stealing.
            return Allocation::DONE;
        }
        // Ship the whole rectangle's rows and columns with the first batch.
        let blocks = if !self.shipped[k.idx()] {
            self.shipped[k.idx()] = true;
            rect.comm_blocks() as u64
        } else {
            0
        };

        let take = self.batch.min(total - done);
        let width = (rect.c1 - rect.c0) as usize;
        for t in done..done + take {
            let row = rect.r0 as usize + t / width;
            let col = rect.c0 as usize + t % width;
            out.push((row * self.n + col) as u32);
        }
        self.cursor[k.idx()] += take;
        self.remaining -= take;
        Allocation {
            tasks: take,
            blocks,
        }
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn total_tasks(&self) -> usize {
        self.n * self.n
    }

    fn name(&self) -> &'static str {
        "StaticOuter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::{outer_lower_bound, SpeedDistribution, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn completes_all_tasks_with_fixed_speeds() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let (report, sched) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            StaticOuter::new(30, &pf),
            &mut rng_for(0, 0),
        );
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 900);
    }

    #[test]
    fn comm_matches_the_plan_and_beats_dynamic() {
        let mut seed = rng_for(1, 0);
        let pf = Platform::sample(20, &SpeedDistribution::paper_default(), &mut seed);
        let n = 100;
        let sched = StaticOuter::new(n, &pf);
        let planned = sched.planned_comm() as u64;
        let (report, _) = hetsched_sim::run(&pf, SpeedModel::Fixed, sched, &mut rng_for(1, 1));
        assert_eq!(report.total_blocks, planned);

        // 7/4 of the lower bound, and below the dynamic strategies' ~2.1×.
        let lb = outer_lower_bound(n, &pf);
        let ratio = report.normalized(lb);
        assert!(ratio <= 1.75 + 0.05, "static ratio {ratio}");

        let (dyn_report, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            hetsched_outer_test_helper(n, 20),
            &mut rng_for(1, 2),
        );
        assert!(
            report.total_blocks < dyn_report.total_blocks,
            "static {} should beat dynamic {} on comm with exact speeds",
            report.total_blocks,
            dyn_report.total_blocks
        );
    }

    // Local shim so this crate's tests can compare against the dynamic
    // strategy without a circular dev-dependency on hetsched-outer...
    // hetsched-outer is a normal dependency of the workspace tests; here we
    // only need *a* data-aware competitor, which the integration tests
    // provide. Keep a simple random-baseline comparison instead.
    fn hetsched_outer_test_helper(n: usize, p: usize) -> RandomBaseline {
        RandomBaseline::new(n, p)
    }

    /// Minimal random baseline (2 blocks per task worst case) for
    /// in-crate comparisons.
    #[derive(Clone, Debug)]
    struct RandomBaseline {
        remaining: Vec<u32>,
        owned: Vec<(hetsched_util::FixedBitSet, hetsched_util::FixedBitSet)>,
        n: usize,
    }

    impl RandomBaseline {
        fn new(n: usize, p: usize) -> Self {
            RandomBaseline {
                remaining: (0..(n * n) as u32).collect(),
                owned: (0..p)
                    .map(|_| {
                        (
                            hetsched_util::FixedBitSet::new(n),
                            hetsched_util::FixedBitSet::new(n),
                        )
                    })
                    .collect(),
                n,
            }
        }
    }

    impl Scheduler for RandomBaseline {
        fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
            use rand::Rng;
            if self.remaining.is_empty() {
                return Allocation::DONE;
            }
            let idx = rng.gen_range(0..self.remaining.len());
            let id = self.remaining.swap_remove(idx);
            let (i, j) = (id as usize / self.n, id as usize % self.n);
            let (ref mut a, ref mut b) = self.owned[k.idx()];
            let mut blocks = 0;
            if a.insert(i) {
                blocks += 1;
            }
            if b.insert(j) {
                blocks += 1;
            }
            out.push(id);
            Allocation { tasks: 1, blocks }
        }
        fn remaining(&self) -> usize {
            self.remaining.len()
        }
        fn total_tasks(&self) -> usize {
            self.n * self.n
        }
        fn name(&self) -> &'static str {
            "RandomBaseline"
        }
    }

    #[test]
    fn makespan_is_balanced_when_speeds_are_exact() {
        let pf = Platform::from_speeds(vec![25.0, 25.0, 50.0]);
        let n = 60;
        let (report, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            StaticOuter::new(n, &pf),
            &mut rng_for(2, 0),
        );
        let ideal = (n * n) as f64 / pf.total_speed();
        assert!(
            report.makespan < ideal * 1.1,
            "static makespan {} vs ideal {}",
            report.makespan,
            ideal
        );
    }

    #[test]
    fn single_worker_plan_is_trivial() {
        let pf = Platform::from_speeds(vec![7.0]);
        let sched = StaticOuter::new(12, &pf);
        assert_eq!(sched.planned_comm(), 24);
        let r = sched.rect(ProcId(0));
        assert_eq!(r.tasks(), 144);
    }

    #[test]
    fn workers_idle_after_their_rectangle() {
        // 2 workers with equal declared speeds but a 10× real difference:
        // the static plan halves the grid, so the fast worker idles for
        // roughly half the total work — the straggler problem.
        let declared = Platform::homogeneous(2);
        let actual = Platform::from_speeds(vec![1.0, 10.0]);
        let n = 40;
        let (report, _) = hetsched_sim::run(
            &actual,
            SpeedModel::Fixed,
            StaticOuter::new(n, &declared),
            &mut rng_for(3, 0),
        );
        // Worker 0 grinds its ~800 tasks at speed 1 → makespan ≈ 800;
        // a dynamic scheduler would finish in ≈ 1600/11 ≈ 145.
        assert!(
            report.makespan > 600.0,
            "expected a straggler, makespan {}",
            report.makespan
        );
        let balanced = (n * n) as f64 / actual.total_speed();
        assert!(report.makespan > 3.0 * balanced);
    }
}
