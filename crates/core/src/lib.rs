//! Experiment orchestration for the `hetsched` workspace.
//!
//! This crate turns the kernels, strategies, platform models and analytic
//! models of the lower-level crates into *experiments*:
//!
//! * [`config`] — declarative experiment descriptions
//!   ([`ExperimentConfig`]: kernel, strategy, platform recipe);
//! * [`runner`] — seeded single runs ([`run_once`]) and parallel
//!   multi-trial campaigns ([`run_trials`], crossbeam-scoped threads, one
//!   derived RNG stream per trial);
//! * [`figures`] — one function per figure of the paper, returning the
//!   plotted data series (means and standard deviations over trials,
//!   normalized by the communication lower bound);
//! * [`extensions`] — measured experiments beyond the paper: the static
//!   7/4-partition trade-off, the `dyn.*` model ablation, and the
//!   analysis-flavour comparison;
//! * [`observe`] — observed runs: the same experiments with an engine
//!   recorder attached, rendered as JSONL or Chrome-trace artifacts;
//! * [`provenance`] — the manifests embedded in every artifact (seed,
//!   config, threads, build);
//! * [`series`] — the figure data model and its CSV rendering;
//! * [`spec`] — one-line `key=value` job specs, the wire format of the
//!   scheduler daemon (`hetsched serve`).
//!
//! Everything is deterministic given the master seed: platform draws,
//! scheduler decisions and trial parallelism all derive independent
//! `SplitMix64` streams from it.

pub mod config;
pub mod extensions;
pub mod figures;
pub mod observe;
pub mod provenance;
pub mod runner;
pub mod series;
pub mod shard;
pub mod spec;

pub use config::{BetaChoice, ExperimentConfig, Kernel, Strategy};
pub use hetsched_net::NetworkModel;
pub use hetsched_sim::Topology;
pub use observe::{
    render_trace, run_once_observed, stream_trace, ObservedRun, StreamedRun, TraceFormat,
};
pub use provenance::{config_json, figure_manifest_json, manifest_json};
pub use runner::{
    parallel_map, run_once, run_trials, run_trials_collected, run_trials_with_threads,
    summarize_runs, RunResult, TrialSummary,
};
pub use series::{FigureData, Point, Series};
pub use shard::{plan_shards, ShardLayout};
pub use spec::{parse_job_spec, JobRequest};
